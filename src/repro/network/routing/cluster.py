"""LEACH-style cluster formation and two-tier collection.

"Cluster based models can enable the computation to be carried out in the
sensor network.  Sensors are divided into clusters and each cluster has a
cluster head.  Cluster heads aggregate information from the sensors in
individual clusters and send it to the base station." (§4)

Heads are chosen randomly with probability ``head_fraction`` (rotating
head duty is what LEACH does to spread energy); every other node joins its
nearest head.  Heads aggregate member readings and relay one partial each
to the sink over min-hop routes.
"""

from __future__ import annotations

import numpy as np

from repro.network.energy import RadioEnergyModel
from repro.network.radio import RadioModel
from repro.network.routing.base import CollectionCost
from repro.network.topology import Topology


class ClusterFormation:
    """One round of cluster formation over the living nodes.

    Parameters
    ----------
    head_fraction:
        Expected fraction of nodes elected head (LEACH's ``P``).
    sink:
        Node id of the base station; never elected head, never a member.
    """

    def __init__(
        self,
        topology: Topology,
        sink: int,
        rng: np.random.Generator,
        head_fraction: float = 0.1,
    ) -> None:
        if not 0.0 < head_fraction <= 1.0:
            raise ValueError("head_fraction must be in (0, 1]")
        self.topology = topology
        self.sink = sink
        self.rng = rng
        self.head_fraction = head_fraction
        self.heads: list[int] = []
        self.membership: dict[int, int] = {}
        self.form()

    def form(self) -> None:
        """(Re)elect heads and assign members; called once per round."""
        topo = self.topology
        candidates = [n for n in topo.alive_nodes() if n != self.sink]
        if not candidates:
            self.heads = []
            self.membership = {}
            return
        draws = self.rng.random(len(candidates))
        heads = [n for n, d in zip(candidates, draws) if d < self.head_fraction]
        if not heads:
            # LEACH guarantees at least one head by falling back to a
            # random pick when the Bernoulli draws all miss.
            heads = [candidates[int(self.rng.integers(len(candidates)))]]
        self.heads = sorted(heads)
        head_pos = topo.positions[self.heads]
        self.membership = {}
        for node in candidates:
            if node in self.heads:
                self.membership[node] = node
                continue
            delta = head_pos - topo.positions[node][None, :]
            dists = np.hypot(delta[:, 0], delta[:, 1])
            self.membership[node] = self.heads[int(np.argmin(dists))]

    def members_of(self, head: int) -> list[int]:
        """Member node ids assigned to ``head`` (the head itself excluded)."""
        return sorted(n for n, h in self.membership.items() if h == head and n != head)

    # ------------------------------------------------------------------
    def aggregated_collection(
        self,
        bits_reading: float,
        bits_partial: float,
        radio: RadioModel,
        energy_model: RadioEnergyModel,
        ops_per_merge: float = 10.0,
    ) -> CollectionCost:
        """Cost of one cluster round: members → heads → sink.

        Members transmit one reading directly to their head (single hop at
        the member→head distance, the LEACH assumption); each head merges
        and relays one ``bits_partial`` packet to the sink along the
        min-hop route through the topology.
        """
        topo = self.topology
        per_node = np.zeros(topo.n_nodes)
        messages = 0
        bits_total = 0.0

        for node, head in self.membership.items():
            if node == head:
                continue
            dist = topo.distance(node, head)
            per_node[node] += energy_model.tx_cost(bits_reading, dist)
            per_node[head] += energy_model.rx_cost(bits_reading)
            per_node[head] += energy_model.cpu_cost(ops_per_merge)
            messages += 1
            bits_total += bits_reading

        unreachable: set[int] = set()
        max_head_hops = 0
        for head in self.heads:
            path = topo.shortest_path(head, self.sink)
            if path is None:
                unreachable.add(head)
                unreachable.update(self.members_of(head))
                continue
            for a, b in zip(path, path[1:]):
                per_node[a] += energy_model.tx_cost(bits_partial, topo.distance(a, b))
                per_node[b] += energy_model.rx_cost(bits_partial)
                messages += 1
                bits_total += bits_partial
            max_head_hops = max(max_head_hops, len(path) - 1)

        # member phase happens in parallel across clusters; head relays too
        latency = radio.hop_time(bits_reading) + max_head_hops * radio.hop_time(bits_partial)
        participating = (set(self.membership) | {self.sink}) - unreachable
        return CollectionCost(
            per_node_energy=per_node,
            latency_s=latency,
            messages=messages,
            bits_total=bits_total,
            participating=participating,
        )
