"""Link-layer radio characteristics: bandwidth, latency, loss.

The paper requires the runtime to "handle the transport level problems
caused by low bandwidth, high latency, frequent disconnections".
:class:`RadioModel` captures a radio technology's link parameters;
profiles for the technologies the paper names (mote radios, Bluetooth,
802.11, and the wired grid backbone) are provided as constructors.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class RadioModel:
    """Parameters of one radio technology.

    Attributes
    ----------
    bandwidth_bps:
        Link throughput, bits/second.
    latency_s:
        Per-hop propagation + MAC latency, seconds.
    loss_prob:
        Independent per-hop message loss probability in [0, 1).
    range_m:
        Maximum communication range (unit-disc model), metres.
    """

    bandwidth_bps: float = 250_000.0
    latency_s: float = 0.01
    loss_prob: float = 0.0
    range_m: float = 30.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")
        if self.range_m <= 0:
            raise ValueError("range must be positive")

    def transmission_time(self, bits: float) -> float:
        """Seconds to push ``bits`` onto the link (serialization delay)."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return bits / self.bandwidth_bps

    def hop_time(self, bits: float) -> float:
        """Total one-hop delivery time: serialization + propagation/MAC."""
        return self.transmission_time(bits) + self.latency_s

    # ------------------------------------------------------------------
    # Technology profiles named in the paper
    # ------------------------------------------------------------------
    @staticmethod
    def mote() -> "RadioModel":
        """A mote-class sensor radio (TinyOS-era, ~250 kbps, 30 m)."""
        return RadioModel(bandwidth_bps=250_000.0, latency_s=0.01, loss_prob=0.02, range_m=30.0)

    @staticmethod
    def bluetooth() -> "RadioModel":
        """Bluetooth 1.1 as used by the paper's PocketPC testbed (~723 kbps, 10 m)."""
        return RadioModel(bandwidth_bps=723_000.0, latency_s=0.03, loss_prob=0.01, range_m=10.0)

    @staticmethod
    def wifi() -> "RadioModel":
        """802.11b as used by the paper's notebook testbed (~11 Mbps, 100 m)."""
        return RadioModel(bandwidth_bps=11_000_000.0, latency_s=0.005, loss_prob=0.005, range_m=100.0)

    @staticmethod
    def wired_backbone() -> "RadioModel":
        """The wired grid uplink from a base station (vBNS/Internet2-class)."""
        return RadioModel(bandwidth_bps=100_000_000.0, latency_s=0.02, loss_prob=0.0, range_m=float(1e9))
