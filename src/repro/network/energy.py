"""Node batteries and the first-order radio energy model.

The paper's §4 makes sensor energy the first-class cost ("preserving the
energy of the sensors is of prime importance").  We use the standard
first-order radio model from the sensor-network literature the paper
builds on (TAG, LEACH, Kalpakis et al.):

* transmitting ``k`` bits over distance ``d`` costs
  ``E_elec * k + eps_amp * k * d**2`` joules,
* receiving ``k`` bits costs ``E_elec * k`` joules,
* each CPU operation costs ``e_cpu`` joules (orders of magnitude below a
  transmitted bit, which is what makes in-network aggregation pay off).

Defaults follow Heinzelman et al.: ``E_elec = 50 nJ/bit``,
``eps_amp = 100 pJ/bit/m^2``, ``e_cpu = 5 pJ/op``.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class RadioEnergyModel:
    """Energy cost parameters for radio and CPU activity.

    Attributes
    ----------
    e_elec:
        Electronics energy per bit, J/bit (both tx and rx paths).
    eps_amp:
        Transmit-amplifier energy per bit per square metre, J/bit/m^2.
    e_cpu_op:
        Energy per CPU operation, J/op.
    e_sense:
        Energy per sensor sample, J/sample.
    """

    e_elec: float = 50e-9
    eps_amp: float = 100e-12
    e_cpu_op: float = 5e-12
    e_sense: float = 50e-9

    def tx_cost(self, bits: float, dist: float) -> float:
        """Joules to transmit ``bits`` over ``dist`` metres."""
        if bits < 0 or dist < 0:
            raise ValueError("bits and dist must be non-negative")
        return self.e_elec * bits + self.eps_amp * bits * dist * dist

    def rx_cost(self, bits: float) -> float:
        """Joules to receive ``bits``."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return self.e_elec * bits

    def cpu_cost(self, ops: float) -> float:
        """Joules to execute ``ops`` CPU operations."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        return self.e_cpu_op * ops

    def sense_cost(self, samples: float = 1.0) -> float:
        """Joules to take ``samples`` sensor readings."""
        return self.e_sense * samples


class Battery:
    """A finite (or infinite) energy reserve attached to a node.

    Draws are accepted even when they overdraw the remaining charge -- the
    battery clamps at zero and flips :attr:`depleted`, which is how node
    death is detected.  Base stations and grid resources use
    ``Battery(float("inf"))``.
    """

    __slots__ = ("capacity", "_remaining", "consumed", "draws")

    def __init__(self, capacity_joules: float = 1.0) -> None:
        if capacity_joules < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = float(capacity_joules)
        self._remaining = float(capacity_joules)
        #: Total joules actually drawn (capped at capacity for finite cells).
        self.consumed = 0.0
        #: Number of draw() calls, for instrumentation.
        self.draws = 0

    @property
    def remaining(self) -> float:
        """Joules left (0 when depleted; inf for mains-powered nodes)."""
        return self._remaining

    @property
    def depleted(self) -> bool:
        """True once the battery has hit zero."""
        return self._remaining <= 0.0

    @property
    def fraction_remaining(self) -> float:
        """Remaining charge as a fraction of capacity (1.0 for infinite)."""
        if self.capacity == float("inf"):
            return 1.0
        if self.capacity == 0.0:
            return 0.0
        return self._remaining / self.capacity

    def draw(self, joules: float) -> bool:
        """Consume ``joules``; return True if the node is still alive.

        A draw that exceeds the remaining charge consumes whatever is left
        and leaves the battery depleted.
        """
        if joules < 0:
            raise ValueError("cannot draw negative energy")
        self.draws += 1
        taken = min(joules, self._remaining)
        self.consumed += taken
        self._remaining -= taken
        return not self.depleted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Battery(remaining={self._remaining:.4g}/{self.capacity:.4g} J)"
