"""Node batteries and the first-order radio energy model.

The paper's §4 makes sensor energy the first-class cost ("preserving the
energy of the sensors is of prime importance").  We use the standard
first-order radio model from the sensor-network literature the paper
builds on (TAG, LEACH, Kalpakis et al.):

* transmitting ``k`` bits over distance ``d`` costs
  ``E_elec * k + eps_amp * k * d**2`` joules,
* receiving ``k`` bits costs ``E_elec * k`` joules,
* each CPU operation costs ``e_cpu`` joules (orders of magnitude below a
  transmitted bit, which is what makes in-network aggregation pay off).

Defaults follow Heinzelman et al.: ``E_elec = 50 nJ/bit``,
``eps_amp = 100 pJ/bit/m^2``, ``e_cpu = 5 pJ/op``.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class RadioEnergyModel:
    """Energy cost parameters for radio and CPU activity.

    Attributes
    ----------
    e_elec:
        Electronics energy per bit, J/bit (both tx and rx paths).
    eps_amp:
        Transmit-amplifier energy per bit per square metre, J/bit/m^2.
    e_cpu_op:
        Energy per CPU operation, J/op.
    e_sense:
        Energy per sensor sample, J/sample.
    """

    e_elec: float = 50e-9
    eps_amp: float = 100e-12
    e_cpu_op: float = 5e-12
    e_sense: float = 50e-9

    def tx_cost(self, bits: float, dist: float) -> float:
        """Joules to transmit ``bits`` over ``dist`` metres."""
        if bits < 0 or dist < 0:
            raise ValueError("bits and dist must be non-negative")
        return self.e_elec * bits + self.eps_amp * bits * dist * dist

    def rx_cost(self, bits: float) -> float:
        """Joules to receive ``bits``."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return self.e_elec * bits

    def cpu_cost(self, ops: float) -> float:
        """Joules to execute ``ops`` CPU operations."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        return self.e_cpu_op * ops

    def sense_cost(self, samples: float = 1.0) -> float:
        """Joules to take ``samples`` sensor readings."""
        return self.e_sense * samples


class Battery:
    """A finite (or infinite) energy reserve attached to a node.

    Draws are accepted even when they overdraw the remaining charge -- the
    battery clamps at zero and flips :attr:`depleted`, which is how node
    death is detected.  Base stations and grid resources use
    ``Battery(float("inf"))``.
    """

    __slots__ = ("capacity", "_remaining", "consumed", "draws")

    def __init__(self, capacity_joules: float = 1.0) -> None:
        if capacity_joules < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = float(capacity_joules)
        self._remaining = float(capacity_joules)
        #: Total joules actually drawn (capped at capacity for finite cells).
        self.consumed = 0.0
        #: Number of draw() calls, for instrumentation.
        self.draws = 0

    @property
    def remaining(self) -> float:
        """Joules left (0 when depleted; inf for mains-powered nodes)."""
        return self._remaining

    @property
    def depleted(self) -> bool:
        """True once the battery has hit zero."""
        return self._remaining <= 0.0

    @property
    def fraction_remaining(self) -> float:
        """Remaining charge as a fraction of capacity (1.0 for infinite)."""
        if self.capacity == float("inf"):
            return 1.0
        if self.capacity == 0.0:
            return 0.0
        return self._remaining / self.capacity

    def draw(self, joules: float) -> bool:
        """Consume ``joules``; return True if the node is still alive.

        A draw that exceeds the remaining charge consumes whatever is left
        and leaves the battery depleted.
        """
        if joules < 0:
            raise ValueError("cannot draw negative energy")
        self.draws += 1
        taken = min(joules, self._remaining)
        self.consumed += taken
        self._remaining -= taken
        return not self.depleted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Battery(remaining={self._remaining:.4g}/{self.capacity:.4g} J)"


class BatteryView:
    """Battery-API view over one slot of a :class:`BatteryBank`.

    Implements the full :class:`Battery` surface (``draw``, ``remaining``,
    ``depleted``, ``consumed``, ...), so network code that charges one
    node at a time works unchanged; the state lives in the bank's arrays,
    where fleet-wide accounting reads it without a Python loop.
    """

    __slots__ = ("_bank", "_i")

    def __init__(self, bank: "BatteryBank", index: int) -> None:
        self._bank = bank
        self._i = index

    @property
    def capacity(self) -> float:
        return float(self._bank.capacity[self._i])

    @property
    def remaining(self) -> float:
        """Joules left (0 when depleted; inf for mains-powered nodes)."""
        return float(self._bank._remaining[self._i])

    @property
    def consumed(self) -> float:
        return float(self._bank.consumed[self._i])

    @property
    def draws(self) -> int:
        return int(self._bank.draws[self._i])

    @property
    def depleted(self) -> bool:
        """True once the battery has hit zero."""
        return bool(self._bank._remaining[self._i] <= 0.0)

    @property
    def fraction_remaining(self) -> float:
        """Remaining charge as a fraction of capacity (1.0 for infinite)."""
        cap = self._bank.capacity[self._i]
        if cap == np.inf:
            return 1.0
        if cap == 0.0:
            return 0.0
        return float(self._bank._remaining[self._i] / cap)

    def draw(self, joules: float) -> bool:
        """Consume ``joules``; return True if the node is still alive.

        Bit-identical to :meth:`Battery.draw`: the slot holds float64 and
        the scalar min/add/sub here are the same IEEE754 operations.
        """
        if joules < 0:
            raise ValueError("cannot draw negative energy")
        bank = self._bank
        i = self._i
        bank.draws[i] += 1
        remaining = float(bank._remaining[i])
        taken = joules if joules < remaining else remaining
        bank.consumed[i] += taken
        bank._remaining[i] = remaining - taken
        return bank._remaining[i] > 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatteryView(remaining={self.remaining:.4g}/{self.capacity:.4g} J)"


class BatteryBank:
    """Array-backed battery fleet for large populations.

    Per-node state (capacity, remaining, consumed, draw count) lives in
    flat float64/int64 arrays, so fleet-wide accounting -- total energy
    consumed, min remaining, alive mask -- is one numpy reduction instead
    of a Python loop over 100k :class:`Battery` objects.  Individual
    nodes charge through :meth:`battery` views that implement the scalar
    :class:`Battery` API bit-identically.
    """

    __slots__ = ("capacity", "_remaining", "consumed", "draws")

    def __init__(self, capacities_joules: np.ndarray | list[float]) -> None:
        cap = np.asarray(capacities_joules, dtype=np.float64).copy()
        if cap.ndim != 1:
            raise ValueError("capacities must be a 1-D array")
        if np.any(cap < 0):
            raise ValueError("capacity must be non-negative")
        self.capacity = cap
        self._remaining = cap.copy()
        self.consumed = np.zeros(len(cap), dtype=np.float64)
        self.draws = np.zeros(len(cap), dtype=np.int64)

    @classmethod
    def uniform(cls, n: int, capacity_joules: float = 1.0) -> "BatteryBank":
        """A bank of ``n`` identical cells."""
        return cls(np.full(n, float(capacity_joules)))

    def __len__(self) -> int:
        return len(self.capacity)

    def battery(self, index: int) -> BatteryView:
        """Battery-compatible view of one slot."""
        return BatteryView(self, index)

    def batteries(self) -> list[BatteryView]:
        """Views for every slot (pass straight to ``WirelessNetwork``)."""
        return [BatteryView(self, i) for i in range(len(self.capacity))]

    # ------------------------------------------------------------------
    # vectorized accounting
    # ------------------------------------------------------------------
    @property
    def remaining(self) -> np.ndarray:
        """Joules left per node (read-only view)."""
        view = self._remaining.view()
        view.flags.writeable = False
        return view

    @property
    def alive_mask(self) -> np.ndarray:
        """Boolean mask of nodes with charge left."""
        return self._remaining > 0.0

    @property
    def depleted_count(self) -> int:
        """Number of dead cells."""
        return int(np.count_nonzero(self._remaining <= 0.0))

    @property
    def total_consumed(self) -> float:
        """Fleet-wide joules drawn (numpy pairwise-summed; accounting
        only -- never fed back into simulation state)."""
        return float(self.consumed.sum())

    def fraction_remaining(self) -> np.ndarray:
        """Per-node remaining fraction (1.0 for infinite, 0.0 for zero-cap)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            frac = self._remaining / self.capacity
        frac = np.where(self.capacity == np.inf, 1.0, frac)
        frac = np.where(self.capacity == 0.0, 0.0, frac)
        return frac

    def draw_many(self, node_ids: np.ndarray, joules: float) -> np.ndarray:
        """Charge the same ``joules`` to every listed node, vectorized.

        Equivalent to calling ``battery(i).draw(joules)`` for each listed
        node (each id must appear at most once per call); returns the
        per-node alive flags in the same order.
        """
        if joules < 0:
            raise ValueError("cannot draw negative energy")
        ids = np.asarray(node_ids, dtype=np.intp)
        remaining = self._remaining[ids]
        taken = np.minimum(joules, remaining)
        self.consumed[ids] += taken
        self._remaining[ids] = remaining - taken
        self.draws[ids] += 1
        return self._remaining[ids] > 0.0
