"""Feature extraction for the Decision Maker's learners.

"A lot of factors would affect the estimates required above.  All
networks may not be of the same size ... Different networks would have
different network topology ... Different sensors may generate data with
different rates." -- the feature vector captures exactly these factors,
plus the query's class and the candidate plan's own analytic estimate
(so the learner only needs to model the estimate→actual *bias*).
"""

from __future__ import annotations

import numpy as np

from repro.queries.ast import Query
from repro.queries.classifier import QueryClass, base_class
from repro.queries.models.base import CostEstimate, QueryContext
from repro.queries.models import collection

#: Order of features produced by :func:`featurize`.
FEATURE_NAMES = (
    "n_targets",
    "n_alive",
    "mean_target_depth",
    "is_simple",
    "is_aggregate",
    "is_complex",
    "is_continuous",
    "n_select_items",
    "loss_prob",
    "log10_est_energy",
    "log10_est_time",
    "log10_est_bits",
    "log10_est_ops",
)


def featurize(
    query: Query,
    ctx: QueryContext,
    targets: list[int],
    estimate: CostEstimate,
) -> np.ndarray:
    """The feature vector for one (query, network state, plan) triple."""
    cls = base_class(query)
    log = lambda v: float(np.log10(max(v, 1e-12)))
    return np.array(
        [
            float(len(targets)),
            float(len(ctx.deployment.alive_sensor_ids())),
            collection.mean_target_depth(ctx.deployment, targets),
            1.0 if cls is QueryClass.SIMPLE else 0.0,
            1.0 if cls is QueryClass.AGGREGATE else 0.0,
            1.0 if cls is QueryClass.COMPLEX else 0.0,
            1.0 if query.is_continuous else 0.0,
            float(len(query.select)),
            float(ctx.deployment.radio.loss_prob),
            log(estimate.energy_j),
            log(estimate.time_s),
            log(estimate.data_bits),
            log(estimate.ops),
        ]
    )
