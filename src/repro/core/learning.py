"""From-scratch learners for the Decision Maker.

The paper prescribes "standard machine learning techniques" trained on
simulation data; we implement the two classic choices for small tabular
regression -- k-nearest-neighbours and a CART regression tree -- in plain
numpy (no sklearn dependency), with incremental ``update`` APIs suited to
the adaptive feedback loop.
"""

from __future__ import annotations

import numpy as np


class KNNRegressor:
    """Online k-nearest-neighbours regression.

    Features are standardized per dimension with running statistics, so
    wildly different scales (node counts vs joules) do not distort the
    metric.

    Parameters
    ----------
    k:
        Neighbours averaged per prediction.
    max_points:
        Sliding-window memory bound (oldest samples evicted) -- keeps
        predictions adaptive under drift and bounds prediction cost.
    """

    def __init__(self, k: int = 5, max_points: int = 512) -> None:
        if k < 1 or max_points < 1:
            raise ValueError("k and max_points must be positive")
        self.k = k
        self.max_points = max_points
        self._X: list[np.ndarray] = []
        self._y: list[float] = []

    def __len__(self) -> int:
        return len(self._y)

    def update(self, x: np.ndarray, y: float) -> None:
        """Add one labelled sample."""
        self._X.append(np.asarray(x, dtype=np.float64))
        self._y.append(float(y))
        if len(self._y) > self.max_points:
            self._X.pop(0)
            self._y.pop(0)

    def predict(self, x: np.ndarray) -> float:
        """Mean label of the k nearest stored samples.

        Raises ``RuntimeError`` with no data (callers fall back to
        estimates until the learner warms up).
        """
        if not self._y:
            raise RuntimeError("KNNRegressor has no data")
        X = np.vstack(self._X)
        y = np.asarray(self._y)
        mu = X.mean(axis=0)
        sigma = X.std(axis=0)
        sigma[sigma == 0.0] = 1.0
        xn = (np.asarray(x, dtype=np.float64) - mu) / sigma
        Xn = (X - mu) / sigma
        d = np.linalg.norm(Xn - xn[None, :], axis=1)
        k = min(self.k, len(y))
        nearest = np.argpartition(d, k - 1)[:k]
        return float(y[nearest].mean())


class RegressionTree:
    """A CART regression tree with periodic refits.

    Stores all samples (windowed) and rebuilds the tree every
    ``refit_every`` updates -- the batch analogue of the paper's
    "incorporated into the learning technique".

    Parameters
    ----------
    max_depth / min_samples:
        Tree growth limits.
    refit_every:
        Updates between rebuilds.
    max_points:
        Sliding-window memory bound.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples: int = 8,
        refit_every: int = 16,
        max_points: int = 1024,
    ) -> None:
        if max_depth < 1 or min_samples < 2 or refit_every < 1:
            raise ValueError("invalid tree hyperparameters")
        self.max_depth = max_depth
        self.min_samples = min_samples
        self.refit_every = refit_every
        self.max_points = max_points
        self._X: list[np.ndarray] = []
        self._y: list[float] = []
        self._since_fit = 0
        self._tree: dict | None = None

    def __len__(self) -> int:
        return len(self._y)

    def update(self, x: np.ndarray, y: float) -> None:
        """Add one labelled sample; refit when due."""
        self._X.append(np.asarray(x, dtype=np.float64))
        self._y.append(float(y))
        if len(self._y) > self.max_points:
            self._X.pop(0)
            self._y.pop(0)
        self._since_fit += 1
        if self._tree is None or self._since_fit >= self.refit_every:
            self._fit()

    def _fit(self) -> None:
        X = np.vstack(self._X)
        y = np.asarray(self._y)
        self._tree = self._grow(X, y, 0)
        self._since_fit = 0

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> dict:
        node = {"value": float(y.mean())}
        if depth >= self.max_depth or len(y) < self.min_samples or np.ptp(y) == 0.0:
            return node
        best = None
        base_sse = float(((y - y.mean()) ** 2).sum())
        for f in range(X.shape[1]):
            xs = X[:, f]
            order = np.argsort(xs, kind="stable")
            xs_sorted = xs[order]
            # candidate thresholds: midpoints between distinct values
            distinct = np.flatnonzero(np.diff(xs_sorted) > 0)
            if len(distinct) == 0:
                continue
            # subsample thresholds for speed on large nodes
            for idx in distinct[:: max(1, len(distinct) // 16)]:
                thr = 0.5 * (xs_sorted[idx] + xs_sorted[idx + 1])
                left = xs <= thr
                yl, yr = y[left], y[~left]
                if len(yl) == 0 or len(yr) == 0:
                    continue
                sse = float(((yl - yl.mean()) ** 2).sum() + ((yr - yr.mean()) ** 2).sum())
                if best is None or sse < best[0]:
                    best = (sse, f, thr)
        if best is None or best[0] >= base_sse - 1e-12:
            return node
        _, f, thr = best
        left = X[:, f] <= thr
        node.update(
            feature=f,
            threshold=thr,
            left=self._grow(X[left], y[left], depth + 1),
            right=self._grow(X[~left], y[~left], depth + 1),
        )
        return node

    def predict(self, x: np.ndarray) -> float:
        """Tree lookup; RuntimeError before the first update."""
        if self._tree is None:
            raise RuntimeError("RegressionTree has no data")
        x = np.asarray(x, dtype=np.float64)
        node = self._tree
        while "feature" in node:
            node = node["left"] if x[node["feature"]] <= node["threshold"] else node["right"]
        return node["value"]
