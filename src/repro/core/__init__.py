"""The paper's primary contribution: dynamic partition of computation.

"We propose to conduct simulations on these query types to generate data
for amount of computation, data transfer, energy consumption, and
response time for various approaches.  Standard machine learning
techniques would be used on the data to select the right approach for a
given query.  The system will be made adaptive by comparing the
estimates ... with the actual values ... and the results would be
incorporated into the learning technique."

"The system comprises of three major components: Query Processor,
Decision Maker and Simulator for sensor network."

* Query Processor -- :mod:`repro.queries` (parser, classifier, models).
* Decision Maker -- :mod:`~repro.core.decision` (static, estimate-greedy
  and learned policies over :mod:`~repro.core.learning` learners and
  :mod:`~repro.core.features` feature vectors).
* Simulator -- :mod:`repro.simkernel` + the substrates.
* :mod:`~repro.core.runtime` -- :class:`PervasiveGridRuntime`, the façade
  wiring all of it together (Figure 1 in one object).
"""

from repro.core.learning import KNNRegressor, RegressionTree
from repro.core.features import featurize, FEATURE_NAMES
from repro.core.decision import (
    DecisionMaker,
    DecisionPolicy,
    StaticPolicy,
    EstimateGreedyPolicy,
    LearnedPolicy,
    OraclePolicy,
    default_objective,
)
from repro.core.runtime import PervasiveGridRuntime

__all__ = [
    "KNNRegressor",
    "RegressionTree",
    "featurize",
    "FEATURE_NAMES",
    "DecisionMaker",
    "DecisionPolicy",
    "StaticPolicy",
    "EstimateGreedyPolicy",
    "LearnedPolicy",
    "OraclePolicy",
    "default_objective",
    "PervasiveGridRuntime",
]
