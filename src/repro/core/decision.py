"""The Decision Maker: choosing the execution model per query.

"Decision maker would decide the solution model to use based on type of
query, historic data and known features of the network at hand."

Policies
--------
* :class:`StaticPolicy` -- always the same plan (the non-adaptive straw
  man every static system embodies).
* :class:`EstimateGreedyPolicy` -- argmin of the *analytic* estimates
  under the query's COST constraint.  Good until reality (contention,
  retransmissions) diverges from the analytic model.
* :class:`LearnedPolicy` -- per-model learners predict the *actual*
  objective from features; ε-greedy exploration; online updates from
  measured outcomes.  This is the paper's proposal.
* :class:`OraclePolicy` -- cheats by peeking at a caller-provided map of
  actual outcomes; used only to compute regret in experiment E4.

The scalar objective blends energy and time on fixed scales (1 mJ and
1 s are "comparable"); a COST clause turns the corresponding metric into
a hard constraint first.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from repro.core.features import featurize
from repro.core.learning import KNNRegressor
from repro.queries.ast import Query
from repro.queries.models.base import CostEstimate, ExecutionModel, QueryContext

#: Scales making joules and seconds commensurable in the blended objective.
ENERGY_SCALE_J = 1e-3
TIME_SCALE_S = 1.0


def default_objective(energy_j: float, time_s: float) -> float:
    """The blended cost the Decision Maker minimizes by default."""
    return energy_j / ENERGY_SCALE_J + time_s / TIME_SCALE_S


@dataclasses.dataclass
class Decision:
    """What the Decision Maker chose and why."""

    model: ExecutionModel
    estimate: CostEstimate
    candidates: dict[str, CostEstimate]
    reason: str


class DecisionPolicy:
    """Interface: rank feasible candidates for one query."""

    name = "abstract"

    def choose(
        self,
        query: Query,
        ctx: QueryContext,
        targets: list[int],
        candidates: dict[str, tuple[ExecutionModel, CostEstimate]],
    ) -> str:
        """Return the chosen model name from ``candidates`` (non-empty)."""
        raise NotImplementedError

    def update(
        self,
        query: Query,
        ctx: QueryContext,
        targets: list[int],
        model_name: str,
        estimate: CostEstimate,
        actual_energy_j: float,
        actual_time_s: float,
    ) -> None:
        """Feedback hook; default no-op (static/greedy policies)."""


class StaticPolicy(DecisionPolicy):
    """Always pick ``model_name`` when feasible, else fall back greedily."""

    def __init__(self, model_name: str) -> None:
        self.model_name = model_name
        self.name = f"static:{model_name}"

    def choose(self, query, ctx, targets, candidates):
        if self.model_name in candidates:
            return self.model_name
        return min(
            candidates,
            key=lambda n: default_objective(candidates[n][1].energy_j, candidates[n][1].time_s),
        )


class EstimateGreedyPolicy(DecisionPolicy):
    """Argmin of analytic estimates under the COST constraint."""

    name = "estimate-greedy"

    def choose(self, query, ctx, targets, candidates):
        pool = _apply_cost_constraint(query, candidates)
        return min(
            pool,
            key=lambda n: default_objective(pool[n][1].energy_j, pool[n][1].time_s),
        )


class LearnedPolicy(DecisionPolicy):
    """Per-model learned prediction of the actual objective.

    Rather than regressing the absolute objective (whose scale varies by
    orders of magnitude across queries), each model's learner predicts
    the **log bias ratio** ``log(actual / analytic)`` -- how wrong the
    analytic estimate tends to be for this model on queries like this.
    Predictions multiply back into the analytic estimate.  Targets are
    near-constant per model, so a handful of samples already corrects
    systematic bias (contention, retransmissions) without the variance
    of absolute regression.

    Parameters
    ----------
    learner_factory:
        Zero-arg factory building one regressor per model (default
        :class:`~repro.core.learning.KNNRegressor`).
    epsilon / epsilon_decay:
        ε-greedy exploration rate, multiplied by the decay after every
        update (exploration fades as experience accumulates).
    rng:
        Random stream for exploration draws.
    """

    name = "learned"

    def __init__(
        self,
        learner_factory: typing.Callable[[], typing.Any] = KNNRegressor,
        epsilon: float = 0.25,
        epsilon_decay: float = 0.985,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.learner_factory = learner_factory
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._learners: dict[str, typing.Any] = {}
        self.updates = 0

    def _learner(self, model_name: str):
        learner = self._learners.get(model_name)
        if learner is None:
            learner = self.learner_factory()
            self._learners[model_name] = learner
        return learner

    def predicted_objective(self, query, ctx, targets, model_name, estimate) -> float:
        """Bias-corrected analytic objective (raw analytic until warm)."""
        analytic = default_objective(estimate.energy_j, estimate.time_s)
        learner = self._learner(model_name)
        x = featurize(query, ctx, targets, estimate)
        try:
            log_bias = learner.predict(x)
        except RuntimeError:
            return analytic
        return analytic * float(np.exp(np.clip(log_bias, -10.0, 10.0)))

    def choose(self, query, ctx, targets, candidates):
        pool = _apply_cost_constraint(query, candidates)
        names = sorted(pool)
        if len(names) > 1 and float(self.rng.random()) < self.epsilon:
            return names[int(self.rng.integers(len(names)))]
        return min(
            names,
            key=lambda n: self.predicted_objective(query, ctx, targets, n, pool[n][1]),
        )

    def update(self, query, ctx, targets, model_name, estimate,
               actual_energy_j, actual_time_s):
        x = featurize(query, ctx, targets, estimate)
        analytic = max(default_objective(estimate.energy_j, estimate.time_s), 1e-12)
        actual = max(default_objective(actual_energy_j, actual_time_s), 1e-12)
        self._learner(model_name).update(x, float(np.log(actual / analytic)))
        self.updates += 1
        self.epsilon *= self.epsilon_decay


class OraclePolicy(DecisionPolicy):
    """Picks by *actual* outcomes supplied externally (regret baseline).

    ``lookup`` maps model name → actual objective for the current query;
    experiment harnesses that run every model fill it in.
    """

    name = "oracle"

    def __init__(self) -> None:
        self.lookup: dict[str, float] = {}

    def choose(self, query, ctx, targets, candidates):
        pool = _apply_cost_constraint(query, candidates)
        known = {n: self.lookup[n] for n in pool if n in self.lookup}
        if known:
            return min(known, key=known.get)
        return min(
            pool,
            key=lambda n: default_objective(pool[n][1].energy_j, pool[n][1].time_s),
        )


def _apply_cost_constraint(
    query: Query,
    candidates: dict[str, tuple[ExecutionModel, CostEstimate]],
) -> dict[str, tuple[ExecutionModel, CostEstimate]]:
    """Filter to candidates satisfying the COST clause.

    When nothing satisfies it, all candidates are kept (the paper's COST
    is a preference the system honours when it can; refusing to answer
    would be worse).
    """
    if query.cost is None:
        return candidates
    ok = {
        name: pair
        for name, pair in candidates.items()
        if pair[1].metric(query.cost.metric) <= query.cost.limit
    }
    return ok or candidates


class DecisionMaker:
    """Estimates every registered model and delegates the pick to a policy.

    Parameters
    ----------
    models:
        The execution models available.
    policy:
        The selection policy.
    """

    def __init__(self, models: typing.Sequence[ExecutionModel], policy: DecisionPolicy) -> None:
        if not models:
            raise ValueError("need at least one execution model")
        names = [m.name for m in models]
        if len(set(names)) != len(names):
            raise ValueError("duplicate model names")
        self.models = {m.name: m for m in models}
        self.policy = policy
        self.decisions = 0

    def estimates(self, query: Query, ctx: QueryContext, targets: list[int]) -> dict[str, CostEstimate]:
        """Analytic estimates from every model (including infeasible)."""
        return {
            name: (model.estimate(query, ctx, targets) if model.supports(query, ctx)
                   else CostEstimate.INFEASIBLE)
            for name, model in self.models.items()
        }

    def decide(self, query: Query, ctx: QueryContext, targets: list[int]) -> Decision | None:
        """Choose a model for ``query``; None when nothing is feasible."""
        all_est = self.estimates(query, ctx, targets)
        candidates = {
            name: (self.models[name], est)
            for name, est in all_est.items()
            if est.feasible
        }
        if not candidates:
            return None
        chosen = self.policy.choose(query, ctx, targets, candidates)
        self.decisions += 1
        model, estimate = candidates[chosen]
        return Decision(model=model, estimate=estimate, candidates=all_est,
                        reason=self.policy.name)

    def feedback(
        self,
        query: Query,
        ctx: QueryContext,
        targets: list[int],
        decision: Decision,
        actual_energy_j: float,
        actual_time_s: float,
    ) -> None:
        """Report measured outcome back to the policy (adaptivity loop)."""
        self.policy.update(
            query, ctx, targets, decision.model.name, decision.estimate,
            actual_energy_j, actual_time_s,
        )
