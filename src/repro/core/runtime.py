"""The pervasive-grid runtime façade (Figure 1 in one object).

:class:`PervasiveGridRuntime` wires together every subsystem: the sensor
deployment with its physical field, the wired grid behind the base
station, the agent platform with a discovery broker, the execution models
and the Decision Maker, and the query executor.  Examples and benchmarks
build one of these and go.
"""

from __future__ import annotations

import typing

from repro.agents.platform import AgentPlatform
from repro.core.decision import DecisionMaker, DecisionPolicy, EstimateGreedyPolicy
from repro.discovery.broker import BrokerAgent
from repro.discovery.failover import BrokerGroup
from repro.discovery.log import EventLog
from repro.discovery.matcher import SemanticMatcher
from repro.discovery.ontology import build_service_ontology
from repro.discovery.replica import ReplicatedRegistry
from repro.grid.infrastructure import GridInfrastructure
from repro.network.radio import RadioModel
from repro.observability.profiling import HookProfiler
from repro.observability.sampling import SamplingConfig, TraceSampler
from repro.observability.sketch import TelemetryConfig
from repro.observability.tracer import NOOP_TRACER, Tracer
from repro.queries.executor import QueryExecutor, QueryOutcome
from repro.queries.models import ALL_MODELS, QueryContext
from repro.queries.models.base import ExecutionModel
from repro.sensors.deployment import SensorDeployment
from repro.sensors.field import ScalarField
from repro.simkernel import RandomStreams, Simulator


class PervasiveGridRuntime:
    """Everything needed to pose §4 queries against a pervasive grid.

    Parameters
    ----------
    n_sensors / area_m / field / battery_j / radio / n_handhelds:
        Forwarded to :class:`~repro.sensors.deployment.SensorDeployment`.
    seed:
        Root seed; the entire run is reproducible from it.
    policy:
        Decision policy (default: estimate-greedy).
    site_rates:
        Grid site throughputs, ops/s.
    models:
        Execution-model instances (default: one of each registered model).
    grid_resolution:
        PDE grid resolution for complex queries.
    trace:
        When True, the runtime owns an enabled
        :class:`~repro.observability.tracer.Tracer` wired through every
        subsystem (simulator, network, executor, grid, faults); export
        it with :meth:`export_trace`.  Default off: the shared no-op
        tracer, which costs nothing on the record path.
    profile:
        When True, the runtime owns an enabled
        :class:`~repro.observability.profiling.HookProfiler` attached to
        the simulator's dispatch loop, attributing *wall-clock* time per
        handler and subsystem; export it with :meth:`export_profile`.
        Default off: ``sim.profiler`` stays ``None`` and the dispatch
        hot path pays one identity check.  Independent of ``trace`` --
        profiling never touches the Monitor or the trace, so enabling it
        cannot perturb simulated results.
    sampling:
        Optional :class:`~repro.observability.sampling.SamplingConfig`
        (requires ``trace=True``): the tracer retains traces through a
        deterministic head/tail :class:`TraceSampler` instead of keeping
        everything -- error, SLO-violating, and slow-outlier traces are
        always kept, happy-path volume is sampled.  Dropped volume is
        visible under the ``obs.sampling.*`` counters and the trace's
        ``obs.sampling.summary`` event.
    telemetry:
        Optional :class:`~repro.observability.sketch.TelemetryConfig`
        bounding the run's telemetry memory: the monitor's
        histogram/series raw tails and sketch shape
        (:meth:`~repro.simkernel.monitor.Monitor.configure`) and the
        tracer's ``max_records`` ring.
    discovery_shards / discovery_replication:
        Shape of the replicated discovery store: consistent-hash shards
        and copies per ontology class (see
        :class:`~repro.discovery.replica.ReplicatedRegistry`).  Search
        results are identical at any setting.
    broker_hosts:
        When set, discovery runs as a single-active
        :class:`~repro.discovery.failover.BrokerGroup` with one member
        per entry (the topology node each broker runs on; member 0
        starts active) -- killing the active's host via the fault
        injector triggers standby promotion.  Default None: one
        always-up broker, the pre-failover behavior.
    broker_detection_delay_s:
        Failure-detection delay before the group promotes a standby.
    """

    def __init__(
        self,
        n_sensors: int = 49,
        area_m: float = 60.0,
        field: ScalarField | None = None,
        *,
        seed: int = 0,
        policy: DecisionPolicy | None = None,
        site_rates: typing.Sequence[float] = (1e9, 1e12),
        battery_j: float = 1.0,
        radio: RadioModel | None = None,
        n_handhelds: int = 1,
        models: typing.Sequence[ExecutionModel] | None = None,
        grid_resolution: int = 40,
        placement: str = "grid",
        noise_std: float = 0.5,
        trace: bool = False,
        profile: bool = False,
        sampling: "SamplingConfig | None" = None,
        telemetry: "TelemetryConfig | None" = None,
        discovery_shards: int = 4,
        discovery_replication: int = 2,
        broker_hosts: typing.Sequence[int | None] | None = None,
        broker_detection_delay_s: float = 2.0,
    ) -> None:
        if sampling is not None and not trace:
            raise ValueError("sampling= requires trace=True")
        self.streams = RandomStreams(seed)
        self.sim = Simulator()
        if trace:
            sampler = TraceSampler(sampling) if sampling is not None else None
            max_records = telemetry.max_trace_records if telemetry is not None else None
            self.tracer = Tracer(self.sim, sampler=sampler,
                                 max_records=max_records)
        else:
            self.tracer = NOOP_TRACER
        self.sim.tracer = self.tracer
        self.profiler = HookProfiler() if profile else None
        self.sim.profiler = self.profiler
        self.deployment = SensorDeployment(
            n_sensors,
            area_m,
            field,
            sim=self.sim,
            streams=self.streams,
            battery_j=battery_j,
            radio=radio,
            n_handhelds=n_handhelds,
            placement=placement,
            noise_std=noise_std,
        )
        self.deployment.network.tracer = self.tracer
        if telemetry is not None:
            self.deployment.monitor.configure(telemetry)
        if trace:
            # obs.trace.* / obs.sampling.* counters land on the run's monitor
            self.tracer.monitor = self.deployment.monitor
        self.grid = GridInfrastructure(self.sim, site_rates=site_rates,
                                       monitor=self.deployment.monitor,
                                       tracer=self.tracer)
        self.ctx = QueryContext(
            deployment=self.deployment,
            grid=self.grid,
            streams=self.streams,
            grid_resolution=grid_resolution,
            tracer=self.tracer,
        )
        self.models = list(models) if models is not None else [cls() for cls in ALL_MODELS]
        self.policy = policy or EstimateGreedyPolicy()
        self.decision_maker = DecisionMaker(self.models, self.policy)
        self.executor = QueryExecutor(self.ctx, self.decision_maker)

        # the service/agent overlay (discovery + composition live here).
        # All discovery state materializes one shared append-only log;
        # the registry façade and every broker view are replayable,
        # deterministic folds of it.
        self.platform = AgentPlatform(self.sim)
        self.ontology = build_service_ontology()
        matcher = SemanticMatcher(self.ontology)
        self.discovery_log = EventLog(clock=lambda: self.sim.now)
        self.registry = ReplicatedRegistry(
            matcher, discovery_shards, discovery_replication,
            log=self.discovery_log, monitor=self.deployment.monitor,
            name="runtime")
        self.broker_group: BrokerGroup | None = None
        self._broker: BrokerAgent | None = None
        if broker_hosts is None:
            self._broker = BrokerAgent("broker", self.registry)
            self.platform.register(self._broker)
        else:
            self.broker_group = BrokerGroup(
                self.sim, self.platform, self.discovery_log, matcher,
                broker_hosts, n_shards=discovery_shards,
                replication=discovery_replication,
                detection_delay_s=broker_detection_delay_s,
                monitor=self.deployment.monitor, tracer=self.tracer)

    @property
    def broker(self) -> BrokerAgent | None:
        """The broker currently serving the well-known ``"broker"`` name
        (None mid-failover when running with ``broker_hosts``)."""
        if self.broker_group is not None:
            return self.broker_group.active_broker()
        return self._broker

    # ------------------------------------------------------------------
    def fault_injector(self) -> "FaultInjector":
        """A :class:`~repro.faults.FaultInjector` wired to this runtime.

        The fault domain spans the whole stack: the deployment's topology
        and network, the grid uplink, and the radio holders the cost
        estimators read.  Nodes taken down by faults have their service
        advertisements withdrawn from the discovery registry, exactly as
        churn does; when the runtime has a broker group, node deaths and
        recoveries also drive its single-active failover protocol.
        """
        from repro.faults import FaultDomain, FaultInjector

        def on_node_change(node: int, up: bool) -> None:
            if up:
                if self.broker_group is not None:
                    self.broker_group.node_up(node)
            else:
                self.registry.withdraw_host(node)
                if self.broker_group is not None:
                    self.broker_group.node_down(node)

        domain = FaultDomain(
            sim=self.sim,
            monitor=self.deployment.monitor,
            topology=self.deployment.topology,
            network=self.deployment.network,
            uplink=self.grid.uplink,
            radio_holders=(self.deployment,),
            on_node_change=on_node_change,
        )
        return FaultInjector(domain, tracer=self.tracer)

    # ------------------------------------------------------------------
    def workload_manager(
        self,
        *,
        classes: "typing.Sequence | None" = None,
        breakers: "BreakerBoard | None" = None,
        max_attempts: int = 3,
        starvation_s: float = 120.0,
    ) -> "WorkloadManager":
        """A :class:`~repro.wms.service.WorkloadManager` over this runtime.

        The manager's pilots run on this runtime's grid sites, its queue
        reports into the runtime's monitor/tracer, and its
        :meth:`~repro.wms.service.WorkloadManager.submit_query` surface
        drives the runtime's query executor -- queries from many
        handheld users then share the grid under the fair-share policy
        instead of executing synchronously.  ``breakers`` (when given)
        contributes site health to the pilots' matching descriptions.
        """
        from repro.wms.service import WorkloadManager
        from repro.wms.task import DEFAULT_CLASSES

        return WorkloadManager(
            self.sim,
            self.grid.resources,
            classes=tuple(classes) if classes is not None else DEFAULT_CLASSES,
            monitor=self.monitor,
            tracer=self.tracer,
            breakers=breakers,
            executor=self.executor,
            max_attempts=max_attempts,
            starvation_s=starvation_s,
        )

    # ------------------------------------------------------------------
    def attach_slos(
        self,
        slos: "typing.Sequence | None" = None,
        *,
        interval_s: float = 15.0,
        until_s: float = 3600.0,
        record_samples: bool = True,
    ) -> "SLOEvaluator":
        """Attach an :class:`~repro.observability.slo.SLOEvaluator`.

        Builds an evaluator over this runtime's simulator and monitor
        (default objectives:
        :func:`~repro.observability.slo.default_slos`), registers the
        ``grid.uplink_online`` probe the uplink-availability SLO reads
        plus the ``disc.broker_online`` / ``disc.staleness`` probes the
        discovery SLOs read, and starts evaluation ticks every
        ``interval_s`` of simulated
        time up to ``until_s``.  Alert fire/resolve land on this
        runtime's tracer when it is enabled; call
        :func:`~repro.observability.slo.render_health` on the returned
        evaluator for the end-of-run verdict.
        """
        from repro.observability.slo import SLOEvaluator, default_slos

        evaluator = SLOEvaluator(
            self.sim, self.monitor, list(slos) if slos is not None else default_slos(),
            interval_s=interval_s, tracer=self.tracer,
            record_samples=record_samples,
        )
        uplink = self.grid.uplink
        evaluator.probe("grid.uplink_online",
                        lambda: 1.0 if uplink.online else 0.0)
        group, platform, registry = self.broker_group, self.platform, self.registry
        if group is not None:
            evaluator.probe("disc.broker_online",
                            lambda: 1.0 if group.online() else 0.0)
            evaluator.probe("disc.staleness",
                            lambda: float(group.staleness()))
        else:
            evaluator.probe("disc.broker_online",
                            lambda: 1.0 if platform.is_registered("broker") else 0.0)
            evaluator.probe("disc.staleness", lambda: float(registry.lag))
        return evaluator.start(until_s)

    # ------------------------------------------------------------------
    @property
    def monitor(self):
        """The run's shared :class:`~repro.simkernel.monitor.Monitor`."""
        return self.deployment.monitor

    def export_trace(self, path) -> int:
        """Write the run's trace as JSONL; returns the record count.

        Raises ``RuntimeError`` unless the runtime was built with
        ``trace=True``.
        """
        if not self.tracer.enabled:
            raise RuntimeError("runtime built without trace=True; nothing to export")
        return self.tracer.export(path)

    def export_profile(self, path) -> int:
        """Write the run's wall-clock profile as JSON; returns the
        handler count.

        Raises ``RuntimeError`` unless the runtime was built with
        ``profile=True``.
        """
        if self.profiler is None:
            raise RuntimeError("runtime built without profile=True; nothing to export")
        return self.profiler.write(path)

    # ------------------------------------------------------------------
    def submit(
        self,
        query_text: str,
        on_complete: typing.Callable[[list[QueryOutcome]], None],
        on_epoch: typing.Callable[[QueryOutcome], None] | None = None,
    ) -> None:
        """Asynchronous submission (caller drives the simulator)."""
        self.executor.submit(query_text, on_complete, on_epoch)

    def query(self, query_text: str, horizon_s: float = 1e7) -> list[QueryOutcome]:
        """Synchronous convenience: submit, simulate, return outcomes.

        Advances the shared simulator until the query completes (bounded
        by ``horizon_s`` of virtual time).
        """
        done: list[list[QueryOutcome]] = []
        self.executor.submit(query_text, done.append)
        deadline = self.sim.now + horizon_s
        # step event by event so the clock stops at the completion event
        # (a chunked run() would overshoot into any background activity)
        while not done and self.sim.now < deadline:
            if not self.sim.step():
                break  # heap empty; query cannot finish
        if not done:
            raise TimeoutError(f"query did not complete within {horizon_s} s of virtual time")
        return done[0]

    # ------------------------------------------------------------------
    def energy_consumed_j(self) -> float:
        """Total sensor energy drawn so far."""
        return self.deployment.total_sensor_energy_consumed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PervasiveGridRuntime(sensors={self.deployment.n_sensors}, "
            f"policy={self.policy.name}, t={self.sim.now:.3g}s)"
        )
