"""Multi-process trial runner with deterministic reduction.

The ROADMAP's scaling premise -- aggregate cycles across workers so the
runtime, not the experiment author, owns distribution -- applied to the
reproduction's own experiment harness.  A :class:`TrialRunner` shards
*independent simulation worlds* (benchmark cells, seed sweeps, churn
replicates) across OS processes.  Each world runs a deterministic
simulation and ships back a :class:`TrialResult` (its
:class:`~repro.simkernel.monitor.Monitor`, headline metrics, and an
optional trace and wall-clock-profile exports); the parent folds the
monitors with :meth:`Monitor.merge` in **seed order** (ascending trial
index), so the merged counters and summaries are bit-identical no matter
how many workers ran or in what order they finished.

Determinism contract
--------------------
``run(specs)`` with ``workers=1`` and ``workers=N`` produce the same
:attr:`SweepResult.monitor` summary and the same per-trial metrics,
because (a) every trial is a pure function of its :class:`TrialSpec`,
(b) nothing wall-clock-dependent is ever recorded into the merged
monitor, and (c) reduction order is fixed by trial index.  Wall-clock
facts (elapsed time, speedup, worker count, merged profiles) live on the
:class:`SweepResult` itself, never in the monitor -- profiling a sweep
cannot change its merged results.

Trial functions must be module-level callables and specs must be
picklable (they cross a process boundary).  ``workers <= 1`` runs
in-process with zero multiprocessing machinery -- the reference against
which parallel runs are gated in CI.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import json
import math
import multiprocessing
import time
import traceback
import typing

from repro.observability.profiling import merge_profiles
from repro.simkernel.monitor import Monitor

#: Span-id block reserved per trial when merging trace exports; world-local
#: ids are offset into the trial's block so merged ids never collide.
_TRIAL_ID_BLOCK = 1 << 32


@dataclasses.dataclass(frozen=True)
class TrialSpec:
    """One independent simulation world to run.

    Attributes
    ----------
    index:
        Position in the seed-ordered reduction; must be unique per sweep.
    seed:
        Root seed for the world (the trial function decides how to use it).
    params:
        Arbitrary picklable keyword parameters for the trial function.
    trace:
        Ask the trial to export its tracer records (see
        :attr:`TrialResult.trace`).
    profile:
        Ask the trial to wall-clock-profile its dispatch loop (see
        :attr:`TrialResult.profile`).
    """

    index: int
    seed: int = 0
    params: dict = dataclasses.field(default_factory=dict)
    trace: bool = False
    profile: bool = False


@dataclasses.dataclass
class TrialResult:
    """What one trial world returns to the parent.

    Attributes
    ----------
    monitor:
        The world's monitor, merged seed-ordered into
        :attr:`SweepResult.monitor` (optional).
    metrics:
        Headline numbers for the experiment's table/recorder.
    trace:
        Either a :class:`~repro.observability.tracer.Tracer` (converted
        to JSON-ready dicts before crossing the process boundary) or an
        already-converted list of record dicts.
    sim_time_s:
        Final virtual time of the world; stamps the synthesized
        ``parallel.trial`` span.
    profile:
        Either a :class:`~repro.observability.profiling.HookProfiler`
        (converted to its export dict before crossing the process
        boundary) or an already-converted document; merged seed-ordered
        into :attr:`SweepResult.profile`.
    """

    monitor: Monitor | None = None
    metrics: dict = dataclasses.field(default_factory=dict)
    trace: typing.Any = None
    sim_time_s: float = 0.0
    profile: typing.Any = None


@dataclasses.dataclass
class TrialOutcome:
    """One trial's result plus the runner's bookkeeping."""

    spec: TrialSpec
    result: TrialResult | None
    wall_s: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error

    @property
    def metrics(self) -> dict:
        return self.result.metrics if self.result is not None else {}


@dataclasses.dataclass
class SweepResult:
    """A whole sweep, reduced: seed-ordered outcomes + merged monitor.

    ``monitor`` carries only deterministic instruments (the trials' own
    monitors plus the ``parallel.trials`` / ``parallel.trial_failures``
    counters).  Wall-clock facts stay out of it by design, so serial and
    parallel runs of the same specs summarize identically.
    """

    outcomes: list[TrialOutcome]
    monitor: Monitor
    trace: list[dict]
    workers: int
    wall_s: float
    #: Merged wall-clock profile document (seed-ordered fold of the
    #: trials' :attr:`TrialResult.profile` exports); None when no trial
    #: profiled.  Wall-clock data: lives here, never in ``monitor``.
    profile: dict | None = None

    @property
    def trial_wall_s(self) -> float:
        """Total worker-side compute time across all trials."""
        return sum(o.wall_s for o in self.outcomes)

    @property
    def failures(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def speedup(self) -> float:
        """Aggregate-work / elapsed ratio (> 1 when sharding paid off)."""
        if self.wall_s <= 0.0:
            return math.nan
        return self.trial_wall_s / self.wall_s

    def metrics_by_index(self) -> list[dict]:
        """Per-trial headline metrics, seed-ordered."""
        return [o.metrics for o in self.outcomes]

    def export_trace(self, path) -> int:
        """Write the merged trace (one ``parallel.trial`` span per world,
        world records nested beneath it) as JSONL; returns line count."""
        count = 0
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.trace:
                fh.write(json.dumps(record, default=str))
                fh.write("\n")
                count += 1
        return count


def _normalize_trace(trace: typing.Any) -> list[dict] | None:
    """Tracer -> JSON-ready dicts (runs worker-side, before pickling)."""
    if trace is None:
        return None
    records = getattr(trace, "records", trace)
    return [r if isinstance(r, dict) else r.to_dict() for r in records]


def _normalize_profile(profile: typing.Any) -> dict | None:
    """HookProfiler -> export dict (runs worker-side, before pickling)."""
    if profile is None or isinstance(profile, dict):
        return profile
    return profile.to_dict()


def _run_trial(payload: tuple) -> tuple[int, TrialResult | None, float, str]:
    """Execute one trial (worker side); never raises across the boundary."""
    trial_fn, spec = payload
    start = time.perf_counter()
    try:
        result = trial_fn(spec)
        if not isinstance(result, TrialResult):
            raise TypeError(
                f"trial function returned {type(result).__name__}, expected TrialResult")
        result.trace = _normalize_trace(result.trace)
        result.profile = _normalize_profile(result.profile)
        return (spec.index, result, time.perf_counter() - start, "")
    except Exception:  # noqa: BLE001 - the parent decides raise-vs-keep
        return (spec.index, None, time.perf_counter() - start,
                traceback.format_exc())


def _merge_trace(outcomes: list[TrialOutcome]) -> list[dict]:
    """Nest each world's records under a synthesized ``parallel.trial``
    span, remapping ids into per-trial blocks so they never collide."""
    merged: list[dict] = []
    for outcome in outcomes:
        result = outcome.result
        records = result.trace if result is not None else None
        if records is None:
            continue
        base = (outcome.spec.index + 1) * _TRIAL_ID_BLOCK
        end_s = float(result.sim_time_s)
        for rec in records:
            end_s = max(end_s, rec.get("end") or 0.0, rec.get("time") or 0.0)
        merged.append({
            "kind": "span", "trace": base, "span": base, "parent": None,
            "name": "parallel.trial", "start": 0.0, "end": end_s,
            "status": "ok" if outcome.ok else "error",
            "attrs": {"trial": outcome.spec.index, "seed": outcome.spec.seed,
                      **outcome.spec.params},
        })
        for rec in records:
            rec = dict(rec)
            rec["trace"] = base
            if rec.get("span") is not None:
                rec["span"] = base + 1 + rec["span"]
            rec["parent"] = base if rec.get("parent") is None else base + 1 + rec["parent"]
            merged.append(rec)
    return merged


class TrialRunner:
    """Shard independent trials across worker processes; reduce in seed order.

    Parameters
    ----------
    trial_fn:
        Module-level callable ``(TrialSpec) -> TrialResult``.  Runs in a
        worker process, so it (and everything it returns) must pickle.
    workers:
        Process count.  ``<= 1`` runs serially in-process (the reference
        behavior); ``None`` uses one worker per CPU, capped at the trial
        count.
    mp_context:
        ``multiprocessing`` start-method name or context.  Defaults to
        ``fork`` where available (cheap, no re-import), else ``spawn``.
    on_error:
        ``"raise"`` (default) re-raises the first trial failure in the
        parent; ``"keep"`` records the failure in its
        :class:`TrialOutcome` and in the ``parallel.trial_failures``
        counter, and keeps going.
    """

    def __init__(
        self,
        trial_fn: typing.Callable[[TrialSpec], TrialResult],
        workers: int | None = 1,
        *,
        mp_context: typing.Any = None,
        on_error: str = "raise",
    ) -> None:
        if on_error not in ("raise", "keep"):
            raise ValueError("on_error must be 'raise' or 'keep'")
        self.trial_fn = trial_fn
        self.workers = workers
        self.mp_context = mp_context
        self.on_error = on_error

    # ------------------------------------------------------------------
    def run(self, specs: typing.Sequence[TrialSpec]) -> SweepResult:
        """Run every spec; reduce deterministically; return the sweep."""
        specs = sorted(specs, key=lambda s: s.index)
        if len({s.index for s in specs}) != len(specs):
            raise ValueError("trial indexes must be unique")
        workers = self.workers
        if workers is None:
            workers = multiprocessing.cpu_count()
        workers = max(1, min(int(workers), len(specs) or 1))

        start = time.perf_counter()
        if workers <= 1 or len(specs) <= 1:
            raw = [_run_trial((self.trial_fn, spec)) for spec in specs]
        else:
            raw = self._run_pool(specs, workers)
        wall_s = time.perf_counter() - start

        by_index = {index: (result, trial_wall, error)
                    for index, result, trial_wall, error in raw}
        outcomes: list[TrialOutcome] = []
        merged = Monitor()
        for spec in specs:  # seed order: the deterministic reduction
            result, trial_wall, error = by_index[spec.index]
            if error and self.on_error == "raise":
                raise TrialError(spec, error)
            outcomes.append(TrialOutcome(spec, result, trial_wall, error))
            merged.counter("parallel.trials").add()
            if error:
                merged.counter("parallel.trial_failures").add()
            elif result is not None and result.monitor is not None:
                merged.merge(result.monitor)
        return SweepResult(
            outcomes=outcomes,
            monitor=merged,
            trace=_merge_trace(outcomes),
            workers=workers,
            wall_s=wall_s,
            profile=merge_profiles(
                o.result.profile if o.result is not None else None
                for o in outcomes),
        )

    # ------------------------------------------------------------------
    def _run_pool(self, specs: typing.Sequence[TrialSpec], workers: int) -> list[tuple]:
        ctx = self.mp_context
        if ctx is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = "fork" if "fork" in methods else "spawn"
        if isinstance(ctx, str):
            ctx = multiprocessing.get_context(ctx)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx
        ) as pool:
            futures = [pool.submit(_run_trial, (self.trial_fn, spec)) for spec in specs]
            return [f.result() for f in futures]


class TrialError(RuntimeError):
    """A trial failed in a worker (carries the worker-side traceback)."""

    def __init__(self, spec: TrialSpec, worker_traceback: str) -> None:
        super().__init__(
            f"trial {spec.index} (seed={spec.seed}, params={spec.params}) "
            f"failed in worker:\n{worker_traceback}")
        self.spec = spec
        self.worker_traceback = worker_traceback


def run_trials(
    trial_fn: typing.Callable[[TrialSpec], TrialResult],
    specs: typing.Sequence[TrialSpec],
    workers: int | None = 1,
    **kwargs: typing.Any,
) -> SweepResult:
    """One-call convenience: ``TrialRunner(trial_fn, workers).run(specs)``."""
    return TrialRunner(trial_fn, workers, **kwargs).run(specs)


def seed_specs(seeds: typing.Iterable[int], *, trace: bool = False,
               profile: bool = False, **params: typing.Any) -> list[TrialSpec]:
    """Specs for a seed sweep: one trial per seed, shared parameters."""
    return [TrialSpec(index=i, seed=int(seed), params=dict(params),
                      trace=trace, profile=profile)
            for i, seed in enumerate(seeds)]


def cell_specs(cells: typing.Iterable[typing.Mapping[str, typing.Any]],
               seed: int = 0, *, trace: bool = False,
               profile: bool = False) -> list[TrialSpec]:
    """Specs for a parameter grid: one trial per cell dict, shared seed."""
    return [TrialSpec(index=i, seed=seed, params=dict(cell),
                      trace=trace, profile=profile)
            for i, cell in enumerate(cells)]
