"""Parallel experiment execution.

Shards independent simulation worlds across worker processes and folds
their monitors back together deterministically -- see
:mod:`repro.parallel.runner` for the determinism contract.
"""

from repro.parallel.runner import (
    SweepResult,
    TrialError,
    TrialOutcome,
    TrialResult,
    TrialRunner,
    TrialSpec,
    cell_specs,
    run_trials,
    seed_specs,
)

__all__ = [
    "SweepResult",
    "TrialError",
    "TrialOutcome",
    "TrialResult",
    "TrialRunner",
    "TrialSpec",
    "cell_specs",
    "run_trials",
    "seed_specs",
]
