"""Stress and concurrency tests: shared state under parallel activity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.discovery import build_service_ontology


def env_factory(**kw):
    from tests.composition.conftest import CompositionEnv

    return CompositionEnv(**kw)


class TestConcurrentCompositions:
    def test_ten_distributed_compositions_share_providers(self):
        """Role state is keyed per composition: interleaving cannot mix
        inputs across instances."""
        env = env_factory(mode="distributed")
        env.add_stream_mining_providers()
        graph = env.planner.plan("analyze-stream", {"n_partitions": 2})
        results = []
        for i in range(10):
            g = env.planner.plan("analyze-stream", {"n_partitions": 2})
            env.manager.execute(
                g, results.append,
                initial_inputs={name: {"run": i} for name in g.sources()},
            )
        env.sim.run()
        assert len(results) == 10
        assert all(r.success for r in results)
        assert env.manager.completed == 10

    def test_interleaved_modes_one_platform(self):
        """A centralized and a distributed manager coexist on one platform."""
        from repro.composition import Binder, CompositionManager

        env = env_factory(mode="centralized")
        env.add_stream_mining_providers()
        other = CompositionManager("mgr2", env.sim, Binder(env.registry),
                                   mode="distributed")
        env.platform.register(other)
        graph_a = env.planner.plan("analyze-stream", {"n_partitions": 2})
        graph_b = env.planner.plan("analyze-stream", {"n_partitions": 2})
        results = []
        env.manager.execute(graph_a, results.append)
        other.execute(graph_b, results.append)
        env.sim.run()
        assert len(results) == 2 and all(r.success for r in results)


class TestManyQueriesOneRuntime:
    def test_fifty_queries_no_state_leak(self):
        from repro.core import PervasiveGridRuntime
        from repro.workloads import QueryWorkload

        rt = PervasiveGridRuntime(n_sensors=16, area_m=30.0, seed=44,
                                  grid_resolution=12)
        wl = QueryWorkload(rt.streams.get("stress"), n_sensors=16,
                           mix=(0.4, 0.4, 0.2, 0.0), cost_prob=0.2)
        successes = 0
        for _ in range(50):
            out = rt.query(wl.next_text())
            successes += all(o.success for o in out)
        assert successes >= 48
        # batteries drained monotonically but nobody died on this budget
        assert rt.deployment.dead_sensor_count() == 0
        assert rt.energy_consumed_j() > 0


class TestOntologyInvariants:
    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_dag_subsumption_transitive(self, seed):
        from repro.discovery import Ontology

        rng = np.random.default_rng(seed)
        ont = Ontology()
        names = [f"c{i}" for i in range(12)]
        for i, name in enumerate(names):
            # parents only among earlier classes: acyclic by construction
            pool = names[:i]
            if pool and rng.random() < 0.8:
                k = int(rng.integers(1, min(3, len(pool)) + 1))
                parents = [pool[int(j)] for j in rng.choice(len(pool), size=k, replace=False)]
                ont.add_class(name, parents)
            else:
                ont.add_class(name)
        # transitivity: a subsumes b and b subsumes c -> a subsumes c
        trio = rng.choice(len(names), size=3)
        a, b, c = (names[int(i)] for i in trio)
        if ont.subsumes(a, b) and ont.subsumes(b, c):
            assert ont.subsumes(a, c)
        # distance symmetry on random pairs
        assert ont.distance(a, b) == ont.distance(b, a)

    def test_deep_chain_operations_fast(self):
        from repro.discovery import Ontology

        ont = Ontology()
        prev = None
        for i in range(200):
            ont.add_class(f"n{i}", prev)
            prev = f"n{i}"
        assert ont.subsumes("n0", "n199")
        assert ont.depth("n199") == 200
        assert ont.distance("n0", "n199") == 199


class TestLongRunStability:
    def test_week_of_epochs_deterministic(self):
        """A long continuous query drains energy monotonically and the
        simulator stays consistent over tens of thousands of events."""
        from repro.core import PervasiveGridRuntime

        rt = PervasiveGridRuntime(n_sensors=16, area_m=30.0, seed=45,
                                  battery_j=0.5, grid_resolution=12)
        energies = []
        rt.submit("SELECT AVG(value) FROM sensors EPOCH DURATION 30 FOR 30000",
                  lambda o: None,
                  on_epoch=lambda o: energies.append(rt.deployment.total_sensor_energy_consumed()))
        rt.sim.run(until=40000.0)
        assert len(energies) == 1000
        assert all(b >= a for a, b in zip(energies, energies[1:]))
        assert rt.sim.events_executed >= 2 * 1000 - 1  # completion + epoch tick each
