"""Tests for retry policies, circuit breakers, and hedged calls."""

import math

import numpy as np
import pytest

from repro.resilience import BreakerBoard, CircuitBreaker, Hedge, HedgedCall, RetryPolicy
from repro.simkernel import Monitor, Simulator, TimeSeries


class TestRetryPolicy:
    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(1) and policy.allows(3)
        assert not policy.allows(4)

    def test_elapsed_budget(self):
        policy = RetryPolicy(max_attempts=10, max_elapsed_s=60.0)
        assert policy.allows(5, elapsed_s=59.0)
        assert not policy.allows(5, elapsed_s=60.0)

    def test_deterministic_ceiling_without_rng(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0, max_delay_s=5.0)
        assert policy.next_delay(2) == 1.0
        assert policy.next_delay(3) == 2.0
        assert policy.next_delay(4) == 4.0
        assert policy.next_delay(5) == 5.0  # capped

    def test_first_attempt_has_no_delay(self):
        assert RetryPolicy().next_delay(1) == 0.0

    def test_full_jitter_bounded(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter="full")
        rng = np.random.default_rng(0)
        for attempt in range(2, 8):
            d = policy.next_delay(attempt, rng)
            assert 0.0 <= d <= policy.ceiling(attempt)

    def test_decorrelated_jitter_bounded_and_capped(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=10.0, jitter="decorrelated")
        rng = np.random.default_rng(0)
        prev = None
        for attempt in range(2, 12):
            d = policy.next_delay(attempt, rng, prev_delay_s=prev)
            assert policy.base_delay_s <= d <= policy.max_delay_s
            prev = d

    def test_same_rng_state_same_delays(self):
        policy = RetryPolicy(base_delay_s=0.5, jitter="decorrelated")
        a = [policy.next_delay(i, np.random.default_rng(9)) for i in range(2, 6)]
        b = [policy.next_delay(i, np.random.default_rng(9)) for i in range(2, 6)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter="gaussian")
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=5.0, max_delay_s=1.0)


class TestCircuitBreaker:
    def advance(self, sim, dt):
        sim.schedule(dt, lambda: None)
        sim.run()

    def test_opens_after_threshold(self):
        sim = Simulator()
        breaker = CircuitBreaker(sim, failure_threshold=3, recovery_timeout_s=10.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and not breaker.blocked
        tripped = breaker.record_failure()
        assert tripped
        assert breaker.state == "open" and breaker.blocked
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        sim = Simulator()
        breaker = CircuitBreaker(sim, failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_cycle(self):
        sim = Simulator()
        breaker = CircuitBreaker(sim, failure_threshold=1, recovery_timeout_s=10.0)
        breaker.record_failure()
        assert breaker.blocked
        self.advance(sim, 10.0)
        assert breaker.state == "half-open"
        assert not breaker.blocked  # probe slot available
        assert breaker.allow()  # consumes the probe
        assert breaker.blocked  # further traffic held while probing
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and not breaker.blocked

    def test_failed_probe_reopens(self):
        sim = Simulator()
        breaker = CircuitBreaker(sim, failure_threshold=1, recovery_timeout_s=10.0)
        breaker.record_failure()
        self.advance(sim, 10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        # and it blocks for a fresh full timeout
        self.advance(sim, 5.0)
        assert breaker.blocked

    def test_blocked_is_read_only(self):
        sim = Simulator()
        breaker = CircuitBreaker(sim, failure_threshold=1, recovery_timeout_s=1.0)
        breaker.record_failure()
        self.advance(sim, 1.0)
        # consulting blocked many times must not consume the probe slot
        for _ in range(5):
            assert not breaker.blocked
        assert breaker.allow()

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CircuitBreaker(sim, failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(sim, recovery_timeout_s=0.0)


class TestBreakerBoard:
    def test_per_provider_isolation(self):
        sim = Simulator()
        board = BreakerBoard(sim, failure_threshold=1)
        board.record_failure("flappy")
        assert board.blocked_providers() == {"flappy"}
        board.record_success("steady")
        assert "steady" not in board.blocked_providers()
        assert len(board) == 2

    def test_trips_counted_in_monitor(self):
        sim = Simulator()
        monitor = Monitor()
        board = BreakerBoard(sim, monitor=monitor, failure_threshold=2)
        board.record_failure("p")
        board.record_failure("p")
        assert monitor.counter("resilience.breaker.trips").value == 1


class TestHedgedCall:
    def test_fast_primary_never_hedges(self):
        sim = Simulator()
        hedge = Hedge(delay_s=5.0)
        results = []

        def launch(wave, done):
            sim.schedule(1.0, lambda: done(f"wave{wave}"))

        call = HedgedCall(sim, hedge, launch, results.append)
        call.start()
        sim.run()
        assert results == ["wave0"]
        assert call.waves == 1
        assert call.won_by == 0

    def test_slow_primary_loses_to_hedge(self):
        sim = Simulator()
        hedge = Hedge(delay_s=2.0)
        results = []

        def launch(wave, done):
            delay = 100.0 if wave == 0 else 1.0
            sim.schedule(delay, lambda: done(f"wave{wave}"))

        call = HedgedCall(sim, hedge, launch, results.append)
        call.start()
        sim.run()
        assert results == ["wave1"]  # first result wins, once
        assert call.waves == 2
        assert call.won_by == 1

    def test_from_percentile(self):
        series = TimeSeries("lat")
        for i in range(100):
            series.record(float(i), float(i))
        hedge = Hedge.from_percentile(series, pct=95.0)
        assert hedge.delay_s == pytest.approx(95.0, abs=1.0)
        empty = Hedge.from_percentile(TimeSeries("none"), floor_s=0.25)
        assert empty.delay_s == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            Hedge(delay_s=0.0)
        with pytest.raises(ValueError):
            Hedge(delay_s=1.0, max_hedges=0)
