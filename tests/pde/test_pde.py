"""Unit tests for grids, interpolation and heat solvers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pde import HeatSolver, RectGrid, idw_interpolate, readings_to_grid, solve_ops_estimate


class TestRectGrid:
    def test_basic_properties(self):
        g = RectGrid(5, 4, 10.0, 6.0)
        assert g.n_points == 20
        assert g.shape == (5, 4)
        assert g.dx == pytest.approx(2.5)
        assert g.dy == pytest.approx(2.0)

    def test_points_cover_extent(self):
        g = RectGrid(3, 3, 10.0, 10.0)
        pts = g.points()
        assert pts.shape == (9, 2)
        assert pts.min() == 0.0 and pts.max() == 10.0

    def test_index_c_order(self):
        g = RectGrid(3, 4, 1.0, 1.0)
        assert g.index(0, 0) == 0
        assert g.index(1, 0) == 4
        assert g.index(2, 3) == 11
        with pytest.raises(IndexError):
            g.index(3, 0)

    def test_boundary_interior_masks_partition(self):
        g = RectGrid(5, 5, 1.0, 1.0)
        b, i = g.boundary_mask(), g.interior_mask()
        assert (b ^ i).all()
        assert b.sum() == 16 and i.sum() == 9

    def test_nearest_index(self):
        g = RectGrid(11, 11, 10.0, 10.0)
        assert g.nearest_index(np.array([0.0, 0.0])) == (0, 0)
        assert g.nearest_index(np.array([5.2, 4.8])) == (5, 5)
        assert g.nearest_index(np.array([99.0, -5.0])) == (10, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RectGrid(1, 5, 1.0, 1.0)
        with pytest.raises(ValueError):
            RectGrid(5, 5, 0.0, 1.0)


class TestIDW:
    def test_exact_at_samples(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        vals = np.array([1.0, 2.0, 3.0])
        out = idw_interpolate(pts, vals, pts)
        assert np.allclose(out, vals, atol=1e-6)

    def test_bounded_by_extremes(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]])
        vals = np.array([0.0, 100.0])
        queries = np.random.default_rng(0).uniform(0, 10, size=(50, 2))
        out = idw_interpolate(pts, vals, queries)
        assert (out >= 0.0).all() and (out <= 100.0).all()

    def test_single_sample_constant(self):
        pts = np.array([[5.0, 5.0]])
        out = idw_interpolate(pts, np.array([7.0]), np.array([[0.0, 0.0], [9.0, 9.0]]))
        assert np.allclose(out, 7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            idw_interpolate(np.zeros((0, 2)), np.zeros(0), np.zeros((1, 2)))
        with pytest.raises(ValueError):
            idw_interpolate(np.zeros((2, 3)), np.zeros(2), np.zeros((1, 2)))
        with pytest.raises(ValueError):
            idw_interpolate(np.zeros((2, 2)), np.zeros(3), np.zeros((1, 2)))

    def test_readings_to_grid_shape(self):
        g = RectGrid(6, 7, 10.0, 10.0)
        pts = np.array([[2.0, 2.0], [8.0, 8.0]])
        field = readings_to_grid(g, pts, np.array([10.0, 30.0]))
        assert field.shape == (6, 7)
        assert 10.0 - 1e-9 <= field.mean() <= 30.0 + 1e-9


class TestHeatSolver:
    def test_constant_boundary_gives_constant_field(self):
        g = RectGrid(8, 8, 1.0, 1.0)
        field = HeatSolver(g).solve_steady(np.full(g.shape, 25.0))
        assert np.allclose(field, 25.0, atol=1e-8)

    def test_linear_profile_between_hot_and_cold_walls(self):
        """The Laplace solution with linear Dirichlet data is linear."""
        g = RectGrid(21, 5, 1.0, 1.0)
        xs = np.linspace(0.0, 100.0, g.nx)
        bvals = np.broadcast_to(xs[:, None], g.shape).copy()
        field = HeatSolver(g).solve_steady(bvals)
        assert np.allclose(field, bvals, atol=1e-6)

    def test_maximum_principle(self):
        """Without sources, interior extrema cannot exceed boundary extrema."""
        g = RectGrid(12, 12, 1.0, 1.0)
        rng = np.random.default_rng(0)
        bvals = np.zeros(g.shape)
        b = g.boundary_mask()
        bvals[b] = rng.uniform(10.0, 50.0, size=int(b.sum()))
        field = HeatSolver(g).solve_steady(bvals)
        assert field.min() >= 10.0 - 1e-8
        assert field.max() <= 50.0 + 1e-8

    def test_source_raises_interior_temperature(self):
        g = RectGrid(15, 15, 1.0, 1.0)
        solver = HeatSolver(g)
        cold = solver.solve_steady(np.zeros(g.shape))
        src = np.zeros(g.shape)
        src[7, 7] = 100.0
        hot = solver.solve_steady(np.zeros(g.shape), source=src)
        assert hot[7, 7] > cold[7, 7]
        assert hot.max() > 0.0

    def test_fixed_interior_point(self):
        """A sensor reading can be pinned anywhere, not just the boundary."""
        g = RectGrid(9, 9, 1.0, 1.0)
        fixed = g.boundary_mask()
        fixed[4, 4] = True
        bvals = np.zeros(g.shape)
        bvals[4, 4] = 500.0
        field = HeatSolver(g).solve_steady(bvals, fixed_mask=fixed)
        assert field[4, 4] == pytest.approx(500.0)
        assert field[4, 5] > 0.0  # heat spreads

    def test_transient_converges_to_steady(self):
        g = RectGrid(10, 10, 1.0, 1.0)
        solver = HeatSolver(g)
        bvals = np.zeros(g.shape)
        bvals[0, :] = 100.0
        fixed = g.boundary_mask()
        steady = solver.solve_steady(bvals, fixed_mask=fixed)
        t = bvals.copy()
        for _ in range(200):
            t = solver.step_transient(t, dt=0.05, fixed_mask=fixed, boundary_values=bvals)
        assert np.allclose(t, steady, atol=0.5)

    def test_transient_stable_large_dt(self):
        g = RectGrid(10, 10, 1.0, 1.0)
        solver = HeatSolver(g)
        t = np.zeros(g.shape)
        t[5, 5] = 1000.0
        t1 = solver.step_transient(t, dt=100.0)
        assert np.isfinite(t1).all()

    def test_validation(self):
        g = RectGrid(4, 4, 1.0, 1.0)
        with pytest.raises(ValueError):
            HeatSolver(g, conductivity=0.0)
        solver = HeatSolver(g)
        with pytest.raises(ValueError):
            solver.solve_steady(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            solver.solve_steady(np.zeros(g.shape), fixed_mask=np.zeros(g.shape, dtype=bool))
        with pytest.raises(ValueError):
            solver.step_transient(np.zeros(g.shape), dt=0.0)

    def test_ops_estimate_grows_superlinearly(self):
        small = RectGrid(10, 10, 1.0, 1.0)
        large = RectGrid(40, 40, 1.0, 1.0)
        ratio = HeatSolver(large).ops_estimate() / HeatSolver(small).ops_estimate()
        assert ratio > 16.0  # superlinear in point count (16x points)

    def test_solve_ops_estimate_validation(self):
        with pytest.raises(ValueError):
            solve_ops_estimate(-1)
        assert solve_ops_estimate(0) == 0.0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=3, max_value=12), st.integers(min_value=0, max_value=50))
    def test_property_maximum_principle(self, n, seed):
        g = RectGrid(n, n, 1.0, 1.0)
        rng = np.random.default_rng(seed)
        bvals = np.zeros(g.shape)
        b = g.boundary_mask()
        vals = rng.uniform(-5.0, 5.0, size=int(b.sum()))
        bvals[b] = vals
        field = HeatSolver(g).solve_steady(bvals)
        assert field.min() >= vals.min() - 1e-8
        assert field.max() <= vals.max() + 1e-8
