"""Unit tests for the 3-D grid and heat solver, plus query integration."""

import numpy as np
import pytest

from repro.pde import BoxGrid, HeatSolver3D, solve3d_ops_estimate


class TestBoxGrid:
    def test_basic_properties(self):
        g = BoxGrid(5, 4, 3, 10.0, 6.0, 2.0)
        assert g.n_points == 60
        assert g.shape == (5, 4, 3)
        assert g.dx == pytest.approx(2.5)
        assert g.dz == pytest.approx(1.0)

    def test_points_cover_extent(self):
        g = BoxGrid(3, 3, 3, 10.0, 20.0, 5.0)
        pts = g.points()
        assert pts.shape == (27, 3)
        assert pts[:, 0].max() == 10.0
        assert pts[:, 1].max() == 20.0
        assert pts[:, 2].max() == 5.0

    def test_index_c_order(self):
        g = BoxGrid(3, 4, 5, 1.0, 1.0, 1.0)
        assert g.index(0, 0, 0) == 0
        assert g.index(0, 0, 4) == 4
        assert g.index(0, 1, 0) == 5
        assert g.index(1, 0, 0) == 20
        with pytest.raises(IndexError):
            g.index(3, 0, 0)

    def test_masks_partition(self):
        g = BoxGrid(4, 4, 4, 1.0, 1.0, 1.0)
        b, i = g.boundary_mask(), g.interior_mask()
        assert (b ^ i).all()
        assert i.sum() == 8  # 2x2x2 interior

    def test_nearest_index_clips(self):
        g = BoxGrid(11, 11, 5, 10.0, 10.0, 4.0)
        assert g.nearest_index(np.array([5.0, 5.0, 2.0])) == (5, 5, 2)
        assert g.nearest_index(np.array([-3.0, 99.0, 99.0])) == (0, 10, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            BoxGrid(1, 3, 3, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            BoxGrid(3, 3, 3, 0.0, 1.0, 1.0)


class TestHeatSolver3D:
    def test_constant_boundary_constant_field(self):
        g = BoxGrid(6, 6, 6, 1.0, 1.0, 1.0)
        field = HeatSolver3D(g).solve_steady(np.full(g.shape, 30.0))
        assert np.allclose(field, 30.0, atol=1e-8)

    def test_linear_profile(self):
        g = BoxGrid(9, 4, 4, 1.0, 1.0, 1.0)
        xs = np.linspace(0.0, 100.0, g.nx)
        bvals = np.broadcast_to(xs[:, None, None], g.shape).copy()
        field = HeatSolver3D(g).solve_steady(bvals)
        assert np.allclose(field, bvals, atol=1e-6)

    def test_maximum_principle(self):
        g = BoxGrid(7, 7, 5, 1.0, 1.0, 1.0)
        rng = np.random.default_rng(0)
        bvals = np.zeros(g.shape)
        b = g.boundary_mask()
        vals = rng.uniform(5.0, 50.0, size=int(b.sum()))
        bvals[b] = vals
        field = HeatSolver3D(g).solve_steady(bvals)
        assert field.min() >= vals.min() - 1e-8
        assert field.max() <= vals.max() + 1e-8

    def test_interior_anchor(self):
        g = BoxGrid(7, 7, 7, 1.0, 1.0, 1.0)
        fixed = g.boundary_mask()
        fixed[3, 3, 3] = True
        bvals = np.zeros(g.shape)
        bvals[3, 3, 3] = 400.0
        field = HeatSolver3D(g).solve_steady(bvals, fixed_mask=fixed)
        assert field[3, 3, 3] == pytest.approx(400.0)
        assert field[3, 3, 4] > 0.0

    def test_source_heats_interior(self):
        g = BoxGrid(8, 8, 8, 1.0, 1.0, 1.0)
        solver = HeatSolver3D(g)
        src = np.zeros(g.shape)
        src[4, 4, 4] = 1000.0
        hot = solver.solve_steady(np.zeros(g.shape), source=src)
        assert hot[4, 4, 4] > 0.0

    def test_validation(self):
        g = BoxGrid(3, 3, 3, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            HeatSolver3D(g, conductivity=0.0)
        with pytest.raises(ValueError):
            HeatSolver3D(g).solve_steady(np.zeros((2, 2, 2)))
        with pytest.raises(ValueError):
            HeatSolver3D(g).solve_steady(np.zeros(g.shape), fixed_mask=np.zeros(g.shape, dtype=bool))

    def test_ops_estimate(self):
        with pytest.raises(ValueError):
            solve3d_ops_estimate(-1)
        # 3-D solves are charged quadratically: far beyond 2-D's n^1.5
        from repro.pde import solve_ops_estimate

        assert solve3d_ops_estimate(1000) > solve_ops_estimate(1000)


class TestDistribution3DQuery:
    def test_end_to_end_3d_query(self):
        from repro.core import PervasiveGridRuntime

        rt = PervasiveGridRuntime(n_sensors=16, area_m=30.0, seed=4,
                                  grid_resolution=16, noise_std=0.0)
        out = rt.query("SELECT DISTRIBUTION3D(value) FROM sensors COST accuracy 0.05")
        assert out[0].success
        field = out[0].value
        assert field.shape == (16, 16, 4)
        # ambient 20 C everywhere -> field near 20 throughout the volume
        assert np.allclose(field, 20.0, atol=1.5)
        assert out[0].rel_error < 0.05

    def test_3d_classified_complex_and_grid_bound(self):
        from repro.queries import classify, parse_query, QueryClass
        from repro.queries.models import GridOffloadModel, HandheldModel
        from repro.core import PervasiveGridRuntime

        q = parse_query("SELECT DISTRIBUTION3D(value) FROM sensors")
        assert classify(q) is QueryClass.COMPLEX

        rt = PervasiveGridRuntime(n_sensors=16, area_m=30.0, seed=4, grid_resolution=24)
        targets = rt.deployment.alive_sensor_ids()
        grid_est = GridOffloadModel().estimate(q, rt.ctx, targets)
        hh_est = HandheldModel().estimate(q, rt.ctx, targets)
        # the 3-D solve is emphatically grid territory
        assert grid_est.time_s < hh_est.time_s / 100.0
