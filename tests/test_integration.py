"""End-to-end integration matrix: scenarios x policies x query classes.

These tests exercise the whole stack together -- DES kernel, wireless
substrate, sensors, grid, decision maker, query models -- the way a
downstream user would.
"""

import numpy as np
import pytest

from repro.core import (
    EstimateGreedyPolicy,
    LearnedPolicy,
    PervasiveGridRuntime,
    StaticPolicy,
)
from repro.network.churn import ChurnProcess
from repro.queries import QueryClass
from repro.workloads import (
    QueryWorkload,
    defense_scenario,
    fire_scenario,
    health_scenario,
    intrusion_scenario,
)

QUERIES = {
    QueryClass.SIMPLE: "SELECT value FROM sensors WHERE sensor_id = 3",
    QueryClass.AGGREGATE: "SELECT AVG(value) FROM sensors",
    QueryClass.COMPLEX: "SELECT DISTRIBUTION(value) FROM sensors",
    QueryClass.CONTINUOUS: "SELECT MAX(value) FROM sensors EPOCH DURATION 5 FOR 15",
}


def policies():
    return [
        EstimateGreedyPolicy(),
        StaticPolicy("centralized"),
        StaticPolicy("grid"),
        LearnedPolicy(rng=np.random.default_rng(0)),
    ]


class TestPolicyByClassMatrix:
    @pytest.mark.parametrize("qclass", list(QUERIES))
    @pytest.mark.parametrize("policy_idx", range(4))
    def test_every_policy_answers_every_class(self, qclass, policy_idx):
        policy = policies()[policy_idx]
        rt = PervasiveGridRuntime(n_sensors=16, area_m=30.0, seed=14,
                                  policy=policy, grid_resolution=12,
                                  noise_std=0.0)
        outcomes = rt.query(QUERIES[qclass])
        assert all(o.success for o in outcomes)
        assert all(o.query_class is qclass for o in outcomes)


class TestScenarioWorkloads:
    @pytest.mark.parametrize("builder,seed", [
        (fire_scenario, 21),
        (health_scenario, 22),
        (intrusion_scenario, 23),
    ])
    def test_mixed_workload_mostly_succeeds(self, builder, seed):
        rt = builder(n_sensors=16, seed=seed, grid_resolution=12)
        wl = QueryWorkload(rt.streams.get("itest"), n_sensors=16,
                           mix=(0.3, 0.5, 0.2, 0.0), cost_prob=0.3)
        ok = 0
        for _ in range(15):
            out = rt.query(wl.next_text())
            ok += all(o.success for o in out)
            rt.sim.run(until=rt.sim.now + 5.0)
        assert ok >= 13

    def test_defense_scenario_workload(self):
        # random placement: partitions possible, so the bar is lower
        rt = defense_scenario(n_sensors=25, seed=24, grid_resolution=12)
        wl = QueryWorkload(rt.streams.get("itest"), n_sensors=25,
                           mix=(0.3, 0.5, 0.2, 0.0), cost_prob=0.0)
        ok = sum(all(o.success for o in rt.query(wl.next_text())) for _ in range(10))
        assert ok >= 7


class TestChurnIntegration:
    def test_continuous_query_survives_churn(self):
        rt = PervasiveGridRuntime(n_sensors=25, area_m=40.0, seed=15,
                                  grid_resolution=12)
        churn = ChurnProcess(
            rt.sim, rt.deployment.topology,
            nodes=rt.deployment.sensor_ids[::5],
            rng=rt.streams.get("churn"),
            mean_up_s=30.0, mean_down_s=10.0,
        )
        churn.start()
        epochs = []
        rt.submit("SELECT AVG(value) FROM sensors EPOCH DURATION 5 FOR 100",
                  lambda o: None, on_epoch=epochs.append)
        rt.sim.run(until=150.0)
        assert len(epochs) == 20
        # churn may fail individual epochs, but most answer
        assert sum(e.success for e in epochs) >= 15


class TestDeterminism:
    def _run(self, seed):
        rt = fire_scenario(n_sensors=16, seed=seed, grid_resolution=12)
        wl = QueryWorkload(rt.streams.get("det"), n_sensors=16, mix=(0.3, 0.5, 0.2, 0.0))
        trace = []
        for _ in range(8):
            out = rt.query(wl.next_text())
            trace.append((out[0].model, out[0].time_s, out[0].energy_j,
                          repr(out[0].value)[:40]))
            rt.sim.run(until=rt.sim.now + 5.0)
        return trace

    def test_full_stack_bit_reproducible(self):
        assert self._run(31) == self._run(31)

    def test_different_seeds_differ(self):
        assert self._run(31) != self._run(32)


class TestRuntimeRobustness:
    def test_query_timeout_raises(self):
        rt = PervasiveGridRuntime(n_sensors=9, area_m=20.0, seed=1)
        with pytest.raises(TimeoutError):
            rt.query("SELECT AVG(value) FROM sensors EPOCH DURATION 100 FOR 1000",
                     horizon_s=50.0)

    def test_fully_dead_network_fails_cleanly(self):
        rt = PervasiveGridRuntime(n_sensors=9, area_m=20.0, seed=1)
        for sid in rt.deployment.sensor_ids:
            rt.deployment.topology.kill(sid)
        out = rt.query("SELECT AVG(value) FROM sensors")
        assert not out[0].success

    def test_single_sensor_network(self):
        rt = PervasiveGridRuntime(n_sensors=1, area_m=5.0, seed=2, noise_std=0.0)
        out = rt.query("SELECT value FROM sensors WHERE sensor_id = 0")
        assert out[0].success
        assert out[0].value == pytest.approx(20.0)
