"""Unit tests for the from-scratch learners."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import KNNRegressor, RegressionTree


class TestKNN:
    def test_predicts_mean_of_neighbours(self):
        knn = KNNRegressor(k=2)
        knn.update(np.array([0.0]), 1.0)
        knn.update(np.array([0.1]), 3.0)
        knn.update(np.array([10.0]), 100.0)
        assert knn.predict(np.array([0.05])) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(RuntimeError):
            KNNRegressor().predict(np.array([0.0]))

    def test_k_larger_than_data(self):
        knn = KNNRegressor(k=10)
        knn.update(np.array([0.0]), 5.0)
        assert knn.predict(np.array([1.0])) == 5.0

    def test_standardization_handles_scales(self):
        """A huge-scale irrelevant feature must not drown a relevant one."""
        knn = KNNRegressor(k=1)
        rng = np.random.default_rng(0)
        for _ in range(50):
            relevant = rng.uniform(0, 1)
            noise = rng.uniform(0, 1e9)
            knn.update(np.array([relevant, noise]), 100.0 * relevant)
        pred = knn.predict(np.array([0.5, 5e8]))
        assert pred == pytest.approx(50.0, abs=15.0)

    def test_sliding_window_evicts(self):
        knn = KNNRegressor(k=1, max_points=3)
        for i in range(10):
            knn.update(np.array([float(i)]), float(i))
        assert len(knn) == 3
        # oldest points gone: nearest to 0 is now 7
        assert knn.predict(np.array([0.0])) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            KNNRegressor(k=0)
        with pytest.raises(ValueError):
            KNNRegressor(max_points=0)

    @settings(max_examples=20)
    @given(st.lists(st.tuples(st.floats(-10, 10), st.floats(-10, 10)), min_size=1, max_size=30))
    def test_prediction_within_label_range(self, data):
        knn = KNNRegressor(k=3)
        for x, y in data:
            knn.update(np.array([x]), y)
        ys = [y for _, y in data]
        pred = knn.predict(np.array([0.0]))
        assert min(ys) - 1e-9 <= pred <= max(ys) + 1e-9


class TestRegressionTree:
    def test_learns_step_function(self):
        tree = RegressionTree(refit_every=1)
        rng = np.random.default_rng(0)
        for _ in range(100):
            x = rng.uniform(0, 1)
            tree.update(np.array([x]), 10.0 if x > 0.5 else -10.0)
        assert tree.predict(np.array([0.9])) == pytest.approx(10.0, abs=1.0)
        assert tree.predict(np.array([0.1])) == pytest.approx(-10.0, abs=1.0)

    def test_learns_interaction(self):
        tree = RegressionTree(max_depth=4, refit_every=8)
        rng = np.random.default_rng(1)
        for _ in range(300):
            a, b = rng.uniform(0, 1, 2)
            y = 5.0 if (a > 0.5) and (b > 0.5) else 0.0
            tree.update(np.array([a, b]), y)
        assert tree.predict(np.array([0.9, 0.9])) > 3.0
        assert tree.predict(np.array([0.1, 0.9])) < 2.0

    def test_empty_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.array([0.0]))

    def test_constant_labels_single_leaf(self):
        tree = RegressionTree(refit_every=1)
        for i in range(20):
            tree.update(np.array([float(i)]), 7.0)
        assert tree.predict(np.array([100.0])) == 7.0

    def test_window_bound(self):
        tree = RegressionTree(max_points=10, refit_every=1)
        for i in range(50):
            tree.update(np.array([float(i)]), float(i))
        assert len(tree) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples=1)
        with pytest.raises(ValueError):
            RegressionTree(refit_every=0)

    def test_refit_cadence(self):
        tree = RegressionTree(refit_every=5)
        for i in range(4):
            tree.update(np.array([float(i)]), float(i))
        # first update always fits; predictions available immediately
        assert isinstance(tree.predict(np.array([0.0])), float)
