"""Integration tests: replicated discovery + broker failover in the runtime."""

import pytest

from repro.core.runtime import PervasiveGridRuntime
from repro.discovery import BrokerAgent, ReplicatedRegistry, ServiceDescription
from repro.faults import NodeCrash


def svc(name, host=None, category="TemperatureSensorService"):
    return ServiceDescription(name=name, category=category, host_node=host)


class TestRuntimeReplicatedDiscovery:
    def test_default_runtime_uses_replicated_registry(self):
        rt = PervasiveGridRuntime(n_sensors=9, seed=1)
        assert isinstance(rt.registry, ReplicatedRegistry)
        assert isinstance(rt.broker, BrokerAgent)
        assert rt.platform.is_registered("broker")
        rt.registry.advertise(svc("t0", host=0))
        assert rt.registry.get("t0") is not None
        assert rt.registry.log is rt.discovery_log

    def test_fault_withdraws_host_services(self):
        rt = PervasiveGridRuntime(n_sensors=9, seed=1)
        injector = rt.fault_injector()
        rt.registry.advertise(svc("t3", host=3))
        rt.registry.advertise(svc("t4", host=4))
        injector.schedule(NodeCrash(node=3, at_s=5.0))
        rt.sim.run(until=10.0)
        assert rt.registry.get("t3") is None
        assert rt.registry.get("t4") is not None

    def test_broker_group_failover_end_to_end(self):
        rt = PervasiveGridRuntime(n_sensors=9, seed=1, broker_hosts=(0, 1, 2),
                                  broker_detection_delay_s=2.0)
        group = rt.broker_group
        assert group is not None and group.active_id == 0
        injector = rt.fault_injector()
        for i in range(6):
            rt.registry.advertise(svc(f"t{i}", host=3 + i % 2))
        injector.schedule(NodeCrash(node=0, at_s=5.0))
        rt.sim.run(until=60.0)
        assert group.active_id == 1
        assert group.failovers == 1
        assert rt.platform.is_registered("broker")
        # nothing advertised before the crash was lost
        names = [s.name for s in group.active.view.services()]
        assert names == [f"t{i}" for i in range(6)]

    def test_crashed_broker_host_also_withdraws_its_services(self):
        rt = PervasiveGridRuntime(n_sensors=9, seed=1, broker_hosts=(0, 1))
        injector = rt.fault_injector()
        rt.registry.advertise(svc("on-broker-host", host=0))
        rt.registry.advertise(svc("elsewhere", host=5))
        injector.schedule(NodeCrash(node=0, at_s=1.0))
        rt.sim.run(until=30.0)
        assert rt.broker_group.active_id == 1
        survivors = [s.name for s in rt.broker_group.active.view.services()]
        assert survivors == ["elsewhere"]

    def test_attach_slos_registers_discovery_probes(self):
        rt = PervasiveGridRuntime(n_sensors=9, seed=1, broker_hosts=(0, 1))
        evaluator = rt.attach_slos(until_s=120.0)
        assert "disc.broker_online" in evaluator._probes
        assert "disc.staleness" in evaluator._probes
        rt.sim.run(until=130.0)
        status = evaluator.status["disc.broker_availability"]
        assert status.value == pytest.approx(1.0)
        assert not status.firing

    def test_availability_slo_fires_during_failover_and_resolves(self):
        rt = PervasiveGridRuntime(n_sensors=9, seed=1, broker_hosts=(0, 1),
                                  broker_detection_delay_s=40.0)
        injector = rt.fault_injector()
        evaluator = rt.attach_slos(interval_s=15.0, until_s=600.0)
        injector.schedule(NodeCrash(node=0, at_s=50.0))
        rt.sim.run(until=600.0)
        assert rt.broker_group.failovers == 1
        status = evaluator.status["disc.broker_availability"]
        assert status.fired >= 1
        assert status.resolved >= 1
        assert not status.firing
        phases = [e.phase for e in evaluator.timeline
                  if e.slo == "disc.broker_availability"]
        assert phases[0] == "fire"
        assert phases[-1] == "resolve"
