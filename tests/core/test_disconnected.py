"""Disconnected operation: the grid is unreachable, queries still run.

The pervasive-grid premise is "ubiquity of access" over unreliable
country-road links -- the backhaul itself can fail.  These tests verify
the Decision Maker degrades to local computation during uplink outages
and resumes offloading when the WAN returns.
"""

import pytest

from repro.core import PervasiveGridRuntime
from repro.grid import ComputeJob, Uplink
from repro.simkernel import Simulator


class TestUplinkOutage:
    def test_offline_transfer_raises(self):
        sim = Simulator()
        link = Uplink(sim)
        link.online = False
        with pytest.raises(RuntimeError):
            link.transfer(100.0)

    def test_grid_online_mirrors_uplink(self):
        rt = PervasiveGridRuntime(n_sensors=9, area_m=20.0, seed=0)
        assert rt.grid.online
        rt.grid.uplink.online = False
        assert not rt.grid.online


class TestDisconnectedQueries:
    def make(self):
        return PervasiveGridRuntime(n_sensors=25, area_m=40.0, seed=6,
                                    grid_resolution=24, noise_std=0.0)

    def test_grid_model_infeasible_when_offline(self):
        from repro.queries import parse_query
        from repro.queries.models import GridOffloadModel

        rt = self.make()
        q = parse_query("SELECT DISTRIBUTION(value) FROM sensors")
        targets = rt.deployment.alive_sensor_ids()
        rt.grid.uplink.online = False
        assert not GridOffloadModel().supports(q, rt.ctx)

    def test_complex_query_falls_back_to_base_station(self):
        rt = self.make()
        rt.grid.uplink.online = False
        out = rt.query("SELECT DISTRIBUTION(value) FROM sensors COST accuracy 0.05")
        assert out[0].success
        assert out[0].model in ("centralized", "handheld")
        assert out[0].rel_error < 0.05

    def test_region_computes_complex_at_base_when_offline(self):
        from repro.core import StaticPolicy
        from repro.core.decision import DecisionMaker

        rt = PervasiveGridRuntime(n_sensors=25, area_m=40.0, seed=6,
                                  grid_resolution=24, noise_std=0.0,
                                  policy=StaticPolicy("region"))
        rt.grid.uplink.online = False
        out = rt.query("SELECT DISTRIBUTION(value) FROM sensors")
        assert out[0].success
        assert out[0].model == "region"
        # nothing crossed the WAN
        assert rt.grid.uplink.transfers == 0

    def test_reconnection_restores_offload(self):
        rt = self.make()
        rt.grid.uplink.online = False
        out1 = rt.query("SELECT DISTRIBUTION(value) FROM sensors COST accuracy 0.05")
        assert out1[0].model != "grid"
        rt.grid.uplink.online = True
        out2 = rt.query("SELECT DISTRIBUTION(value) FROM sensors COST accuracy 0.05")
        assert out2[0].model == "grid"

    def test_aggregates_unaffected_by_outage(self):
        rt = self.make()
        rt.grid.uplink.online = False
        out = rt.query("SELECT AVG(value) FROM sensors")
        assert out[0].success
        assert out[0].value == pytest.approx(20.0, rel=0.05)
