"""Tests for the Decision Maker, policies, features and the runtime façade."""

import math

import numpy as np
import pytest

from repro.core import (
    DecisionMaker,
    EstimateGreedyPolicy,
    FEATURE_NAMES,
    KNNRegressor,
    LearnedPolicy,
    OraclePolicy,
    PervasiveGridRuntime,
    StaticPolicy,
    default_objective,
    featurize,
)
from repro.queries import QueryClass, parse_query
from repro.queries.models import ALL_MODELS, CentralizedModel, InNetworkTreeModel

AVG_Q = parse_query("SELECT AVG(value) FROM sensors")
COMPLEX_Q = parse_query("SELECT DISTRIBUTION(value) FROM sensors")


def make_runtime(**kw):
    kw.setdefault("n_sensors", 25)
    kw.setdefault("area_m", 40.0)
    kw.setdefault("seed", 3)
    kw.setdefault("noise_std", 0.0)
    kw.setdefault("grid_resolution", 20)
    return PervasiveGridRuntime(**kw)


class TestFeatures:
    def test_feature_vector_shape_and_names(self):
        rt = make_runtime()
        targets = rt.deployment.alive_sensor_ids()
        est = CentralizedModel().estimate(AVG_Q, rt.ctx, targets)
        x = featurize(AVG_Q, rt.ctx, targets, est)
        assert x.shape == (len(FEATURE_NAMES),)
        assert np.isfinite(x).all()

    def test_class_one_hot(self):
        rt = make_runtime()
        targets = rt.deployment.alive_sensor_ids()
        est = CentralizedModel().estimate(COMPLEX_Q, rt.ctx, targets)
        x = featurize(COMPLEX_Q, rt.ctx, targets, est)
        idx = {n: i for i, n in enumerate(FEATURE_NAMES)}
        assert x[idx["is_complex"]] == 1.0
        assert x[idx["is_aggregate"]] == 0.0


class TestDecisionMaker:
    def test_estimates_cover_all_models(self):
        rt = make_runtime()
        targets = rt.deployment.alive_sensor_ids()
        ests = rt.decision_maker.estimates(AVG_Q, rt.ctx, targets)
        assert set(ests) == {m.name for m in rt.models}

    def test_decide_returns_feasible_model(self):
        rt = make_runtime()
        targets = rt.deployment.alive_sensor_ids()
        decision = rt.decision_maker.decide(AVG_Q, rt.ctx, targets)
        assert decision is not None
        assert decision.estimate.feasible

    def test_decide_none_when_no_targets(self):
        rt = make_runtime()
        assert rt.decision_maker.decide(AVG_Q, rt.ctx, []) is None

    def test_duplicate_model_names_rejected(self):
        with pytest.raises(ValueError):
            DecisionMaker([CentralizedModel(), CentralizedModel()], EstimateGreedyPolicy())
        with pytest.raises(ValueError):
            DecisionMaker([], EstimateGreedyPolicy())

    def test_cost_clause_constrains_choice(self):
        rt = make_runtime()
        targets = rt.deployment.alive_sensor_ids()
        # demand exact answers: region (rel_error > 0) must be excluded
        q = parse_query("SELECT AVG(value) FROM sensors COST accuracy 0.0")
        decision = rt.decision_maker.decide(q, rt.ctx, targets)
        assert decision.model.name != "region"

    def test_static_policy_prefers_named(self):
        rt = make_runtime(policy=StaticPolicy("tree"))
        targets = rt.deployment.alive_sensor_ids()
        decision = rt.decision_maker.decide(AVG_Q, rt.ctx, targets)
        assert decision.model.name == "tree"

    def test_static_policy_falls_back_when_unsupported(self):
        rt = make_runtime(policy=StaticPolicy("tree"))
        targets = rt.deployment.alive_sensor_ids()
        decision = rt.decision_maker.decide(COMPLEX_Q, rt.ctx, targets)
        assert decision is not None
        assert decision.model.name != "tree"

    def test_oracle_uses_lookup(self):
        oracle = OraclePolicy()
        rt = make_runtime(policy=oracle)
        targets = rt.deployment.alive_sensor_ids()
        oracle.lookup = {"centralized": 0.001, "tree": 99.0}
        decision = rt.decision_maker.decide(AVG_Q, rt.ctx, targets)
        assert decision.model.name == "centralized"

    def test_default_objective_blends(self):
        assert default_objective(1e-3, 0.0) == pytest.approx(1.0)
        assert default_objective(0.0, 1.0) == pytest.approx(1.0)


class TestLearnedPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            LearnedPolicy(epsilon=1.5)

    def test_falls_back_to_estimates_cold(self):
        policy = LearnedPolicy(epsilon=0.0, rng=np.random.default_rng(0))
        rt = make_runtime(policy=policy)
        targets = rt.deployment.alive_sensor_ids()
        decision = rt.decision_maker.decide(AVG_Q, rt.ctx, targets)
        assert decision is not None  # cold start works

    def test_updates_accumulate_and_epsilon_decays(self):
        policy = LearnedPolicy(epsilon=0.5, epsilon_decay=0.5, rng=np.random.default_rng(0))
        rt = make_runtime(policy=policy)
        out = rt.query("SELECT AVG(value) FROM sensors")
        assert policy.updates == 1
        assert policy.epsilon == pytest.approx(0.25)

    def test_learner_corrects_systematic_bias(self):
        """Feed the policy outcomes where one model is secretly terrible."""
        policy = LearnedPolicy(learner_factory=lambda: KNNRegressor(k=1),
                               epsilon=0.0, rng=np.random.default_rng(0))
        rt = make_runtime(policy=policy)
        targets = rt.deployment.alive_sensor_ids()
        ests = rt.decision_maker.estimates(AVG_Q, rt.ctx, targets)
        # teach: tree is 1000x worse than its estimate claims
        for _ in range(5):
            policy.update(AVG_Q, rt.ctx, targets, "tree", ests["tree"], 1.0, 1000.0)
            policy.update(AVG_Q, rt.ctx, targets, "centralized", ests["centralized"],
                          ests["centralized"].energy_j, ests["centralized"].time_s)
        decision = rt.decision_maker.decide(AVG_Q, rt.ctx, targets)
        assert decision.model.name != "tree"


class TestRuntimeFacade:
    def test_query_returns_outcomes(self):
        rt = make_runtime()
        out = rt.query("SELECT AVG(value) FROM sensors")
        assert len(out) == 1
        assert out[0].success
        assert out[0].query_class is QueryClass.AGGREGATE
        assert out[0].value == pytest.approx(20.0, rel=0.05)  # default ambient field

    def test_simple_query(self):
        rt = make_runtime()
        out = rt.query("SELECT value FROM sensors WHERE sensor_id = 3")
        assert out[0].success
        assert out[0].readings_used == 1

    def test_complex_query_field(self):
        rt = make_runtime()
        out = rt.query("SELECT DISTRIBUTION(value) FROM sensors")
        assert out[0].success
        assert out[0].value.shape == (20, 20)
        assert out[0].rel_error < 0.1

    def test_continuous_query_epochs(self):
        rt = make_runtime()
        epochs = []
        rt.submit("SELECT AVG(value) FROM sensors EPOCH DURATION 5 FOR 20", lambda o: None,
                  on_epoch=epochs.append)
        rt.sim.run(until=100.0)
        assert len(epochs) == 4
        assert all(e.success for e in epochs)
        assert [e.epoch_index for e in epochs] == [0, 1, 2, 3]

    def test_no_targets_failure(self):
        rt = make_runtime()
        out = rt.query("SELECT value FROM sensors WHERE sensor_id = 9999")
        assert not out[0].success
        assert out[0].error == "no targets"

    def test_rel_error_meaningful(self):
        rt = make_runtime(noise_std=2.0)
        out = rt.query("SELECT AVG(value) FROM sensors")
        assert math.isfinite(out[0].rel_error)
        assert out[0].rel_error < 0.2

    def test_energy_accounting(self):
        rt = make_runtime()
        assert rt.energy_consumed_j() == 0.0
        rt.query("SELECT AVG(value) FROM sensors")
        assert rt.energy_consumed_j() > 0.0

    def test_reproducible_runs(self):
        def run(seed):
            rt = make_runtime(seed=seed)
            out = rt.query("SELECT AVG(value) FROM sensors")
            return out[0].time_s, out[0].energy_j, out[0].model

        assert run(5) == run(5)

    def test_broker_registered(self):
        rt = make_runtime()
        assert rt.platform.is_registered("broker")

    def test_feedback_reaches_policy(self):
        class SpyPolicy(EstimateGreedyPolicy):
            def __init__(self):
                self.feedbacks = []

            def update(self, *args):
                self.feedbacks.append(args)

        spy = SpyPolicy()
        rt = make_runtime(policy=spy)
        rt.query("SELECT AVG(value) FROM sensors")
        assert len(spy.feedbacks) == 1
