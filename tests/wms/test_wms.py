"""Tests for the workload-management service: queues, matching, pilots."""

import math

import numpy as np
import pytest

from repro.grid.job import ComputeJob
from repro.grid.resource import GridResource
from repro.observability.tracer import Tracer
from repro.simkernel import Monitor, Simulator
from repro.wms import (
    DEFAULT_CLASSES,
    NO_REQUIREMENTS,
    PilotWorker,
    PriorityClass,
    ResourceDescription,
    Task,
    TaskQueueService,
    TaskRequirements,
    WorkloadManager,
    describe,
)


def desc(name="site0", rate=1e9, backlog=0.0, healthy=True):
    return ResourceDescription(name=name, ops_per_second=rate,
                               backlog_s=backlog, healthy=healthy)


class TestTaskAndClasses:
    def test_priority_class_validation(self):
        with pytest.raises(ValueError):
            PriorityClass("", 1.0)
        with pytest.raises(ValueError):
            PriorityClass("x", 0.0)
        with pytest.raises(ValueError):
            PriorityClass("x", float("inf"))

    def test_task_validation_and_lifecycle_stamps(self):
        with pytest.raises(ValueError):
            Task(ops=-1.0)
        with pytest.raises(ValueError):
            Task(ops=1.0, input_bits=-1.0)
        t = Task(ops=5.0)
        assert t.state == "waiting"
        assert math.isnan(t.queue_wait_s) and math.isnan(t.turnaround_s)

    def test_task_ids_are_unique(self):
        a, b = Task(ops=1.0), Task(ops=1.0)
        assert a.task_id != b.task_id

    def test_default_catalog_shape(self):
        names = [c.name for c in DEFAULT_CLASSES]
        assert names == ["interactive", "standard", "bulk"]
        weights = [c.weight for c in DEFAULT_CLASSES]
        assert weights == sorted(weights, reverse=True)


class TestMatching:
    def test_no_requirements_accepts_healthy(self):
        assert NO_REQUIREMENTS.accepts(desc())

    def test_requirements_reject_each_axis(self):
        req = TaskRequirements(min_ops_rate=1e6, max_backlog_s=10.0,
                               require_healthy=True,
                               sites=frozenset({"site0"}))
        assert req.accepts(desc())
        assert not req.accepts(desc(rate=1e3))
        assert not req.accepts(desc(backlog=11.0))
        assert not req.accepts(desc(healthy=False))
        assert not req.accepts(desc(name="site1"))

    def test_unhealthy_allowed_when_not_required(self):
        req = TaskRequirements(require_healthy=False)
        assert req.accepts(desc(healthy=False))

    def test_requirements_validation(self):
        with pytest.raises(ValueError):
            TaskRequirements(min_ops_rate=-1.0)
        with pytest.raises(ValueError):
            TaskRequirements(max_backlog_s=-1.0)

    def test_describe_reads_live_resource_state(self):
        sim = Simulator()
        site = GridResource(sim, "siteX", 1e6)
        site.submit(ComputeJob(ops=2e6))
        d = describe(site)
        assert d.name == "siteX"
        assert d.ops_per_second == 1e6
        assert d.backlog_s == pytest.approx(2.0)
        assert d.healthy

    def test_describe_consults_breaker_board(self):
        class Board:
            def blocked_providers(self):
                return {"siteX"}

        sim = Simulator()
        site = GridResource(sim, "siteX", 1e6)
        assert not describe(site, Board()).healthy
        assert describe(GridResource(sim, "siteY", 1e6), Board()).healthy


class TestTaskQueueService:
    def make(self, **kw):
        sim = Simulator()
        monitor = Monitor()
        q = TaskQueueService(sim, monitor=monitor, **kw)
        return sim, monitor, q

    def test_constructor_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TaskQueueService(sim, [])
        with pytest.raises(ValueError):
            TaskQueueService(sim, [PriorityClass("a", 1.0),
                                   PriorityClass("a", 2.0)])
        with pytest.raises(ValueError):
            TaskQueueService(sim, starvation_s=0.0)

    def test_unknown_class_rejected(self):
        _, _, q = self.make()
        with pytest.raises(KeyError):
            q.submit(Task(ops=1.0, priority_class="no-such-class"))

    def test_fifo_within_class(self):
        _, _, q = self.make()
        tasks = [Task(ops=1.0, priority_class="standard", name=f"t{i}")
                 for i in range(3)]
        q.submit_bulk(tasks)
        claimed = [q.claim(desc()).name for _ in range(3)]
        assert claimed == ["t0", "t1", "t2"]
        assert q.claim(desc()) is None

    def test_claim_stamps_lifecycle(self):
        sim, _, q = self.make()
        t = q.submit(Task(ops=1.0))
        got = q.claim(desc())
        assert got is t
        assert t.state == "running" and t.site == "site0" and t.attempts == 1
        q.report(t, True)
        assert t.state == "done"
        assert t.turnaround_s == 0.0

    def test_fair_share_drains_ops_by_weight(self):
        """Over a contended burst, drained ops track the weight ratio."""
        _, _, q = self.make(classes=(PriorityClass("heavy", 3.0),
                                     PriorityClass("light", 1.0)))
        q.submit_bulk([Task(ops=10.0, priority_class="heavy")
                       for _ in range(400)])
        q.submit_bulk([Task(ops=10.0, priority_class="light")
                       for _ in range(400)])
        drained = {"heavy": 0.0, "light": 0.0}
        for _ in range(200):  # both classes stay backlogged throughout
            t = q.claim(desc())
            drained[t.priority_class] += t.ops
        assert drained["heavy"] / drained["light"] == pytest.approx(3.0, rel=0.1)

    def test_head_of_line_blocks_only_its_class(self):
        """A head whose requirements reject the site never blocks other
        classes, and is not overtaken within its own class."""
        _, _, q = self.make()
        picky = Task(ops=1.0, priority_class="interactive", name="picky",
                     requirements=TaskRequirements(sites=frozenset({"other"})))
        easy = Task(ops=1.0, priority_class="interactive", name="easy")
        bulk = Task(ops=1.0, priority_class="bulk", name="bulk")
        q.submit_bulk([picky, easy, bulk])
        # interactive's head rejects site0: the claim falls through to bulk
        assert q.claim(desc()).name == "bulk"
        # the picky head still shields its classmate (strict FIFO)
        assert q.claim(desc()) is None
        assert q.claim(desc(name="other")).name == "picky"
        assert q.claim(desc()).name == "easy"

    def test_idle_class_does_not_hoard_credit(self):
        """A class idle through a long drain re-enters at the current
        virtual clock, not at zero -- it cannot monopolize afterwards."""
        _, _, q = self.make(classes=(PriorityClass("a", 1.0),
                                     PriorityClass("b", 1.0)))
        q.submit_bulk([Task(ops=100.0, priority_class="a")
                       for _ in range(50)])
        for _ in range(40):
            q.claim(desc())
        # b arrives late; without catch-up it would win the next ~40 claims
        q.submit_bulk([Task(ops=100.0, priority_class="b")
                       for _ in range(10)])
        first_ten = [q.claim(desc()).priority_class for _ in range(10)]
        assert first_ten.count("a") >= 4  # interleaved, not starved

    def test_requeue_preserves_submission_stamp(self):
        sim, monitor, q = self.make()
        t = q.submit(Task(ops=1.0))
        got = q.claim(desc())
        sim.run(until=5.0)
        q.requeue(got)
        assert got.state == "waiting" and got.site == ""
        again = q.claim(desc())
        assert again is t
        assert again.queue_wait_s == 5.0  # charged from original submit
        assert monitor.counters()["wms.tasks_requeued"] == 1.0

    def test_counters_and_histograms_recorded(self):
        sim, monitor, q = self.make()
        q.submit_bulk([Task(ops=1.0), Task(ops=2.0)])
        sim.run(until=1.0)
        t = q.claim(desc())
        q.report(t, True)
        t2 = q.claim(desc())
        q.report(t2, False)
        c = monitor.counters()
        assert c["wms.tasks_submitted"] == 2.0
        assert c["wms.tasks_dispatched"] == 2.0
        assert c["wms.tasks_completed"] == 1.0
        assert c["wms.tasks_failed"] == 1.0
        summary = monitor.summary()
        assert summary["wms.queue_latency.count"] == 2

    def test_starvation_episode_fires_once(self):
        sim, monitor, q = self.make(starvation_s=10.0)
        sim.tracer = tracer = Tracer(sim)
        q.tracer = tracer
        q.submit(Task(ops=1.0, priority_class="bulk",
                      requirements=TaskRequirements(sites=frozenset({"other"}))))
        sim.run(until=20.0)
        q.claim(desc())  # head cannot match: episode opens
        q.claim(desc())  # still starving: no second count
        assert monitor.counters()["wms.tasks_starved"] == 1.0
        starved = [r for r in tracer.records if r.name == "wms.starved"]
        assert len(starved) == 1
        assert starved[0].attrs["priority_class"] == "bulk"
        # draining the class closes the episode; a fresh stall reopens it
        assert q.claim(desc(name="other")) is not None
        q.submit(Task(ops=1.0, priority_class="bulk",
                      requirements=TaskRequirements(sites=frozenset({"other"}))))
        sim.run(until=40.0)
        q.claim(desc())
        assert monitor.counters()["wms.tasks_starved"] == 2.0

    def test_dispatch_emits_trace_event(self):
        sim, _, q = self.make()
        tracer = Tracer(sim)
        q.tracer = tracer
        q.submit(Task(ops=1.0))
        q.claim(desc())
        events = [r for r in tracer.records if r.name == "wms.dispatch"]
        assert len(events) == 1
        assert events[0].attrs["site"] == "site0"

    def test_wake_parks_through_simulator_events(self):
        sim, _, q = self.make()
        woken = []
        q.park(lambda: woken.append("a"))
        q.park(lambda: woken.append("b"))
        q.submit(Task(ops=1.0))  # one task wakes exactly one pilot
        sim.run()
        assert woken == ["a"]
        q.submit_bulk([Task(ops=1.0), Task(ops=1.0)])
        sim.run()
        assert woken == ["a", "b"]


class TestPilots:
    def test_pilot_runs_compute_tasks_on_its_site(self):
        sim = Simulator()
        monitor = Monitor()
        q = TaskQueueService(sim, monitor=monitor)
        site = GridResource(sim, "site0", 1e6)
        pilot = PilotWorker(sim, q, site)
        pilot.start()
        q.submit_bulk([Task(ops=1e6), Task(ops=2e6)])
        sim.run()
        assert pilot.tasks_run == 2 and pilot.tasks_failed == 0
        assert site.jobs_completed == 2
        assert sim.now == pytest.approx(3.0)
        assert monitor.counters()["wms.tasks_completed"] == 2.0

    def test_pilot_runs_payload_tasks(self):
        sim = Simulator()
        q = TaskQueueService(sim)
        site = GridResource(sim, "site0", 1e6)
        PilotWorker(sim, q, site).start()
        ran = []

        def run(done):
            ran.append(True)
            sim.schedule(0.5, lambda: done(True), label="payload")

        t = Task(ops=1.0, run=run)
        q.submit(t)
        sim.run()
        assert ran == [True]
        assert t.state == "done"

    def test_failed_compute_requeues_and_keeps_checkpoint(self):
        sim = Simulator()
        q = TaskQueueService(sim)
        flaky = GridResource(sim, "flaky", 1e6, fail_prob=0.999,
                             rng=np.random.default_rng(0))
        pilot = PilotWorker(sim, q, flaky, max_attempts=3)
        pilot.start()
        t = Task(ops=1e6)
        q.submit(t)
        sim.run()
        assert t.state == "failed"
        assert t.attempts == 3
        assert t.job is not None
        # the checkpoint accumulated across all three attempts
        assert t.job.checkpoint_fraction > 0.0
        assert pilot.tasks_failed == 1

    def test_max_attempts_validation(self):
        sim = Simulator()
        q = TaskQueueService(sim)
        site = GridResource(sim, "site0", 1e6)
        with pytest.raises(ValueError):
            PilotWorker(sim, q, site, max_attempts=0)


class TestWorkloadManager:
    def test_needs_at_least_one_site(self):
        with pytest.raises(ValueError):
            WorkloadManager(Simulator(), [])

    def test_compute_tasks_spread_over_pilots(self):
        sim = Simulator()
        sites = [GridResource(sim, f"s{i}", 1e6) for i in range(4)]
        wm = WorkloadManager(sim, sites)
        for i in range(8):
            wm.submit_compute(1e6, owner=f"u{i}")
        sim.run()
        stats = wm.stats()
        assert stats["depth"] == 0
        assert sum(p["tasks_run"] for p in stats["pilots"].values()) == 8
        # the pull model keeps every site busy, not just the first
        assert all(p["tasks_run"] > 0 for p in stats["pilots"].values())

    def test_submit_query_requires_executor(self):
        sim = Simulator()
        wm = WorkloadManager(sim, [GridResource(sim, "s0", 1e6)])
        with pytest.raises(RuntimeError):
            wm.submit_query("SELECT AVG(value) FROM sensors")

    def test_runtime_query_path(self):
        from repro.core import PervasiveGridRuntime

        rt = PervasiveGridRuntime(n_sensors=9, area_m=20.0, seed=3,
                                  noise_std=0.0, grid_resolution=8)
        wm = rt.workload_manager().start()
        results = []
        t = wm.submit_query("SELECT AVG(value) FROM sensors",
                            owner="handheld0",
                            on_complete=results.append)
        rt.sim.run(until=100.0)
        assert t.state == "done"
        (outcomes,) = results
        assert outcomes[0].success
        c = rt.monitor.counters()
        assert c["wms.tasks_completed"] == 1.0

    def test_deterministic_across_identical_runs(self):
        def world():
            sim = Simulator()
            monitor = Monitor()
            sites = [GridResource(sim, f"s{i}", 1e6 * (i + 1)) for i in range(3)]
            wm = WorkloadManager(sim, sites, monitor=monitor)
            for i in range(30):
                cls = DEFAULT_CLASSES[i % 3].name
                wm.submit_compute(1e5 * (i + 1), priority_class=cls,
                                  owner=f"u{i % 5}")
            sim.run()
            return monitor.summary(), wm.stats(), sim.now

        assert world() == world()


class TestWmsSlos:
    def test_bundle_is_no_data_safe(self):
        from repro.observability.slo import SLOEvaluator, wms_slos

        sim = Simulator()
        ev = SLOEvaluator(sim, Monitor(), wms_slos(), interval_s=10.0)
        ev.start(30.0)
        sim.run()
        assert ev.health().verdict != "unhealthy"
        assert not ev.health().firing

    def test_failure_ratio_breaches_on_bad_run(self):
        from repro.observability.slo import SLOEvaluator, wms_slos

        sim = Simulator()
        monitor = Monitor()
        monitor.counter("wms.tasks_dispatched").add(10)
        monitor.counter("wms.tasks_failed").add(5)
        ev = SLOEvaluator(sim, monitor, wms_slos(), interval_s=10.0)
        ev.start(30.0)
        sim.run()
        assert "wms.failure_ratio" in ev.health().firing

    def test_wms_metrics_are_catalogued(self):
        from repro.observability.metrics import CONVENTIONS

        for name in ("wms.tasks_submitted", "wms.tasks_dispatched",
                     "wms.tasks_completed", "wms.tasks_failed",
                     "wms.tasks_requeued", "wms.tasks_starved",
                     "wms.queue_depth", "wms.queue_latency",
                     "wms.turnaround"):
            assert name in CONVENTIONS
            assert CONVENTIONS[name].subsystem == "wms"
