"""Unit tests for aggregate functions and WHERE-clause targeting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.queries import parse_query, room_of, select_targets
from repro.queries.functions import (
    AGGREGATES,
    DECOMPOSABLE,
    HOLISTIC,
    compute_aggregate,
    is_aggregate,
    is_complex,
    is_decomposable,
)
from repro.queries.targets import sensor_attributes
from repro.sensors import SensorDeployment, UniformField
from repro.simkernel import RandomStreams


class TestAggregates:
    VALUES = np.array([3.0, 1.0, 4.0, 1.0, 5.0])

    @pytest.mark.parametrize("func,expected", [
        ("MAX", 5.0),
        ("MIN", 1.0),
        ("SUM", 14.0),
        ("COUNT", 5.0),
        ("AVG", 2.8),
        ("MEDIAN", 3.0),
    ])
    def test_aggregate_values(self, func, expected):
        assert compute_aggregate(func, self.VALUES) == pytest.approx(expected)

    def test_std(self):
        assert compute_aggregate("STD", self.VALUES) == pytest.approx(float(np.std(self.VALUES)))

    def test_case_insensitive(self):
        assert compute_aggregate("avg", self.VALUES) == pytest.approx(2.8)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            compute_aggregate("FOO", self.VALUES)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            compute_aggregate("AVG", np.array([]))

    def test_classification_helpers(self):
        assert is_aggregate("AVG") and is_aggregate("median")
        assert is_decomposable("AVG") and not is_decomposable("MEDIAN")
        assert is_complex("DISTRIBUTION")
        assert is_complex("ANYTHING_ELSE")
        assert not is_complex("AVG")

    def test_median_is_holistic_not_decomposable(self):
        assert "MEDIAN" in HOLISTIC
        assert "MEDIAN" not in DECOMPOSABLE

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50))
    def test_partial_aggregation_matches_direct(self, values):
        """TAG partial-state merging gives the same answer as direct."""
        arr = np.array(values)
        for name, pa in DECOMPOSABLE.items():
            direct = {
                "MAX": arr.max(), "MIN": arr.min(), "SUM": arr.sum(),
                "COUNT": float(len(arr)), "AVG": arr.mean(), "STD": arr.std(),
            }[name]
            assert pa.compute(values) == pytest.approx(float(direct), abs=1e-9)

    @settings(max_examples=20)
    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=30),
           st.integers(min_value=0, max_value=100))
    def test_partial_aggregation_order_invariant(self, values, seed):
        """Merging is associative/commutative: shuffles don't matter."""
        rng = np.random.default_rng(seed)
        shuffled = list(np.array(values)[rng.permutation(len(values))])
        for name, pa in DECOMPOSABLE.items():
            assert pa.compute(values) == pytest.approx(pa.compute(shuffled), abs=1e-9)


class TestTargets:
    @pytest.fixture
    def dep(self):
        return SensorDeployment(9, 30.0, UniformField(20.0), streams=RandomStreams(0), noise_std=0.0)

    def test_room_numbering(self, dep):
        # 3x3 grid over 30m; sensor 0 at (0,0) -> room 1; sensor 8 at (30,30) -> room 9
        assert room_of(dep, 0, rooms_per_side=3) == 1
        assert room_of(dep, 8, rooms_per_side=3) == 9

    def test_room_validation(self, dep):
        with pytest.raises(ValueError):
            room_of(dep, 0, rooms_per_side=0)

    def test_sensor_attributes(self, dep):
        attrs = sensor_attributes(dep, 4)
        assert attrs["sensor_id"] == 4
        assert {"room", "x", "y"} <= set(attrs)

    def test_select_all_when_no_where(self, dep):
        q = parse_query("SELECT AVG(value) FROM sensors")
        assert select_targets(dep, q) == list(range(9))

    def test_select_by_sensor_id(self, dep):
        q = parse_query("SELECT value FROM sensors WHERE sensor_id = 4")
        assert select_targets(dep, q) == [4]

    def test_select_by_room(self, dep):
        q = parse_query("SELECT AVG(value) FROM sensors WHERE room = 1")
        targets = select_targets(dep, q)
        assert targets and all(room_of(dep, t) == 1 for t in targets)

    def test_select_by_position(self, dep):
        q = parse_query("SELECT AVG(value) FROM sensors WHERE x <= 15.0 AND y <= 15.0")
        targets = select_targets(dep, q)
        for t in targets:
            pos = dep.topology.position_of(t)
            assert pos[0] <= 15.0 and pos[1] <= 15.0

    def test_dead_sensors_excluded(self, dep):
        q = parse_query("SELECT AVG(value) FROM sensors")
        dep.topology.kill(3)
        assert 3 not in select_targets(dep, q)

    def test_value_predicates_ignored_at_targeting(self, dep):
        q = parse_query("SELECT AVG(value) FROM sensors WHERE value > 100")
        # value predicate filters readings later, not sensors now
        assert select_targets(dep, q) == list(range(9))

    def test_conjunction(self, dep):
        q = parse_query("SELECT value FROM sensors WHERE sensor_id >= 3 AND sensor_id < 6")
        assert select_targets(dep, q) == [3, 4, 5]
