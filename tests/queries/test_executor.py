"""Tests for the query executor: epochs, feedback, dissemination."""

import math

import pytest

from repro.core import PervasiveGridRuntime
from repro.queries import QueryClass, QueryExecutor, parse_query
from repro.queries.models.base import CostEstimate


def make_runtime(**kw):
    kw.setdefault("n_sensors", 16)
    kw.setdefault("area_m", 30.0)
    kw.setdefault("seed", 8)
    kw.setdefault("noise_std", 0.0)
    kw.setdefault("grid_resolution", 12)
    return PervasiveGridRuntime(**kw)


class RefusingDecisionMaker:
    """A decision maker that never finds a feasible model."""

    def decide(self, query, ctx, targets):
        return None

    def feedback(self, *args):
        raise AssertionError("feedback must not be called without a decision")


class TestOneShot:
    def test_no_feasible_model_outcome(self):
        rt = make_runtime()
        executor = QueryExecutor(rt.ctx, RefusingDecisionMaker())
        got = []
        executor.submit("SELECT AVG(value) FROM sensors", got.append)
        rt.sim.run()
        (outcomes,) = got
        assert not outcomes[0].success
        assert outcomes[0].error == "no feasible model"

    def test_submit_accepts_query_objects(self):
        rt = make_runtime()
        q = parse_query("SELECT AVG(value) FROM sensors")
        got = []
        rt.executor.submit(q, got.append)
        rt.sim.run()
        assert got[0][0].success

    def test_submitted_counter(self):
        rt = make_runtime()
        rt.query("SELECT AVG(value) FROM sensors")
        rt.query("SELECT AVG(value) FROM sensors")
        assert rt.executor.submitted == 2

    def test_ground_truth_for_multi_select_is_skipped(self):
        rt = make_runtime()
        out = rt.query("SELECT {AVG(value), MAX(value)} FROM sensors")
        assert out[0].success
        assert math.isnan(out[0].rel_error)  # no single ground truth

    def test_unknown_arbitrary_function_runs(self):
        """'we allow for any arbitrary function' -- even unregistered ones."""
        rt = make_runtime()
        out = rt.query("SELECT WAVELETS(value) FROM sensors")
        assert out[0].success
        assert out[0].query_class is QueryClass.COMPLEX


class TestContinuous:
    def test_epoch_spacing(self):
        rt = make_runtime()
        times = []
        rt.submit("SELECT AVG(value) FROM sensors EPOCH DURATION 7 FOR 28",
                  lambda o: None, on_epoch=lambda o: times.append(rt.sim.now))
        rt.sim.run(until=60.0)
        assert len(times) == 4
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(7.0, abs=0.5) for g in gaps)

    @pytest.mark.parametrize(
        "epoch, duration, expected",
        [
            ("0.1", "0.7", 7),   # 0.7 / 0.1 == 6.999... under floats
            ("0.2", "0.6", 3),   # 0.6 / 0.2 == 2.999...
            ("1.1", "3.3", 3),   # 3.3 / 1.1 == 2.999...
        ],
    )
    def test_epoch_count_survives_float_truncation(self, epoch, duration, expected):
        """Non-representable epoch lengths must not drop the last epoch.

        Pre-fix, ``int(duration_s / epoch_s)`` truncated 9.999... to 9
        and the final epoch silently vanished.
        """
        rt = make_runtime()
        got = []
        rt.submit(
            f"SELECT AVG(value) FROM sensors EPOCH DURATION {epoch} FOR {duration}",
            got.append)
        rt.sim.run(until=600.0)
        assert got, "continuous query must complete"
        assert len(got[0]) == expected

    def test_max_epochs_cap_without_duration(self):
        rt = make_runtime()
        rt.executor.max_epochs = 3
        got = []
        rt.submit("SELECT AVG(value) FROM sensors EPOCH DURATION 1", got.append)
        rt.sim.run(until=30.0)
        assert len(got[0]) == 3

    def test_stops_when_network_dies(self):
        rt = make_runtime(battery_j=2e-4)
        got = []
        rt.submit("SELECT AVG(value) FROM sensors EPOCH DURATION 1 FOR 10000",
                  got.append)
        rt.sim.run(until=20000.0)
        assert got, "query must terminate when the network dies"
        assert len(got[0]) < 10000

    def test_dissemination_amortized_across_epochs(self):
        """Epoch 0 pays the query flood; later epochs do not (TAG)."""
        rt = make_runtime()
        epochs = []
        rt.submit("SELECT AVG(value) FROM sensors EPOCH DURATION 5 FOR 25",
                  lambda o: None, on_epoch=epochs.append)
        rt.sim.run(until=60.0)
        assert len(epochs) == 5
        assert epochs[0].energy_j > 3 * epochs[1].energy_j
        later = [e.energy_j for e in epochs[1:]]
        assert max(later) < 2 * min(later)

    def test_distinct_queries_each_pay_dissemination(self):
        rt = make_runtime()
        a = rt.query("SELECT AVG(value) FROM sensors")[0]
        b = rt.query("SELECT MAX(value) FROM sensors")[0]
        # different query text -> separate flood for each
        assert a.energy_j > 1e-3 and b.energy_j > 1e-3

    def test_repeated_identical_query_amortizes(self):
        rt = make_runtime()
        first = rt.query("SELECT AVG(value) FROM sensors")[0]
        second = rt.query("SELECT AVG(value) FROM sensors")[0]
        assert second.energy_j < first.energy_j / 3


class TestFeedbackLoop:
    def test_feedback_receives_actuals(self):
        feedbacks = []

        class Spy:
            def __init__(self, inner):
                self.inner = inner

            def decide(self, *a):
                return self.inner.decide(*a)

            def feedback(self, query, ctx, targets, decision, energy, time):
                feedbacks.append((decision.model.name, energy, time))

        rt = make_runtime()
        rt.executor.decision_maker = Spy(rt.decision_maker)
        rt.query("SELECT AVG(value) FROM sensors")
        (fb,) = feedbacks
        assert fb[1] > 0 and fb[2] > 0

    def test_estimates_infeasible_constant(self):
        assert not CostEstimate.INFEASIBLE.feasible
        assert math.isinf(CostEstimate.INFEASIBLE.time_s)
