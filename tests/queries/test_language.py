"""Unit tests for the query language, AST and classifier."""

import pytest

from repro.queries import (
    CostClause,
    Predicate,
    Query,
    QueryClass,
    QuerySyntaxError,
    SelectItem,
    base_class,
    classify,
    parse_query,
)


class TestParser:
    def test_paper_simple_query(self):
        """'Return temperature at Sensor # 10'"""
        q = parse_query("SELECT value FROM sensors WHERE sensor_id = 10")
        assert q.select == (SelectItem(attr="value"),)
        assert q.where == (Predicate("sensor_id", "=", 10),)
        assert q.cost is None and q.epoch_s is None

    def test_paper_aggregate_query(self):
        """'Return Average Temperature in room # 210'"""
        q = parse_query("SELECT AVG(value) FROM sensors WHERE room = 210")
        assert q.select[0].func == "AVG"
        assert q.where[0].value == 210

    def test_paper_complex_query(self):
        """'Find Temperature Distribution in room #210'"""
        q = parse_query("SELECT DISTRIBUTION(value) FROM sensors WHERE room = 2")
        assert q.select[0].func == "DISTRIBUTION"

    def test_paper_continuous_query(self):
        """'Return temperature at Sensor #10 every 10 seconds'"""
        q = parse_query("SELECT value FROM sensors WHERE sensor_id = 10 EPOCH DURATION 10")
        assert q.epoch_s == 10.0
        assert q.is_continuous

    def test_full_paper_format_with_braces(self):
        q = parse_query(
            "SELECT {AVG(value), MAX(value)} FROM sensors "
            "WHERE {room = 2 AND x < 20.0} COST {energy 0.5} EPOCH DURATION 5 FOR 60"
        )
        assert len(q.select) == 2
        assert q.functions == ("AVG", "MAX")
        assert len(q.where) == 2
        assert q.cost == CostClause("energy", 0.5)
        assert q.epoch_s == 5.0 and q.duration_s == 60.0

    def test_cost_clause_operators(self):
        q = parse_query("SELECT AVG(value) FROM sensors COST time <= 2.5")
        assert q.cost == CostClause("time", 2.5)
        q2 = parse_query("SELECT AVG(value) FROM sensors COST accuracy 0.1")
        assert q2.cost == CostClause("accuracy", 0.1)

    def test_bare_function_defaults_to_value(self):
        q = parse_query("SELECT AVG() FROM sensors")
        assert q.select[0] == SelectItem(attr="value", func="AVG")

    def test_case_insensitive_keywords(self):
        q = parse_query("select avg(value) from sensors where room = 1 epoch duration 2")
        assert q.select[0].func == "AVG"
        assert q.epoch_s == 2.0

    def test_string_and_bool_literals(self):
        q = parse_query("SELECT value FROM sensors WHERE name = 'alpha' AND active = true")
        assert q.where[0].value == "alpha"
        assert q.where[1].value is True

    def test_all_comparison_operators(self):
        q = parse_query(
            "SELECT value FROM sensors WHERE a = 1 AND b != 2 AND c < 3 AND d <= 4 AND e > 5 AND f >= 6"
        )
        assert [p.op for p in q.where] == ["=", "!=", "<", "<=", ">", ">="]

    @pytest.mark.parametrize("bad", [
        "",
        "SELECT FROM sensors",
        "SELECT value FROM tables",
        "value FROM sensors",
        "SELECT value FROM sensors WHERE",
        "SELECT value FROM sensors WHERE x ~ 3",
        "SELECT value FROM sensors COST joy 5",
        "SELECT value FROM sensors COST energy >= 5",
        "SELECT value FROM sensors EPOCH 5",
        "SELECT {value FROM sensors",
        "SELECT AVG( FROM sensors",
        "SELECT value FROM sensors GARBAGE",
        "SELECT value FROM sensors WHERE x = @",
    ])
    def test_malformed_queries_raise(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)

    def test_raw_preserved(self):
        text = "SELECT value FROM sensors"
        assert parse_query(text).raw == text


class TestAST:
    def test_query_requires_select(self):
        with pytest.raises(ValueError):
            Query(select=())

    def test_epoch_must_be_positive(self):
        with pytest.raises(ValueError):
            Query(select=(SelectItem("value"),), epoch_s=0.0)

    def test_predicate_evaluation(self):
        p = Predicate("x", "<=", 5)
        assert p.holds({"x": 5})
        assert not p.holds({"x": 6})
        assert not p.holds({})
        assert not p.holds({"x": "str"})

    def test_predicate_unknown_op(self):
        with pytest.raises(ValueError):
            Predicate("x", "~", 1)

    def test_cost_clause_validation(self):
        with pytest.raises(ValueError):
            CostClause("joy", 1.0)
        with pytest.raises(ValueError):
            CostClause("energy", -1.0)

    def test_functions_dedupe_preserve_order(self):
        q = Query(select=(
            SelectItem("value", "MAX"),
            SelectItem("value", "AVG"),
            SelectItem("other", "MAX"),
        ))
        assert q.functions == ("MAX", "AVG")


class TestClassifier:
    def q(self, text):
        return parse_query(text)

    def test_simple(self):
        assert classify(self.q("SELECT value FROM sensors WHERE sensor_id = 10")) is QueryClass.SIMPLE

    def test_aggregate(self):
        for func in ("MAX", "MIN", "AVG", "SUM", "COUNT", "MEDIAN", "STD"):
            assert classify(self.q(f"SELECT {func}(value) FROM sensors")) is QueryClass.AGGREGATE

    def test_complex_known(self):
        assert classify(self.q("SELECT DISTRIBUTION(value) FROM sensors")) is QueryClass.COMPLEX

    def test_complex_arbitrary_function(self):
        """'we allow for any arbitrary function'"""
        assert classify(self.q("SELECT MYMODEL(value) FROM sensors")) is QueryClass.COMPLEX

    def test_continuous_dominates(self):
        q = self.q("SELECT AVG(value) FROM sensors EPOCH DURATION 10")
        assert classify(q) is QueryClass.CONTINUOUS
        assert base_class(q) is QueryClass.AGGREGATE

    def test_complex_dominates_aggregate(self):
        q = self.q("SELECT {AVG(value), DISTRIBUTION(value)} FROM sensors")
        assert classify(q) is QueryClass.COMPLEX
