"""Tests for execution models: estimates, execution, paper-shaped claims."""

import numpy as np
import pytest

from repro.grid import GridInfrastructure
from repro.queries import parse_query
from repro.queries.models import (
    ALL_MODELS,
    CentralizedModel,
    ClusterModel,
    GridOffloadModel,
    HandheldModel,
    InNetworkTreeModel,
    QueryContext,
    RegionAverageModel,
    complex_ops,
)
from repro.queries.models import collection
from repro.queries.models.base import CostEstimate
from repro.sensors import SensorDeployment, UniformField
from repro.simkernel import RandomStreams, Simulator


def make_ctx(n=25, area=40.0, seed=0, loss=0.0, noise_std=0.0, resolution=20):
    from repro.network.radio import RadioModel

    streams = RandomStreams(seed)
    sim = Simulator()
    side = int(np.ceil(np.sqrt(n)))
    spacing = area / max(side - 1, 1)
    radio = RadioModel(bandwidth_bps=250_000.0, latency_s=0.01, loss_prob=loss,
                       range_m=max(spacing * 1.6, 0.12 * area))
    dep = SensorDeployment(n, area, UniformField(25.0), sim=sim, streams=streams,
                           radio=radio, noise_std=noise_std)
    grid = GridInfrastructure(sim)
    return QueryContext(deployment=dep, grid=grid, streams=streams, grid_resolution=resolution)


AVG_Q = parse_query("SELECT AVG(value) FROM sensors")
MEDIAN_Q = parse_query("SELECT MEDIAN(value) FROM sensors")
SIMPLE_Q = parse_query("SELECT value FROM sensors WHERE sensor_id = 7")
COMPLEX_Q = parse_query("SELECT DISTRIBUTION(value) FROM sensors")


def run_model(model, query, ctx, targets=None):
    if targets is None:
        targets = ctx.deployment.alive_sensor_ids()
    outcomes = []
    model.execute(query, ctx, targets, outcomes.append)
    ctx.sim.run()
    return outcomes[0]


class TestCollectionHelpers:
    def test_induced_nodes_contains_paths(self):
        ctx = make_ctx()
        tree = collection.build_tree(ctx.deployment)
        nodes = collection.induced_nodes(tree, [0])
        assert 0 in nodes and tree.root in nodes
        assert nodes == set(tree.path_to_root(0))

    def test_aggregated_one_message_per_induced_node(self):
        ctx = make_ctx()
        targets = ctx.deployment.alive_sensor_ids()
        cost = collection.aggregated_collection(ctx.deployment, targets, 64.0)
        tree = collection.build_tree(ctx.deployment)
        induced = collection.induced_nodes(tree, targets)
        assert cost.messages == len(induced) - 1  # all but root

    def test_raw_counts_readings(self):
        ctx = make_ctx()
        targets = ctx.deployment.alive_sensor_ids()
        cost = collection.raw_collection(ctx.deployment, targets, 64.0)
        # total bits = sum over targets of 64 * path length >= 64 * n
        assert cost.bits_total >= 64.0 * len(targets)
        assert cost.messages >= len(targets)

    def test_raw_more_expensive_than_aggregated(self):
        """The paper's headline energy claim, at helper level."""
        ctx = make_ctx()
        targets = ctx.deployment.alive_sensor_ids()
        raw = collection.raw_collection(ctx.deployment, targets, 64.0)
        agg = collection.aggregated_collection(ctx.deployment, targets, 64.0)
        assert raw.energy_j > agg.energy_j
        assert raw.messages > agg.messages

    def test_partitioned_targets_excluded(self):
        ctx = make_ctx()
        ctx.deployment.topology.kill(12)  # may cut some paths
        targets = ctx.deployment.alive_sensor_ids()
        cost = collection.aggregated_collection(ctx.deployment, targets, 64.0)
        assert 12 not in cost.participating

    def test_mean_target_depth(self):
        ctx = make_ctx()
        d = collection.mean_target_depth(ctx.deployment, ctx.deployment.alive_sensor_ids())
        assert d > 0.0


class TestSupports:
    def test_tree_supports_decomposable_only(self):
        ctx = make_ctx()
        tree = InNetworkTreeModel()
        assert tree.supports(AVG_Q, ctx)
        assert tree.supports(SIMPLE_Q, ctx)
        assert not tree.supports(MEDIAN_Q, ctx)  # holistic
        assert not tree.supports(COMPLEX_Q, ctx)

    def test_cluster_same_restrictions(self):
        ctx = make_ctx()
        cluster = ClusterModel()
        assert cluster.supports(AVG_Q, ctx)
        assert not cluster.supports(COMPLEX_Q, ctx)

    def test_centralized_and_grid_support_everything(self):
        ctx = make_ctx()
        for model in (CentralizedModel(), GridOffloadModel()):
            for q in (AVG_Q, MEDIAN_Q, SIMPLE_Q, COMPLEX_Q):
                assert model.supports(q, ctx)

    def test_handheld_requires_handheld(self):
        ctx = make_ctx()
        assert HandheldModel().supports(AVG_Q, ctx)

    def test_region_supports_avg_and_complex_not_max(self):
        ctx = make_ctx()
        region = RegionAverageModel()
        assert region.supports(AVG_Q, ctx)
        assert region.supports(COMPLEX_Q, ctx)
        assert not region.supports(parse_query("SELECT MAX(value) FROM sensors"), ctx)
        assert not region.supports(SIMPLE_Q, ctx)


class TestEstimates:
    def test_estimates_feasible_on_healthy_network(self):
        ctx = make_ctx()
        targets = ctx.deployment.alive_sensor_ids()
        for cls in ALL_MODELS:
            model = cls()
            if model.supports(AVG_Q, ctx):
                est = model.estimate(AVG_Q, ctx, targets)
                assert est.feasible
                assert est.energy_j > 0 and est.time_s > 0

    def test_empty_targets_infeasible(self):
        ctx = make_ctx()
        for cls in ALL_MODELS:
            assert not cls().estimate(AVG_Q, ctx, []).feasible

    def test_tree_cheaper_than_centralized_for_aggregates(self):
        """E2's core shape, at estimate level."""
        ctx = make_ctx()
        targets = ctx.deployment.alive_sensor_ids()
        tree = InNetworkTreeModel().estimate(AVG_Q, ctx, targets)
        central = CentralizedModel().estimate(AVG_Q, ctx, targets)
        assert tree.energy_j < central.energy_j

    def test_grid_fastest_for_large_complex(self):
        """E3's core shape: only the grid makes the (large) PDE interactive."""
        ctx = make_ctx(resolution=60)
        targets = ctx.deployment.alive_sensor_ids()
        grid = GridOffloadModel().estimate(COMPLEX_Q, ctx, targets)
        central = CentralizedModel().estimate(COMPLEX_Q, ctx, targets)
        handheld = HandheldModel().estimate(COMPLEX_Q, ctx, targets)
        assert grid.time_s < central.time_s < handheld.time_s
        assert handheld.time_s > 100 * grid.time_s

    def test_crossover_small_complex_stays_local(self):
        """E8's premise: below the crossover, shipping data beats offload."""
        ctx = make_ctx(resolution=12)
        targets = ctx.deployment.alive_sensor_ids()
        grid = GridOffloadModel().estimate(COMPLEX_Q, ctx, targets)
        central = CentralizedModel().estimate(COMPLEX_Q, ctx, targets)
        assert central.time_s < grid.time_s

    def test_region_trades_accuracy_for_data(self):
        ctx = make_ctx()
        targets = ctx.deployment.alive_sensor_ids()
        region = RegionAverageModel(regions_per_side=2).estimate(AVG_Q, ctx, targets)
        central = CentralizedModel().estimate(AVG_Q, ctx, targets)
        assert region.data_bits < central.data_bits
        assert region.rel_error > 0.0
        assert central.rel_error == 0.0

    def test_region_error_shrinks_with_granularity(self):
        ctx = make_ctx(n=49, area=60.0)
        targets = ctx.deployment.alive_sensor_ids()
        coarse = RegionAverageModel(regions_per_side=2).estimate(AVG_Q, ctx, targets)
        fine = RegionAverageModel(regions_per_side=5).estimate(AVG_Q, ctx, targets)
        assert fine.rel_error < coarse.rel_error
        assert fine.data_bits > coarse.data_bits

    def test_partition_infeasible(self):
        ctx = make_ctx(n=9, area=30.0)
        # kill everything around the base to cut it off from sensors 3..8
        for sid in (0, 1, 2):
            ctx.deployment.topology.kill(sid)
        targets = [6, 7, 8]
        est = CentralizedModel().estimate(AVG_Q, ctx, targets)
        # either reachable through side paths or infeasible; check coherence
        if not est.feasible:
            assert est.time_s == float("inf")

    def test_metric_lookup(self):
        est = CostEstimate(energy_j=1.0, time_s=2.0, data_bits=3.0, ops=4.0, rel_error=0.1)
        assert est.metric("energy") == 1.0
        assert est.metric("time") == 2.0
        assert est.metric("accuracy") == 0.1
        with pytest.raises(KeyError):
            est.metric("joy")

    def test_complex_ops_validation(self):
        with pytest.raises(ValueError):
            complex_ops(-1)
        assert complex_ops(100) == pytest.approx(50.0 * 1e4)


class TestExecution:
    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_avg_answer_close_to_truth(self, model_cls):
        ctx = make_ctx(noise_std=0.0)
        model = model_cls()
        if not model.supports(AVG_Q, ctx):
            pytest.skip("model does not support AVG")
        outcome = run_model(model, AVG_Q, ctx)
        assert outcome.success
        assert outcome.value == pytest.approx(25.0, rel=0.02)
        assert outcome.energy_j > 0 and outcome.time_s > 0

    def test_simple_query_returns_reading(self):
        ctx = make_ctx(noise_std=0.0)
        outcome = run_model(InNetworkTreeModel(), SIMPLE_Q, ctx, targets=[7])
        assert outcome.success
        assert outcome.value == pytest.approx(25.0)
        assert outcome.readings_used == 1

    def test_complex_query_returns_field(self):
        ctx = make_ctx(noise_std=0.0, resolution=16)
        outcome = run_model(GridOffloadModel(), COMPLEX_Q, ctx)
        assert outcome.success
        assert outcome.value.shape == (16, 16)
        # uniform field: the solved distribution is ~25 everywhere
        assert np.allclose(outcome.value, 25.0, atol=1.0)

    def test_histogram_complex_function(self):
        ctx = make_ctx(noise_std=0.0)
        q = parse_query("SELECT HISTOGRAM(value) FROM sensors")
        outcome = run_model(CentralizedModel(), q, ctx)
        counts, edges = outcome.value
        assert counts.sum() == outcome.readings_used

    def test_value_predicate_filters_readings(self):
        ctx = make_ctx(noise_std=0.0)
        q = parse_query("SELECT COUNT(value) FROM sensors WHERE value > 100")
        outcome = run_model(CentralizedModel(), q, ctx)
        # uniform 25 field: no reading passes; count over empty -> failure
        assert not outcome.success

    def test_execution_charges_batteries(self):
        ctx = make_ctx()
        before = ctx.deployment.total_sensor_energy_consumed()
        run_model(CentralizedModel(), AVG_Q, ctx)
        assert ctx.deployment.total_sensor_energy_consumed() > before

    def test_actuals_deviate_from_estimates_under_load(self):
        """Contention/retransmission make actual != estimate (E4's premise)."""
        ctx = make_ctx(loss=0.05)
        targets = ctx.deployment.alive_sensor_ids()
        model = CentralizedModel()
        est = model.estimate(AVG_Q, ctx, targets)
        outcome = run_model(model, AVG_Q, ctx, targets)
        assert outcome.time_s != pytest.approx(est.time_s, rel=1e-6)
        assert outcome.time_s > 0

    def test_execution_reproducible_from_seed(self):
        def run(seed):
            ctx = make_ctx(seed=seed, loss=0.02)
            return run_model(CentralizedModel(), AVG_Q, ctx)

        a, b = run(5), run(5)
        assert a.time_s == b.time_s and a.energy_j == b.energy_j
        c = run(6)
        assert c.time_s != a.time_s

    def test_unsupported_execution_fails_cleanly(self):
        ctx = make_ctx()
        outcomes = []
        InNetworkTreeModel().execute(COMPLEX_Q, ctx, ctx.deployment.alive_sensor_ids(), outcomes.append)
        ctx.sim.run()
        assert not outcomes[0].success

    def test_region_avg_reweighted_correctly(self):
        """Weighted SUM over regions equals true sum (uniform field)."""
        ctx = make_ctx(noise_std=0.0)
        q = parse_query("SELECT SUM(value) FROM sensors")
        outcome = run_model(RegionAverageModel(regions_per_side=2), q, ctx)
        assert outcome.success
        assert outcome.value == pytest.approx(25.0 * 25, rel=0.01)

    def test_cluster_head_fraction_validation(self):
        with pytest.raises(ValueError):
            ClusterModel(head_fraction=0.0)
        with pytest.raises(ValueError):
            RegionAverageModel(regions_per_side=0)
