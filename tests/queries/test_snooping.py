"""Tests for TAG's channel-sharing (snooping) optimization."""

import numpy as np
import pytest

from repro.queries.models.eventdriven import SnoopingMaxCollection
from repro.sensors import SensorDeployment, UniformField
from repro.simkernel import RandomStreams

BITS = 64.0


def make_deployment(n=25, area=40.0, seed=0):
    return SensorDeployment(n, area, UniformField(20.0), streams=RandomStreams(seed),
                            noise_std=0.0)


def run(dep, values, snoop=True):
    reports = []
    SnoopingMaxCollection(dep).run(values, BITS, reports.append, snoop=snoop)
    dep.sim.run()
    assert reports
    return reports[0]


class TestSnoopingCorrectness:
    def test_root_computes_exact_max(self):
        dep = make_deployment()
        rng = np.random.default_rng(1)
        values = {i: float(rng.uniform(0, 100)) for i in dep.sensor_ids}
        report = run(dep, values, snoop=True)
        assert report.value == pytest.approx(max(values.values()))

    @pytest.mark.parametrize("seed", [2, 3, 4, 5])
    def test_max_never_lost_to_suppression(self, seed):
        dep = make_deployment(seed=seed)
        rng = np.random.default_rng(seed)
        values = {i: float(rng.uniform(-50, 50)) for i in dep.sensor_ids}
        assert run(dep, values).value == pytest.approx(max(values.values()))

    def test_duplicate_maxima_survive(self):
        dep = make_deployment()
        values = {i: 10.0 for i in dep.sensor_ids}  # everyone ties
        report = run(dep, values)
        assert report.value == pytest.approx(10.0)

    def test_subset_of_targets(self):
        dep = make_deployment()
        values = {3: 7.0, 17: 42.0, 21: -1.0}
        assert run(dep, values).value == pytest.approx(42.0)

    def test_empty_targets(self):
        dep = make_deployment()
        report = run(dep, {})
        assert report.messages == 0


class TestSnoopingSavings:
    def test_suppression_reduces_messages_and_energy(self):
        """The paper's cited claim: channel sharing saves sensor energy."""
        values = None
        results = {}
        for snoop in (False, True):
            dep = make_deployment(seed=7)
            rng = np.random.default_rng(7)
            values = {i: float(rng.uniform(0, 100)) for i in dep.sensor_ids}
            results[snoop] = run(dep, values, snoop=snoop)
        plain, snooped = results[False], results[True]
        assert snooped.value == pytest.approx(plain.value)
        assert snooped.messages < plain.messages
        assert snooped.suppressed > 0
        assert snooped.energy_j < plain.energy_j
        assert snooped.messages + snooped.suppressed == plain.messages

    def test_no_suppression_without_snooping(self):
        dep = make_deployment(seed=9)
        values = {i: float(i) for i in dep.sensor_ids}
        report = run(dep, values, snoop=False)
        assert report.suppressed == 0

    def test_savings_grow_with_density(self):
        """Denser networks overhear more, so suppression saves more."""

        def fraction_suppressed(n, area, seed):
            dep = make_deployment(n=n, area=area, seed=seed)
            rng = np.random.default_rng(seed)
            values = {i: float(rng.uniform(0, 100)) for i in dep.sensor_ids}
            r = run(dep, values)
            total = r.messages + r.suppressed
            return r.suppressed / total if total else 0.0

        sparse = fraction_suppressed(25, 70.0, 11)
        dense = fraction_suppressed(25, 25.0, 11)
        assert dense >= sparse
