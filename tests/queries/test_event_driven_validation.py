"""Validation: analytic collection costs == message-level simulation.

The experiments rely on analytic convergecast costing (exact for lossless
radios).  These tests run the same rounds as real messages through the
wireless substrate and check agreement -- the evidence for the fast
path's fidelity.
"""

import numpy as np
import pytest

from repro.network.energy import RadioEnergyModel
from repro.queries.models import collection
from repro.queries.models.eventdriven import EventDrivenTreeCollection
from repro.sensors import SensorDeployment, UniformField
from repro.simkernel import RandomStreams

BITS = 128.0


def make_deployment(n=25, area=40.0, seed=0, loss=0.0):
    from repro.network.radio import RadioModel

    side = int(np.ceil(np.sqrt(n)))
    spacing = area / max(side - 1, 1)
    radio = RadioModel(bandwidth_bps=250_000.0, latency_s=0.01, loss_prob=loss,
                       range_m=max(spacing * 1.6, 0.12 * area))
    return SensorDeployment(n, area, UniformField(20.0), streams=RandomStreams(seed),
                            radio=radio, noise_std=0.0)


def run_event_driven(dep, targets, aggregated=True):
    reports = []
    EventDrivenTreeCollection(dep).run(targets, BITS, reports.append,
                                       aggregated=aggregated)
    dep.sim.run()
    assert reports, "collection never completed"
    return reports[0]


class TestAggregatedAgreement:
    def test_energy_matches_exactly(self):
        dep = make_deployment()
        targets = dep.alive_sensor_ids()
        analytic = collection.aggregated_collection(dep, targets, BITS, ops_per_merge=0.0)
        report = run_event_driven(dep, targets)
        assert report.completed
        assert report.energy_j == pytest.approx(analytic.energy_j, rel=1e-9)

    def test_message_count_matches(self):
        dep = make_deployment()
        targets = dep.alive_sensor_ids()
        analytic = collection.aggregated_collection(dep, targets, BITS)
        report = run_event_driven(dep, targets)
        assert report.messages == analytic.messages
        assert report.delivered == analytic.messages

    def test_latency_matches_exactly(self):
        """Emergent level-by-level timing equals depth * hop_time."""
        dep = make_deployment()
        targets = dep.alive_sensor_ids()
        analytic = collection.aggregated_collection(dep, targets, BITS)
        report = run_event_driven(dep, targets)
        assert report.latency_s == pytest.approx(analytic.latency_s, rel=1e-9)

    def test_subset_of_targets(self):
        dep = make_deployment()
        targets = [0, 7, 24]
        analytic = collection.aggregated_collection(dep, targets, BITS, ops_per_merge=0.0)
        report = run_event_driven(dep, targets)
        assert report.energy_j == pytest.approx(analytic.energy_j, rel=1e-9)
        assert report.messages == analytic.messages

    @pytest.mark.parametrize("n,seed", [(9, 1), (16, 2), (36, 3), (49, 4)])
    def test_agreement_across_sizes(self, n, seed):
        dep = make_deployment(n=n, seed=seed)
        targets = dep.alive_sensor_ids()
        analytic = collection.aggregated_collection(dep, targets, BITS, ops_per_merge=0.0)
        report = run_event_driven(dep, targets)
        assert report.energy_j == pytest.approx(analytic.energy_j, rel=1e-9)
        assert report.latency_s == pytest.approx(analytic.latency_s, rel=1e-9)


class TestRawAgreement:
    def test_energy_and_messages_match(self):
        dep = make_deployment()
        targets = dep.alive_sensor_ids()
        analytic = collection.raw_collection(dep, targets, BITS)
        report = run_event_driven(dep, targets, aggregated=False)
        assert report.completed
        assert report.messages == analytic.messages
        assert report.energy_j == pytest.approx(analytic.energy_j, rel=1e-9)

    def test_raw_latency_analytic_is_conservative(self):
        """The analytic raw latency models root-inlink serialization that
        the (MAC-free) event simulation does not; it must upper-bound the
        event-driven time."""
        dep = make_deployment()
        targets = dep.alive_sensor_ids()
        analytic = collection.raw_collection(dep, targets, BITS)
        report = run_event_driven(dep, targets, aggregated=False)
        assert analytic.latency_s >= report.latency_s


class TestLossyBehaviour:
    def test_loss_reduces_delivered(self):
        dep = make_deployment(loss=0.3, seed=9)
        targets = dep.alive_sensor_ids()
        reports = []
        EventDrivenTreeCollection(dep).run(targets, BITS, reports.append)
        dep.sim.run()
        # under loss the round may stall (partials die): either it
        # completed with some losses absorbed by luck, or it never fired
        if reports:
            assert reports[0].delivered <= reports[0].messages
        else:
            # stalled: the analytic lossless model is an optimistic bound,
            # which is exactly why execution applies retransmission factors
            assert True

    def test_empty_targets_complete_immediately(self):
        dep = make_deployment()
        reports = []
        EventDrivenTreeCollection(dep).run([], BITS, reports.append)
        dep.sim.run()
        assert reports[0].completed
        assert reports[0].messages == 0
        assert reports[0].latency_s == 0.0
