"""Tests for the Windowed variant of continuous queries."""

import math

import pytest

from repro.core import PervasiveGridRuntime
from repro.queries import QuerySyntaxError, parse_query
from repro.sensors.field import UniformField


def make_runtime(**kw):
    kw.setdefault("n_sensors", 9)
    kw.setdefault("area_m", 20.0)
    kw.setdefault("seed", 12)
    kw.setdefault("noise_std", 0.0)
    return PervasiveGridRuntime(**kw)


class TestWindowParsing:
    def test_window_clause_parsed(self):
        q = parse_query("SELECT AVG(value) FROM sensors EPOCH DURATION 5 FOR 50 WINDOW 20")
        assert q.epoch_s == 5.0
        assert q.duration_s == 50.0
        assert q.window_s == 20.0

    def test_window_without_epoch_rejected(self):
        from repro.queries.ast import Query, SelectItem

        with pytest.raises(ValueError):
            Query(select=(SelectItem("value"),), window_s=10.0)

    def test_window_shorter_than_epoch_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT AVG(value) FROM sensors EPOCH DURATION 10 WINDOW 5")

    def test_window_optional(self):
        q = parse_query("SELECT AVG(value) FROM sensors EPOCH DURATION 5")
        assert q.window_s is None


class TestWindowedExecution:
    def test_windowed_max_holds_peak(self):
        """Windowed MAX reports the peak over the trailing window."""
        rt = make_runtime(field=UniformField(level=20.0, drift_per_s=-0.5))
        epochs = []
        rt.submit("SELECT MAX(value) FROM sensors EPOCH DURATION 5 FOR 40 WINDOW 20",
                  lambda o: None, on_epoch=epochs.append)
        rt.sim.run(until=100.0)
        assert len(epochs) == 8
        # the field cools over time; windowed MAX lags the instantaneous
        # value by holding the window's earlier (hotter) peak
        values = [e.value for e in epochs]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))  # non-increasing
        # window of 4 epochs: epoch 5 (t=25) holds the peak sampled at
        # t=10 (the oldest of its 4 epochs): 20 - 0.5*10 = 15
        assert values[5] == pytest.approx(15.0, abs=1.0)

    def test_windowed_avg_smooths(self):
        rt = make_runtime(noise_std=3.0)
        plain, smoothed = [], []
        rt.submit("SELECT AVG(value) FROM sensors EPOCH DURATION 5 FOR 100",
                  lambda o: None, on_epoch=lambda o: plain.append(o.value))
        rt.sim.run(until=300.0)
        rt2 = make_runtime(noise_std=3.0, seed=12)
        rt2.submit("SELECT AVG(value) FROM sensors EPOCH DURATION 5 FOR 100 WINDOW 25",
                   lambda o: None, on_epoch=lambda o: smoothed.append(o.value))
        rt2.sim.run(until=300.0)
        import numpy as np

        # smoothing reduces epoch-to-epoch variance
        assert np.std(np.diff(smoothed[5:])) < np.std(np.diff(plain[5:]))

    def test_windowed_count_sums_epochs(self):
        rt = make_runtime()
        epochs = []
        rt.submit("SELECT COUNT(value) FROM sensors EPOCH DURATION 5 FOR 30 WINDOW 15",
                  lambda o: None, on_epoch=epochs.append)
        rt.sim.run(until=60.0)
        # window of 3 epochs over 9 sensors: steady-state count = 27
        assert epochs[-1].value == pytest.approx(27.0)
        assert epochs[0].value == pytest.approx(9.0)  # only 1 epoch in window

    def test_windowed_rel_error_is_nan(self):
        rt = make_runtime()
        epochs = []
        rt.submit("SELECT AVG(value) FROM sensors EPOCH DURATION 5 FOR 20 WINDOW 10",
                  lambda o: None, on_epoch=epochs.append)
        rt.sim.run(until=40.0)
        assert all(math.isnan(e.rel_error) for e in epochs)

    def test_non_windowed_unaffected(self):
        rt = make_runtime()
        epochs = []
        rt.submit("SELECT AVG(value) FROM sensors EPOCH DURATION 5 FOR 20",
                  lambda o: None, on_epoch=epochs.append)
        rt.sim.run(until=40.0)
        assert all(not math.isnan(e.rel_error) for e in epochs if e.success)
