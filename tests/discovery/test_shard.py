"""Unit tests for consistent-hash sharding of ontology classes."""

import pytest

from repro.discovery import build_service_ontology
from repro.discovery.shard import ShardMap, stable_hash


class TestStableHash:
    def test_deterministic_and_64_bit(self):
        assert stable_hash("PrinterService") == stable_hash("PrinterService")
        assert 0 <= stable_hash("x") < 2 ** 64

    def test_spreads_keys(self):
        hashes = {stable_hash(f"key-{i}") for i in range(100)}
        assert len(hashes) == 100


class TestShardMap:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap(0)
        with pytest.raises(ValueError):
            ShardMap(2, replication=3)
        with pytest.raises(ValueError):
            ShardMap(2, replication=0)
        with pytest.raises(ValueError):
            ShardMap(2, points_per_shard=0)

    def test_owners_are_distinct_and_replicated(self):
        smap = ShardMap(8, replication=3)
        for category in build_service_ontology().classes():
            owners = smap.owners_of(category)
            assert len(owners) == 3
            assert len(set(owners)) == 3
            assert all(0 <= s < 8 for s in owners)

    def test_assignment_is_stable_across_instances(self):
        a, b = ShardMap(4, replication=2), ShardMap(4, replication=2)
        for category in build_service_ontology().classes():
            assert a.owners_of(category) == b.owners_of(category)

    def test_primary_and_owns_agree(self):
        smap = ShardMap(4, replication=2)
        owners = smap.owners_of("PrinterService")
        assert smap.primary_of("PrinterService") == owners[0]
        for shard in range(4):
            assert smap.owns(shard, "PrinterService") == (shard in owners)

    def test_full_replication_covers_every_shard(self):
        smap = ShardMap(3, replication=3)
        assert sorted(smap.owners_of("anything")) == [0, 1, 2]

    def test_assignment_table_lists_empty_shards(self):
        smap = ShardMap(16, replication=1)
        table = smap.assignment(["PrinterService"])
        assert set(table) == set(range(16))
        assert sum(len(cats) for cats in table.values()) == 1

    def test_growing_the_ring_moves_few_classes(self):
        # consistent hashing: adding shards must not reshuffle everything
        categories = sorted(build_service_ontology().classes())
        before = ShardMap(8, replication=1)
        after = ShardMap(9, replication=1)
        moved = sum(before.primary_of(c) != after.primary_of(c) for c in categories)
        assert moved < len(categories)
