"""Unit tests for the ontology."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.discovery import Ontology, build_service_ontology


@pytest.fixture
def ont():
    return build_service_ontology()


class TestConstruction:
    def test_root_exists(self):
        o = Ontology()
        assert o.has_class("Thing")
        assert o.classes() == ["Thing"]

    def test_add_class_default_parent_is_root(self):
        o = Ontology()
        o.add_class("A")
        assert o.parents("A") == {"Thing"}
        assert o.children("Thing") == {"A"}

    def test_unknown_parent_rejected(self):
        o = Ontology()
        with pytest.raises(KeyError):
            o.add_class("A", "Missing")

    def test_multiple_parents(self):
        o = Ontology()
        o.add_class("A")
        o.add_class("B")
        o.add_class("C", ["A", "B"])
        assert o.parents("C") == {"A", "B"}

    def test_readd_extends_parents(self):
        o = Ontology()
        o.add_class("A")
        o.add_class("B")
        o.add_class("C", "A")
        o.add_class("C", "B")
        assert o.parents("C") == {"A", "B"}

    def test_self_parent_rejected(self):
        o = Ontology()
        o.add_class("A")
        with pytest.raises(ValueError):
            o.add_class("A", "A")

    def test_cycle_rejected(self):
        o = Ontology()
        o.add_class("A")
        o.add_class("B", "A")
        with pytest.raises(ValueError):
            o.add_class("A", "B")


class TestReasoning:
    def test_subsumes_reflexive(self, ont):
        assert ont.subsumes("PrinterService", "PrinterService")

    def test_subsumes_transitive(self, ont):
        assert ont.subsumes("Service", "ColorPrinterService")
        assert ont.subsumes("DeviceService", "ColorPrinterService")
        assert not ont.subsumes("ColorPrinterService", "PrinterService")

    def test_subsumes_unknown_class(self, ont):
        with pytest.raises(KeyError):
            ont.subsumes("Nope", "Service")

    def test_ancestors_descendants_inverse(self, ont):
        assert "PrinterService" in ont.ancestors("ColorPrinterService")
        assert "ColorPrinterService" in ont.descendants("PrinterService")
        assert "ColorPrinterService" not in ont.ancestors("ColorPrinterService")

    def test_depth(self, ont):
        assert ont.depth("Thing") == 0
        assert ont.depth("Service") == 1
        assert ont.depth("ColorPrinterService") == 4

    def test_least_common_subsumers_siblings(self, ont):
        lcs = ont.least_common_subsumers("ColorPrinterService", "LaserPrinterService")
        assert lcs == {"PrinterService"}

    def test_lcs_with_self(self, ont):
        assert ont.least_common_subsumers("PrinterService", "PrinterService") == {"PrinterService"}

    def test_lcs_ancestor(self, ont):
        assert ont.least_common_subsumers("PrinterService", "ColorPrinterService") == {"PrinterService"}

    def test_distance_zero_iff_same(self, ont):
        assert ont.distance("PrinterService", "PrinterService") == 0
        assert ont.distance("ColorPrinterService", "LaserPrinterService") == 2
        assert ont.distance("PrinterService", "ColorPrinterService") == 1

    def test_distance_symmetric(self, ont):
        a, b = "ColorPrinterService", "TemperatureSensorService"
        assert ont.distance(a, b) == ont.distance(b, a)

    def test_related_siblings(self, ont):
        assert ont.related("ColorPrinterService", "LaserPrinterService")
        assert ont.related("TemperatureSensorService", "ToxinSensorService")

    def test_unrelated_across_root(self, ont):
        # PrinterService and TemperatureReading only share Thing
        assert not ont.related("PrinterService", "TemperatureReading")

    @settings(max_examples=30)
    @given(st.data())
    def test_distance_triangle_inequality(self, data):
        ont = build_service_ontology()
        classes = ont.classes()
        a = data.draw(st.sampled_from(classes))
        b = data.draw(st.sampled_from(classes))
        c = data.draw(st.sampled_from(classes))
        assert ont.distance(a, b) <= ont.distance(a, c) + ont.distance(c, b)


class TestDefaultOntology:
    def test_expected_classes_present(self, ont):
        for cls in (
            "Service",
            "PrinterService",
            "ColorPrinterService",
            "PDESolverService",
            "TemperatureSensorService",
            "DecisionTreeService",
            "FourierSpectrumService",
            "EnsembleCombinerService",
            "TemperatureDistribution",
        ):
            assert ont.has_class(cls), cls

    def test_all_classes_reachable_from_root(self, ont):
        reachable = ont.descendants("Thing") | {"Thing"}
        assert set(ont.classes()) == reachable
