"""Unit tests for the sharded, replicated registry over a shared log."""

import pytest

from repro.discovery import (
    Preference,
    ReplicatedRegistry,
    SemanticMatcher,
    ServiceDescription,
    ServiceRegistry,
    ServiceRequest,
    build_service_ontology,
)
from repro.discovery.log import EventLog
from repro.discovery.replica import ReplicaRegistry
from repro.discovery.shard import ShardMap
from repro.simkernel.monitor import Monitor


def matcher():
    return SemanticMatcher(build_service_ontology())


def svc(name, category="PrinterService", host=None, **attrs):
    return ServiceDescription(name=name, category=category, host_node=host,
                              attributes=attrs)


def populate(registry, n=24):
    categories = ["PrinterService", "ColorPrinterService", "DisplayService",
                  "ComputeService", "StorageService", "SensorService"]
    for i in range(n):
        registry.advertise(svc(f"s{i:02d}", category=categories[i % len(categories)],
                               host=i % 5, queue_length=i % 7))


class TestReplicaRegistry:
    def test_accepts_only_owned_categories(self):
        m = matcher()
        smap = ShardMap(4, replication=1)
        log = EventLog()
        log.append_advertise(svc("a", category="PrinterService"))
        log.append_advertise(svc("b", category="DisplayService"))
        owner = smap.primary_of("PrinterService")
        replica = ReplicaRegistry(m, owner, smap)
        replica.rebuild(log)
        held = {s.name for s in replica.services()}
        assert "a" in held
        if smap.primary_of("DisplayService") != owner:
            assert "b" not in held

    def test_withdrawals_always_apply(self):
        m = matcher()
        smap = ShardMap(2, replication=2)  # both shards own everything
        replica = ReplicaRegistry(m, 0, smap)
        log = EventLog()
        log.append_advertise(svc("a", host=1))
        log.append_withdraw("a")
        replica.rebuild(log)
        assert len(replica) == 0
        assert replica.applied_seq == 2


class TestReplicatedRegistry:
    @pytest.mark.parametrize("n_shards,replication", [(1, 1), (2, 2), (4, 2), (8, 3)])
    def test_equivalent_to_plain_registry(self, n_shards, replication):
        m = matcher()
        plain = ServiceRegistry(m)
        rep = ReplicatedRegistry(m, n_shards, replication)
        populate(plain)
        populate(rep)
        plain.withdraw("s03")
        rep.withdraw("s03")
        plain.withdraw_host(2)
        rep.withdraw_host(2)
        assert [s.name for s in rep.services()] == [s.name for s in plain.services()]
        request = ServiceRequest(category="PrinterService",
                                 preferences=(Preference("queue_length", "minimize"),))
        assert ([(r.service.name, r.score) for r in rep.search(request, top_k=10)]
                == [(r.service.name, r.score) for r in plain.search(request, top_k=10)])

    def test_single_replica_down_loses_nothing(self):
        m = matcher()
        rep = ReplicatedRegistry(m, 4, 2)
        populate(rep)
        everything = [s.name for s in rep.services()]
        request = ServiceRequest(category="PrinterService")
        baseline = [r.service.name for r in rep.search(request)]
        for shard in range(4):
            rep.mark_down(shard)
            assert [s.name for s in rep.services()] == everything
            assert [r.service.name for r in rep.search(request)] == baseline
            rep.mark_up(shard)

    def test_rebuild_is_byte_identical(self):
        m = matcher()
        rep = ReplicatedRegistry(m, 4, 2)
        populate(rep)
        rep.withdraw_host(1)
        before = repr(rep.services())
        per_replica = [repr(r.services()) for r in rep.replicas]
        rep.rebuild()
        assert repr(rep.services()) == before
        assert [repr(r.services()) for r in rep.replicas] == per_replica

    def test_detached_view_lags_then_catches_up(self):
        m = matcher()
        log = EventLog()
        writer = ReplicatedRegistry(m, 2, 1, log=log)
        standby = ReplicatedRegistry(m, 2, 1, log=log, live=False)
        populate(writer, n=6)
        assert standby.lag == 6
        assert len(standby) == 0
        assert standby.catch_up() == 6
        assert standby.lag == 0
        assert [s.name for s in standby.services()] == [s.name for s in writer.services()]
        assert standby.replayed_events == 6

    def test_attach_goes_live(self):
        m = matcher()
        log = EventLog()
        writer = ReplicatedRegistry(m, 2, 1, log=log)
        view = ReplicatedRegistry(m, 2, 1, log=log, live=False)
        view.attach()
        writer.advertise(svc("late"))
        assert view.lag == 0
        assert view.get("late") is not None
        view.detach()
        writer.advertise(svc("later"))
        assert view.lag == 1
        assert view.get("later") is None

    def test_withdraw_counts_distinct_services(self):
        m = matcher()
        rep = ReplicatedRegistry(m, 4, 3)  # every service lives on 3 replicas
        rep.advertise(svc("a", host=1))
        rep.advertise(svc("b", host=1))
        rep.advertise(svc("c", host=2))
        rep.withdraw("c")
        assert rep.withdraw_count == 1
        assert rep.withdraw_host(1) == 2
        assert rep.withdraw_count == 3

    def test_monitor_counters(self):
        mon = Monitor()
        rep = ReplicatedRegistry(matcher(), 2, 1, monitor=mon)
        rep.advertise(svc("a"))
        rep.search(ServiceRequest(category="PrinterService"))
        rep.withdraw("a")
        summary = mon.summary()
        assert summary["disc.advertise"] == 1
        assert summary["disc.search"] == 1
        assert summary["disc.withdraw"] == 1
