"""Unit tests for the append-only registry event log."""

import pytest

from repro.discovery import ServiceDescription
from repro.discovery.log import EventLog, RegistryEvent, apply_event


def svc(name, category="PrinterService", host=None):
    return ServiceDescription(name=name, category=category, host_node=host)


class TestRegistryEvent:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            RegistryEvent(1, 0.0, "mutate", service=svc("a"))

    def test_payload_validation(self):
        with pytest.raises(ValueError):
            RegistryEvent(1, 0.0, "advertise")  # no service
        with pytest.raises(ValueError):
            RegistryEvent(1, 0.0, "refresh")
        with pytest.raises(ValueError):
            RegistryEvent(1, 0.0, "withdraw")  # no name
        with pytest.raises(ValueError):
            RegistryEvent(1, 0.0, "withdraw-host")  # no host

    def test_category_property(self):
        ad = RegistryEvent(1, 0.0, "advertise", service=svc("a", category="X"))
        wd = RegistryEvent(2, 0.0, "withdraw", service_name="a")
        assert ad.category == "X"
        assert wd.category is None


class TestApplyEvent:
    def test_advertise_then_withdraw(self):
        state = {}
        assert apply_event(state, RegistryEvent(1, 0.0, "advertise", service=svc("a"))) == 0
        assert set(state) == {"a"}
        assert apply_event(state, RegistryEvent(2, 0.0, "withdraw", service_name="a")) == 1
        assert apply_event(state, RegistryEvent(3, 0.0, "withdraw", service_name="a")) == 0
        assert state == {}

    def test_refresh_overwrites(self):
        state = {}
        apply_event(state, RegistryEvent(1, 0.0, "advertise", service=svc("a", category="X")))
        apply_event(state, RegistryEvent(2, 0.0, "refresh", service=svc("a", category="Y")))
        assert state["a"].category == "Y"

    def test_withdraw_host_counts(self):
        state = {}
        for i, host in enumerate([3, 3, 4]):
            apply_event(state, RegistryEvent(i + 1, 0.0, "advertise",
                                             service=svc(f"s{i}", host=host)))
        assert apply_event(state, RegistryEvent(4, 0.0, "withdraw-host", host_node=3)) == 2
        assert set(state) == {"s2"}

    def test_accept_filters_advertisements_only(self):
        state = {}
        accept = lambda s: s.category == "X"
        apply_event(state, RegistryEvent(1, 0.0, "advertise", service=svc("a", category="X")),
                    accept=accept)
        apply_event(state, RegistryEvent(2, 0.0, "advertise", service=svc("b", category="Y")),
                    accept=accept)
        assert set(state) == {"a"}
        # withdrawals always apply, even for names the filter rejected
        assert apply_event(state, RegistryEvent(3, 0.0, "withdraw", service_name="a"),
                           accept=lambda s: False) == 1


class TestEventLog:
    def test_seq_is_monotonic_and_dense(self):
        log = EventLog()
        log.append_advertise(svc("a"))
        log.append_withdraw("a")
        log.append_withdraw_host(7)
        assert [e.seq for e in log] == [1, 2, 3]
        assert log.last_seq == 3
        assert len(log) == 3

    def test_clock_stamps_appends(self):
        now = [0.0]
        log = EventLog(clock=lambda: now[0])
        log.append_advertise(svc("a"))
        now[0] = 5.5
        log.append_withdraw("a")
        assert [e.time_s for e in log] == [0.0, 5.5]

    def test_events_slicing(self):
        log = EventLog()
        for i in range(5):
            log.append_advertise(svc(f"s{i}"))
        assert [e.seq for e in log.events()] == [1, 2, 3, 4, 5]
        assert [e.seq for e in log.events(after_seq=2)] == [3, 4, 5]
        assert [e.seq for e in log.events(after_seq=2, upto_seq=4)] == [3, 4]
        assert log.events(after_seq=5) == []
        with pytest.raises(ValueError):
            log.events(after_seq=-1)

    def test_replay_prefix_is_deterministic(self):
        log = EventLog()
        log.append_advertise(svc("a", host=1))
        log.append_advertise(svc("b", host=2))
        log.append_withdraw_host(1)
        log.append_advertise(svc("c", host=1))
        full = log.replay()
        assert set(full) == {"b", "c"}
        assert log.replay() == full  # replay is pure
        assert set(log.replay(upto_seq=2)) == {"a", "b"}

    def test_replay_tail_into_existing_state(self):
        log = EventLog()
        log.append_advertise(svc("a"))
        state = log.replay()
        log.append_advertise(svc("b"))
        log.append_withdraw("a")
        log.replay(after_seq=1, into=state)
        assert set(state) == {"b"}

    def test_subscribe_and_unsubscribe(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.subscribe(seen.append)  # idempotent
        log.append_advertise(svc("a"))
        assert [e.seq for e in seen] == [1]
        log.unsubscribe(seen.append)
        log.unsubscribe(seen.append)  # no-op when absent
        log.append_advertise(svc("b"))
        assert len(seen) == 1
