"""Unit tests for single-active broker failover over the shared log."""

import pytest

from repro.agents import AgentPlatform
from repro.discovery import (
    BrokerAgent,
    SemanticMatcher,
    ServiceDescription,
    build_service_ontology,
)
from repro.discovery.failover import BrokerGroup
from repro.discovery.log import EventLog
from repro.simkernel import Simulator
from repro.simkernel.monitor import Monitor


def svc(name, category="PrinterService", host=None):
    return ServiceDescription(name=name, category=category, host_node=host)


def make_group(hosts=(10, 11, 12), monitor=None, **kw):
    sim = Simulator()
    platform = AgentPlatform(sim)
    log = EventLog(clock=lambda: sim.now)
    group = BrokerGroup(sim, platform, log, SemanticMatcher(build_service_ontology()),
                        hosts, detection_delay_s=2.0, replay_s_per_event=0.01,
                        monitor=monitor, **kw)
    return sim, platform, log, group


class TestBrokerGroup:
    def test_validation(self):
        sim = Simulator()
        platform = AgentPlatform(sim)
        m = SemanticMatcher(build_service_ontology())
        with pytest.raises(ValueError):
            BrokerGroup(sim, platform, EventLog(), m, hosts=[])
        with pytest.raises(ValueError):
            BrokerGroup(sim, platform, EventLog(), m, hosts=[1], detection_delay_s=-1)

    def test_member_zero_starts_active(self):
        sim, platform, log, group = make_group()
        assert group.active_id == 0
        assert group.online()
        assert platform.is_registered("broker")
        assert isinstance(group.active_broker(), BrokerAgent)
        assert group.timeline[0].phase == "activate"

    def test_standby_death_does_not_fail_over(self):
        sim, platform, log, group = make_group()
        group.node_down(11)
        sim.run(until=30)
        assert group.active_id == 0
        assert group.failovers == 0

    def test_active_death_promotes_lowest_id_standby(self):
        mon = Monitor()
        sim, platform, log, group = make_group(monitor=mon)
        for i in range(10):
            log.append_advertise(svc(f"s{i}", host=i))
        group.node_down(10)
        assert not group.online()
        assert not platform.is_registered("broker")
        sim.run(until=30)
        assert group.active_id == 1
        assert group.failovers == 1
        assert platform.is_registered("broker")
        phases = [e.phase for e in group.timeline]
        assert phases == ["activate", "down", "promote"]
        summary = mon.summary()
        assert summary["disc.broker_down"] == 1
        assert summary["disc.failover"] == 1
        # outage = detection (2 s) + replay (10 events * 0.01 s)
        assert summary["disc.failover_time.mean"] == pytest.approx(2.1)

    def test_promoted_standby_serves_the_whole_log(self):
        sim, platform, log, group = make_group()
        for i in range(20):
            log.append_advertise(svc(f"s{i}", host=i % 3))
        log.append_withdraw("s7")
        group.node_down(10)
        sim.run(until=30)
        names = [s.name for s in group.active.view.services()]
        assert names == sorted(f"s{i}" for i in range(20) if i != 7)

    def test_staleness_during_outage(self):
        sim, platform, log, group = make_group()
        assert group.staleness() == 0
        for i in range(5):
            log.append_advertise(svc(f"s{i}"))
        group.node_down(10)
        # standbys have applied nothing: the whole log is unserved
        assert group.staleness() == 5
        sim.run(until=30)
        assert group.staleness() == 0

    def test_death_mid_replay_moves_to_next_candidate(self):
        sim, platform, log, group = make_group()
        for i in range(50):
            log.append_advertise(svc(f"s{i}"))
        group.node_down(10)
        # kill the would-be promotee while it replays (2 s detection +
        # 0.5 s replay); member 2 must take over instead
        sim.schedule(2.2, lambda: group.node_down(11))
        sim.run(until=60)
        assert group.active_id == 2
        assert group.failovers == 1

    def test_total_loss_stalls_then_rejoin_recovers(self):
        sim, platform, log, group = make_group(hosts=(10, 11))
        log.append_advertise(svc("a"))
        group.node_down(10)
        group.node_down(11)
        sim.run(until=30)
        assert not group.online()
        assert group.timeline[-1].phase == "stalled"
        group.node_up(11)
        sim.run(until=60)
        assert group.online()
        assert group.active_id == 1
        assert [e.phase for e in group.timeline].count("rejoin") == 1
        assert [s.name for s in group.active.view.services()] == ["a"]

    def test_wired_member_is_immune_to_node_faults(self):
        sim, platform, log, group = make_group(hosts=(None, 11))
        group.node_down(11)
        sim.run(until=30)
        assert group.active_id == 0
        assert group.failovers == 0
