"""Unit tests for constraints, the semantic matcher and ranking.

These encode the paper's printer scenario directly: find a printer with
the shortest queue, geographically closest, color within a cost bound.
"""

import pytest

from repro.discovery import (
    Constraint,
    MatchDegree,
    Preference,
    SemanticMatcher,
    ServiceDescription,
    ServiceRequest,
    build_service_ontology,
)


@pytest.fixture
def matcher():
    return SemanticMatcher(build_service_ontology())


def printer(name, category="PrinterService", **attrs):
    return ServiceDescription(name=name, category=category, attributes=attrs, interfaces=("Printer",))


class TestConstraint:
    def test_operators(self):
        attrs = {"cost": 5.0, "color": True, "location": "floor2"}
        assert Constraint("cost", "<=", 5.0).satisfied_by(attrs)
        assert not Constraint("cost", "<", 5.0).satisfied_by(attrs)
        assert Constraint("color", "==", True).satisfied_by(attrs)
        assert Constraint("location", "in", ["floor1", "floor2"]).satisfied_by(attrs)
        assert Constraint("location", "contains", "floor").satisfied_by(attrs)
        assert Constraint("cost", "!=", 4.0).satisfied_by(attrs)

    def test_missing_attribute_fails(self):
        assert not Constraint("queue", "<", 3).satisfied_by({})

    def test_type_error_fails_gracefully(self):
        assert not Constraint("cost", "<", 3).satisfied_by({"cost": "cheap"})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Constraint("x", "~=", 1)

    def test_str(self):
        assert str(Constraint("cost", "<=", 0.1)) == "cost <= 0.1"


class TestPreference:
    def test_minimize_ranks_low_first(self):
        p = Preference("queue", "minimize")
        utils = p.utilities([{"queue": 0}, {"queue": 10}, {"queue": 5}])
        assert utils[0] == 1.0 and utils[1] == 0.0 and utils[2] == pytest.approx(0.5)

    def test_maximize(self):
        p = Preference("speed", "maximize")
        utils = p.utilities([{"speed": 1.0}, {"speed": 3.0}])
        assert utils == [0.0, 1.0]

    def test_missing_value_neutral(self):
        p = Preference("queue", "minimize")
        utils = p.utilities([{"queue": 0}, {}, {"queue": 10}])
        assert utils[1] == 0.5

    def test_constant_attribute_all_tie(self):
        p = Preference("queue", "minimize")
        assert p.utilities([{"queue": 2}, {"queue": 2}]) == [1.0, 1.0]

    def test_all_missing(self):
        assert Preference("x").utilities([{}, {}]) == [0.5, 0.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            Preference("x", "middle")
        with pytest.raises(ValueError):
            Preference("x", weight=0.0)

    def test_bool_not_treated_as_number(self):
        utils = Preference("flag", "maximize").utilities([{"flag": True}, {"flag": 2.0}, {"flag": 1.0}])
        assert utils[0] == 0.5  # neutral


class TestMatchDegrees:
    def test_exact(self, matcher):
        assert matcher.category_degree("PrinterService", "PrinterService") is MatchDegree.EXACT

    def test_plugin_more_specific_advertised(self, matcher):
        assert matcher.category_degree("PrinterService", "ColorPrinterService") is MatchDegree.PLUGIN

    def test_subsumes_more_general_advertised(self, matcher):
        assert matcher.category_degree("ColorPrinterService", "PrinterService") is MatchDegree.SUBSUMES

    def test_overlap_siblings(self, matcher):
        assert matcher.category_degree("ColorPrinterService", "LaserPrinterService") is MatchDegree.OVERLAP

    def test_fail_unrelated(self, matcher):
        assert matcher.category_degree("PrinterService", "TemperatureSensorService") is MatchDegree.FAIL

    def test_fail_unknown_class(self, matcher):
        assert matcher.category_degree("Nope", "PrinterService") is MatchDegree.FAIL

    def test_degree_ordering(self):
        assert MatchDegree.EXACT > MatchDegree.PLUGIN > MatchDegree.SUBSUMES > MatchDegree.OVERLAP > MatchDegree.FAIL


class TestEvaluate:
    def test_exact_scores_highest(self, matcher):
        req = ServiceRequest(category="PrinterService")
        exact = matcher.evaluate(req, printer("p1"))
        plugin = matcher.evaluate(req, printer("p2", category="ColorPrinterService"))
        subsume = matcher.evaluate(req, printer("p3", category="DeviceService"))
        assert exact.score > plugin.score > subsume.score > 0.0

    def test_constraint_violation_fails(self, matcher):
        req = ServiceRequest(
            category="PrinterService",
            constraints=(Constraint("cost_per_page", "<=", 0.10),),
        )
        cheap = matcher.evaluate(req, printer("cheap", cost_per_page=0.05))
        pricey = matcher.evaluate(req, printer("pricey", cost_per_page=0.50))
        assert cheap.degree is MatchDegree.EXACT
        assert pricey.degree is MatchDegree.FAIL
        assert pricey.score == 0.0

    def test_io_compatibility_affects_score(self, matcher):
        req = ServiceRequest(category="DataMiningService", outputs=("DecisionTree",))
        produces = ServiceDescription("a", "DataMiningService", outputs=("DecisionTree",))
        produces_not = ServiceDescription("b", "DataMiningService", outputs=("FourierSpectrum",))
        assert matcher.evaluate(req, produces).score > matcher.evaluate(req, produces_not).score

    def test_io_plugin_outputs_accepted(self, matcher):
        # requesting generic Data output; service produces DecisionTree (a Data)
        req = ServiceRequest(category="DataMiningService", outputs=("Data",))
        svc = ServiceDescription("a", "DataMiningService", outputs=("DecisionTree",))
        assert matcher.evaluate(req, svc).score > 0.5

    def test_service_inputs_must_be_suppliable(self, matcher):
        req = ServiceRequest(category="DataMiningService", inputs=("DataStream",))
        ok = ServiceDescription("a", "DataMiningService", inputs=("DataStream",))
        starved = ServiceDescription("b", "DataMiningService", inputs=("DecisionTree",))
        assert matcher.evaluate(req, ok).score > matcher.evaluate(req, starved).score


class TestRank:
    def test_paper_printer_scenario(self, matcher):
        """Color within cost bound, prefer short queue and nearby."""
        candidates = [
            printer("far-cheap-color", category="ColorPrinterService",
                    cost_per_page=0.08, queue_length=1, distance_m=500.0),
            printer("near-cheap-color", category="ColorPrinterService",
                    cost_per_page=0.08, queue_length=1, distance_m=10.0),
            printer("near-pricey-color", category="ColorPrinterService",
                    cost_per_page=0.90, queue_length=0, distance_m=5.0),
            printer("near-cheap-mono", category="LaserPrinterService",
                    cost_per_page=0.02, queue_length=0, distance_m=5.0),
        ]
        req = ServiceRequest(
            category="ColorPrinterService",
            constraints=(Constraint("cost_per_page", "<=", 0.10),),
            preferences=(Preference("queue_length", "minimize"), Preference("distance_m", "minimize")),
        )
        ranked = matcher.rank(req, candidates)
        names = [r.service.name for r in ranked]
        # pricey color violates the hard constraint: absent entirely
        assert "near-pricey-color" not in names
        # the near cheap color printer must win over the far one
        assert names[0] == "near-cheap-color"
        assert names.index("near-cheap-color") < names.index("far-cheap-color")
        # the mono laser appears (SUBSUMES-ish via sibling/ancestor) below color matches
        if "near-cheap-mono" in names:
            assert names.index("near-cheap-mono") > names.index("far-cheap-color")

    def test_rank_returns_sorted_degrees(self, matcher):
        req = ServiceRequest(category="PrinterService")
        candidates = [
            printer("general", category="DeviceService"),
            printer("exact"),
            printer("specific", category="ColorPrinterService"),
        ]
        ranked = matcher.rank(req, candidates)
        degrees = [r.degree for r in ranked]
        assert degrees == sorted(degrees, reverse=True)
        assert ranked[0].service.name == "exact"

    def test_rank_top_k(self, matcher):
        req = ServiceRequest(category="PrinterService")
        candidates = [printer(f"p{i}") for i in range(10)]
        assert len(matcher.rank(req, candidates, top_k=3)) == 3

    def test_rank_excludes_fails(self, matcher):
        req = ServiceRequest(category="PrinterService")
        candidates = [printer("p"), ServiceDescription("sensor", "TemperatureSensorService")]
        names = [r.service.name for r in matcher.rank(req, candidates)]
        assert names == ["p"]

    def test_rank_deterministic_tie_break(self, matcher):
        req = ServiceRequest(category="PrinterService")
        ranked = matcher.rank(req, [printer("b"), printer("a")])
        assert [r.service.name for r in ranked] == ["a", "b"]

    def test_flat_scoring_ablation(self):
        """use_degrees=False ranks purely by fuzzy score."""
        flat = SemanticMatcher(build_service_ontology(), use_degrees=False)
        req = ServiceRequest(category="PrinterService")
        ranked = flat.rank(req, [printer("exact"), printer("plugin", category="ColorPrinterService")])
        assert ranked[0].service.name == "exact"  # distance 0 beats distance 1

    def test_empty_candidates(self, matcher):
        assert matcher.rank(ServiceRequest(category="PrinterService"), []) == []
