"""Unit tests for registries, the broker agent and baseline protocols."""

import pytest

from repro.agents import ACLMessage, Agent, AgentPlatform, Performative
from repro.discovery import (
    BrokerAgent,
    DistributedBrokerNetwork,
    SemanticMatcher,
    ServiceDescription,
    ServiceRegistry,
    ServiceRequest,
    build_service_ontology,
)
from repro.discovery.protocols import BluetoothSDP, JiniLookup, SLPDirectory
from repro.simkernel import Simulator


def make_registry(name="r"):
    return ServiceRegistry(SemanticMatcher(build_service_ontology()), name=name)


def svc(name, category="PrinterService", host=None, **attrs):
    return ServiceDescription(name=name, category=category, host_node=host,
                              attributes=attrs, interfaces=(category,))


class TestServiceRegistry:
    def test_advertise_and_search(self):
        reg = make_registry()
        reg.advertise(svc("p1"))
        results = reg.search(ServiceRequest(category="PrinterService"))
        assert [r.service.name for r in results] == ["p1"]
        assert len(reg) == 1

    def test_advertise_refresh_overwrites(self):
        reg = make_registry()
        reg.advertise(svc("p1", queue_length=5))
        reg.advertise(svc("p1", queue_length=2))
        assert len(reg) == 1
        assert reg.get("p1").attributes["queue_length"] == 2

    def test_withdraw(self):
        reg = make_registry()
        reg.advertise(svc("p1"))
        assert reg.withdraw("p1")
        assert not reg.withdraw("p1")
        assert len(reg) == 0

    def test_withdraw_host(self):
        reg = make_registry()
        reg.advertise(svc("a", host=3))
        reg.advertise(svc("b", host=3))
        reg.advertise(svc("c", host=4))
        assert reg.withdraw_host(3) == 2
        assert [s.name for s in reg.services()] == ["c"]

    def test_counts(self):
        reg = make_registry()
        reg.advertise(svc("a"))
        reg.search(ServiceRequest(category="PrinterService"))
        assert reg.advertise_count == 1
        assert reg.search_count == 1

    def test_withdraw_count(self):
        reg = make_registry()
        reg.advertise(svc("a", host=1))
        reg.advertise(svc("b", host=1))
        reg.advertise(svc("c", host=2))
        reg.withdraw("c")
        reg.withdraw("ghost")  # a miss does not count
        assert reg.withdraw_count == 1
        reg.withdraw_host(1)
        assert reg.withdraw_count == 3

    def test_mutations_land_on_the_log(self):
        reg = make_registry()
        reg.advertise(svc("a", host=1))
        reg.advertise(svc("a", host=1))  # refresh
        reg.withdraw("a")
        reg.withdraw_host(1)
        assert [e.kind for e in reg.log] == [
            "advertise", "refresh", "withdraw", "withdraw-host"]

    def test_rebuild_from_log_is_identical(self):
        reg = make_registry()
        reg.advertise(svc("a", host=1))
        reg.advertise(svc("b", host=2))
        reg.withdraw_host(1)
        rebuilt = ServiceRegistry.rebuild(reg.matcher, reg.log)
        assert repr(rebuilt.services()) == repr(reg.services())
        # a prefix replay reconstructs the earlier state
        halfway = ServiceRegistry.rebuild(reg.matcher, reg.log, upto_seq=2)
        assert [s.name for s in halfway.services()] == ["a", "b"]

    def test_shared_log_materializes_at_construction(self):
        reg = make_registry()
        reg.advertise(svc("a"))
        twin = ServiceRegistry(reg.matcher, name="twin", log=reg.log)
        assert [s.name for s in twin.services()] == ["a"]


class TestDistributedBrokerNetwork:
    def make_net(self):
        regs = [make_registry(f"b{i}") for i in range(3)]
        regs[0].advertise(svc("local-printer"))
        regs[1].advertise(svc("remote-printer", queue_length=0))
        regs[2].advertise(svc("far-printer"))
        return regs, DistributedBrokerNetwork(regs, peers={"b0": ["b1"], "b1": ["b2"], "b2": []})

    def test_zero_hops_local_only(self):
        regs, net = self.make_net()
        results, asked = net.search(ServiceRequest(category="PrinterService"), home="b0", max_hops=0)
        assert [r.service.name for r in results] == ["local-printer"]
        assert asked == 1

    def test_one_hop_reaches_peer(self):
        regs, net = self.make_net()
        results, asked = net.search(ServiceRequest(category="PrinterService"), home="b0", max_hops=1)
        assert {r.service.name for r in results} == {"local-printer", "remote-printer"}
        assert asked == 2

    def test_two_hops_reaches_all(self):
        regs, net = self.make_net()
        results, asked = net.search(ServiceRequest(category="PrinterService"), home="b0", max_hops=2)
        assert asked == 3
        assert len(results) == 3

    def test_dedup_keeps_best(self):
        regs = [make_registry("a"), make_registry("b")]
        regs[0].advertise(svc("dup", category="DeviceService"))  # weaker match
        regs[1].advertise(svc("dup"))  # exact match
        net = DistributedBrokerNetwork(regs)
        results, _ = net.search(ServiceRequest(category="PrinterService"), home="a", max_hops=1)
        (r,) = [x for x in results if x.service.name == "dup"]
        assert r.service.category == "PrinterService"

    def test_full_mesh_default(self):
        regs = [make_registry("a"), make_registry("b")]
        net = DistributedBrokerNetwork(regs)
        assert net.peers == {"a": ["b"], "b": ["a"]}

    def test_withdraw_host_purges_every_broker(self):
        # the same service advertised (cached) at several brokers must not
        # stay reachable through peering after its host dies -- at ANY hop
        # limit
        regs = [make_registry(f"b{i}") for i in range(3)]
        for reg in regs:
            reg.advertise(svc("doomed", host=9))
        regs[1].advertise(svc("survivor", host=1))
        net = DistributedBrokerNetwork(regs, peers={"b0": ["b1"], "b1": ["b2"], "b2": []})
        assert net.withdraw_host(9) == 3
        for max_hops in (0, 1, 2, 5):
            for home in ("b0", "b1", "b2"):
                results, _ = net.search(ServiceRequest(category="PrinterService"),
                                        home=home, max_hops=max_hops)
                assert all(r.service.name != "doomed" for r in results)
        results, _ = net.search(ServiceRequest(category="PrinterService"),
                                home="b0", max_hops=2)
        assert [r.service.name for r in results] == ["survivor"]

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedBrokerNetwork([])
        with pytest.raises(ValueError):
            DistributedBrokerNetwork([make_registry("x"), make_registry("x")])
        with pytest.raises(KeyError):
            DistributedBrokerNetwork([make_registry("a")], peers={"a": ["ghost"]})
        net = DistributedBrokerNetwork([make_registry("a")])
        with pytest.raises(KeyError):
            net.search(ServiceRequest(category="PrinterService"), home="ghost")


class TestBrokerAgent:
    def setup_platform(self):
        sim = Simulator()
        platform = AgentPlatform(sim)
        broker = BrokerAgent("broker", make_registry())
        platform.register(broker)
        client = Agent("client")
        client.replies = []
        client.on(Performative.INFORM, client.replies.append)
        client.on(Performative.FAILURE, client.replies.append)
        platform.register(client)
        return sim, platform, broker, client

    def test_advertise_then_query(self):
        sim, platform, broker, client = self.setup_platform()
        client.ask("broker", Performative.ADVERTISE, svc("p1"))
        sim.run()
        client.ask("broker", Performative.QUERY, ServiceRequest(category="PrinterService"))
        sim.run()
        assert client.replies[0].content == {"registered": "p1"}
        matches = client.replies[1].content
        assert [m.service.name for m in matches] == ["p1"]

    def test_unadvertise(self):
        sim, platform, broker, client = self.setup_platform()
        client.ask("broker", Performative.ADVERTISE, svc("p1"))
        sim.run()
        client.ask("broker", Performative.UNADVERTISE, "p1")
        sim.run()
        assert client.replies[-1].content == {"removed": True}
        assert len(broker.registry) == 0

    def test_bad_payload_gets_failure(self):
        sim, platform, broker, client = self.setup_platform()
        client.ask("broker", Performative.QUERY, "not-a-request")
        client.ask("broker", Performative.ADVERTISE, 42)
        sim.run()
        perfs = [m.performative for m in client.replies]
        assert perfs == [Performative.FAILURE, Performative.FAILURE]

    def test_unadvertise_garbage_gets_failure(self):
        # a non-str payload used to be str()-coerced and answered INFORM;
        # it must be rejected like every other malformed request
        sim, platform, broker, client = self.setup_platform()
        broker.registry.advertise(svc("p1"))
        client.ask("broker", Performative.UNADVERTISE, 42)
        client.ask("broker", Performative.UNADVERTISE, svc("p1"))
        sim.run()
        perfs = [m.performative for m in client.replies]
        assert perfs == [Performative.FAILURE, Performative.FAILURE]
        assert broker.registry.get("p1") is not None  # nothing was removed

    def test_top_k_enforced(self):
        sim, platform, broker, client = self.setup_platform()
        broker.top_k = 2
        for i in range(5):
            broker.registry.advertise(svc(f"p{i}"))
        client.ask("broker", Performative.QUERY, ServiceRequest(category="PrinterService"))
        sim.run()
        assert len(client.replies[-1].content) == 2


class TestJiniBaseline:
    def test_exact_interface_match_only(self):
        jini = JiniLookup()
        jini.register(svc("mono", category="PrinterService"))
        jini.register(svc("color", category="ColorPrinterService"))
        # Jini finds only the exact interface string
        assert [s.name for s in jini.lookup("PrinterService")] == ["mono"]
        assert [s.name for s in jini.lookup("ColorPrinterService")] == ["color"]
        assert jini.lookup("Printer") == []

    def test_unregister(self):
        jini = JiniLookup()
        jini.register(svc("a"))
        assert jini.unregister("a")
        assert not jini.unregister("a")
        assert jini.lookup("PrinterService") == []
        assert len(jini) == 0

    def test_multiple_interfaces(self):
        jini = JiniLookup()
        s = ServiceDescription("multi", "PrinterService", interfaces=("Printer", "Fax"))
        jini.register(s)
        assert jini.lookup("Printer") == [s]
        assert jini.lookup("Fax") == [s]


class TestSDPBaseline:
    def test_uuid_match(self):
        sdp = BluetoothSDP()
        a = svc("a", class_uuid="uuid-print")
        b = svc("b", class_uuid="uuid-print")
        c = svc("c", class_uuid="uuid-scan")
        for s in (a, b, c):
            sdp.register(s)
        assert [s.name for s in sdp.lookup("uuid-print")] == ["a", "b"]
        assert sdp.lookup("uuid-unknown") == []

    def test_fallback_to_instance_uuid(self):
        sdp = BluetoothSDP()
        s = svc("solo")
        sdp.register(s)
        assert sdp.lookup(s.uuid) == [s]

    def test_unregister(self):
        sdp = BluetoothSDP()
        s = svc("a", class_uuid="u")
        sdp.register(s)
        assert sdp.unregister("a")
        assert sdp.lookup("u") == []
        assert not sdp.unregister("a")


class TestSLPBaseline:
    def test_type_and_equality_filter(self):
        slp = SLPDirectory()
        slp.register(svc("c1", color=True, cost=0.08))
        slp.register(svc("c2", color=False, cost=0.02))
        assert [s.name for s in slp.lookup("PrinterService")] == ["c1", "c2"]
        assert [s.name for s in slp.lookup("PrinterService", {"color": True})] == ["c1"]
        # SLP cannot express cost <= 0.10; only equality
        assert slp.lookup("PrinterService", {"cost": 0.10}) == []

    def test_missing_attribute_fails(self):
        slp = SLPDirectory()
        slp.register(svc("c1"))
        assert slp.lookup("PrinterService", {"color": True}) == []

    def test_custom_type_string(self):
        slp = SLPDirectory()
        slp.register(svc("c1", slp_type="service:printer"))
        assert [s.name for s in slp.lookup("service:printer")] == ["c1"]
        assert slp.lookup("PrinterService") == []

    def test_unregister(self):
        slp = SLPDirectory()
        slp.register(svc("a"))
        assert slp.unregister("a")
        assert not slp.unregister("a")
        assert len(slp) == 0
