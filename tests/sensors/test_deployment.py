"""Unit tests for sensor nodes and deployments."""

import numpy as np
import pytest

from repro.network import Battery, RadioEnergyModel
from repro.sensors import Reading, SensorDeployment, SensorNode, UniformField, FireField
from repro.simkernel import RandomStreams, Simulator


def make_node(battery_j=1.0, noise=0.0, seed=0):
    return SensorNode(
        0,
        np.array([0.0, 0.0]),
        Battery(battery_j),
        RadioEnergyModel(),
        np.random.default_rng(seed),
        noise_std=noise,
    )


class TestSensorNode:
    def test_sample_returns_field_value_noiseless(self):
        node = make_node()
        r = node.sample(UniformField(42.0), 3.0)
        assert r is not None
        assert r.value == pytest.approx(42.0)
        assert r.time == 3.0
        assert r.sensor_id == 0
        assert node.samples_taken == 1

    def test_sample_noise_has_spread(self):
        node = make_node(noise=1.0)
        values = [node.sample(UniformField(0.0), 0.0).value for _ in range(200)]
        assert np.std(values) > 0.5

    def test_sampling_drains_battery(self):
        node = make_node(battery_j=1.0)
        node.sample(UniformField(0.0), 0.0)
        assert node.battery.consumed == pytest.approx(RadioEnergyModel().e_sense)

    def test_dead_node_returns_none(self):
        node = make_node(battery_j=0.0)
        assert node.sample(UniformField(0.0), 0.0) is None

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            make_node(noise=-1.0)

    def test_reading_size_constant(self):
        assert Reading.SIZE_BITS == 64.0


class TestSensorDeployment:
    def make(self, n=9, **kw):
        return SensorDeployment(n, 30.0, UniformField(25.0), streams=RandomStreams(1), **kw)

    def test_id_layout(self):
        dep = self.make(n=9, n_handhelds=2)
        assert dep.sensor_ids == list(range(9))
        assert dep.base_station_id == 9
        assert dep.handheld_ids == [10, 11]
        assert dep.topology.n_nodes == 12

    def test_topology_connected(self):
        dep = self.make()
        assert dep.topology.is_connected(among=dep.sensor_ids + [dep.base_station_id])

    def test_sample_all_returns_one_per_sensor(self):
        dep = self.make()
        readings = dep.sample_all()
        assert len(readings) == 9
        assert all(r.value == pytest.approx(25.0, abs=3.0) for r in readings)

    def test_sample_all_skips_dead(self):
        dep = self.make()
        dep.topology.kill(3)
        assert len(dep.sample_all()) == 8

    def test_sample_sensor(self):
        dep = self.make()
        r = dep.sample_sensor(4)
        assert r.sensor_id == 4
        dep.topology.kill(4)
        assert dep.sample_sensor(4) is None

    def test_true_values_free_and_noiseless(self):
        dep = self.make()
        before = dep.total_sensor_energy_consumed()
        vals = dep.true_values()
        assert dep.total_sensor_energy_consumed() == before
        assert np.allclose(vals, 25.0)

    def test_sensor_batteries_finite_base_infinite(self):
        dep = self.make()
        assert dep.network.nodes[0].battery.capacity == 1.0
        assert dep.network.nodes[dep.base_station_id].battery.capacity == float("inf")

    def test_battery_depletion_kills_node_on_sample(self):
        dep = SensorDeployment(
            4, 10.0, UniformField(0.0), streams=RandomStreams(0), battery_j=1e-9, n_handhelds=0
        )
        dep.sample_all()
        dep.sample_all()
        assert dep.dead_sensor_count() == 4
        assert dep.alive_sensor_ids() == []

    def test_energy_accounting(self):
        dep = self.make()
        dep.sample_all()
        expected = 9 * RadioEnergyModel().e_sense
        assert dep.total_sensor_energy_consumed() == pytest.approx(expected)
        assert dep.min_sensor_fraction_remaining() == pytest.approx(1.0 - expected / 9)

    def test_random_placement_reproducible(self):
        a = SensorDeployment(5, 20.0, streams=RandomStreams(3), placement="random")
        b = SensorDeployment(5, 20.0, streams=RandomStreams(3), placement="random")
        assert np.array_equal(a.topology.positions, b.topology.positions)

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            self.make(placement="ring")

    def test_needs_a_sensor(self):
        with pytest.raises(ValueError):
            SensorDeployment(0, 10.0)

    def test_fire_field_integration(self):
        streams = RandomStreams(5)
        field = FireField(30.0, streams.get("fire"))
        dep = SensorDeployment(9, 30.0, field, streams=streams)
        dep.sim.run(until=300.0)
        readings = dep.sample_all()
        # at t=300 the fire has grown: some sensor must read well above ambient
        assert max(r.value for r in readings) > 50.0

    def test_shared_simulator(self):
        sim = Simulator()
        dep = SensorDeployment(4, 10.0, sim=sim, streams=RandomStreams(0))
        assert dep.sim is sim
