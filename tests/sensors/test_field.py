"""Unit tests for synthetic physical fields."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sensors import FireField, HotspotField, PlumeField, UniformField
from repro.sensors.field import Hotspot


class TestUniformField:
    def test_constant_everywhere(self):
        f = UniformField(level=23.0)
        pts = np.array([[0.0, 0.0], [5.0, 5.0], [100.0, -3.0]])
        assert np.allclose(f.sample_at(pts, 0.0), 23.0)

    def test_drift(self):
        f = UniformField(level=20.0, drift_per_s=0.1)
        assert f.value_at(np.array([1.0, 1.0]), 10.0) == pytest.approx(21.0)

    def test_value_at_matches_sample_at(self):
        f = UniformField(level=5.0)
        assert f.value_at(np.array([3.0, 3.0]), 0.0) == pytest.approx(5.0)


class TestHotspot:
    def test_peak_at_center_after_saturation(self):
        h = Hotspot(center=(10.0, 10.0), amplitude=100.0, sigma_m=5.0, growth_rate=10.0)
        val = h.evaluate(np.array([[10.0, 10.0]]), t=100.0)
        assert val[0] == pytest.approx(100.0, rel=1e-3)

    def test_zero_before_ignition(self):
        h = Hotspot(center=(0.0, 0.0), amplitude=100.0, sigma_m=5.0, t0=50.0)
        assert h.evaluate(np.array([[0.0, 0.0]]), t=10.0)[0] == 0.0

    def test_grows_monotonically(self):
        h = Hotspot(center=(0.0, 0.0), amplitude=100.0, sigma_m=5.0, growth_rate=0.1)
        pt = np.array([[0.0, 0.0]])
        vals = [h.evaluate(pt, t)[0] for t in (0.0, 10.0, 50.0, 200.0)]
        assert vals == sorted(vals)
        assert vals[0] == 0.0

    def test_decays_with_distance(self):
        h = Hotspot(center=(0.0, 0.0), amplitude=100.0, sigma_m=5.0, growth_rate=10.0)
        near = h.evaluate(np.array([[1.0, 0.0]]), 100.0)[0]
        far = h.evaluate(np.array([[20.0, 0.0]]), 100.0)[0]
        assert near > far > 0.0


class TestHotspotField:
    def test_background_plus_hotspots(self):
        field = HotspotField(
            background=20.0,
            hotspots=[Hotspot(center=(0.0, 0.0), amplitude=10.0, sigma_m=1.0, growth_rate=100.0)],
        )
        assert field.value_at(np.array([0.0, 0.0]), 10.0) == pytest.approx(30.0, rel=1e-3)
        assert field.value_at(np.array([100.0, 100.0]), 10.0) == pytest.approx(20.0)

    def test_hotspots_superpose(self):
        h = Hotspot(center=(0.0, 0.0), amplitude=10.0, sigma_m=1.0, growth_rate=100.0)
        one = HotspotField(0.0, [h]).value_at(np.array([0.0, 0.0]), 10.0)
        two = HotspotField(0.0, [h, h]).value_at(np.array([0.0, 0.0]), 10.0)
        assert two == pytest.approx(2 * one)


class TestFireField:
    def test_ambient_far_from_seats_at_t0(self):
        f = FireField(100.0, np.random.default_rng(0), n_seats=1)
        assert f.value_at(np.array([0.0, 0.0]), 0.0) == pytest.approx(20.0, abs=5.0)

    def test_heats_up_over_time(self):
        f = FireField(100.0, np.random.default_rng(0), n_seats=2)
        pts = np.array([[50.0, 50.0]])
        early = f.sample_at(pts, 1.0)[0]
        late = f.sample_at(pts, 300.0)[0]
        assert late > early

    def test_max_bounded_by_seats(self):
        f = FireField(100.0, np.random.default_rng(0), n_seats=2, peak_c=800.0)
        pts = np.random.default_rng(1).uniform(0, 100, size=(500, 2))
        vals = f.sample_at(pts, 1000.0)
        assert vals.max() <= 20.0 + 2 * 800.0 + 1e-6

    def test_reproducible_from_seed(self):
        a = FireField(100.0, np.random.default_rng(7))
        b = FireField(100.0, np.random.default_rng(7))
        pts = np.array([[30.0, 40.0], [60.0, 20.0]])
        assert np.allclose(a.sample_at(pts, 50.0), b.sample_at(pts, 50.0))

    def test_needs_a_seat(self):
        with pytest.raises(ValueError):
            FireField(100.0, np.random.default_rng(0), n_seats=0)

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=100), st.floats(min_value=0.0, max_value=1e4))
    def test_never_below_ambient(self, seed, t):
        f = FireField(100.0, np.random.default_rng(seed), n_seats=3)
        pts = np.random.default_rng(seed + 1).uniform(0, 100, size=(50, 2))
        assert (f.sample_at(pts, t) >= 20.0 - 1e-9).all()


class TestPlumeField:
    def test_peak_at_source_initially(self):
        p = PlumeField(source=(50.0, 50.0))
        pts = np.array([[50.0, 50.0], [80.0, 50.0]])
        vals = p.sample_at(pts, 0.0)
        assert vals[0] > vals[1]

    def test_plume_advects_with_wind(self):
        p = PlumeField(source=(0.0, 0.0), wind_m_s=(1.0, 0.0), half_life_s=1e9, spread_m_s=0.0)
        downwind = np.array([[100.0, 0.0]])
        assert p.sample_at(downwind, 100.0)[0] > p.sample_at(downwind, 0.0)[0]

    def test_mass_decays(self):
        p = PlumeField(source=(0.0, 0.0), wind_m_s=(0.0, 0.0), spread_m_s=0.0, half_life_s=100.0)
        pt = np.array([[0.0, 0.0]])
        assert p.sample_at(pt, 100.0)[0] == pytest.approx(0.5 * p.sample_at(pt, 0.0)[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            PlumeField(source=(0.0, 0.0), sigma0_m=0.0)
        with pytest.raises(ValueError):
            PlumeField(source=(0.0, 0.0), half_life_s=0.0)

    def test_nonnegative_everywhere(self):
        p = PlumeField(source=(10.0, 10.0))
        pts = np.random.default_rng(0).uniform(-100, 100, size=(200, 2))
        assert (p.sample_at(pts, 37.0) >= 0.0).all()
