"""Tests for sensor stream publish/subscribe agents."""

import pytest

from repro.agents import AgentPlatform
from repro.sensors import SensorDeployment, UniformField
from repro.sensors.streaming import SensorStreamAgent, StreamCollectorAgent
from repro.simkernel import RandomStreams, Simulator


def make_world(n=4, battery_j=1.0):
    sim = Simulator()
    dep = SensorDeployment(n, 10.0, UniformField(20.0), sim=sim,
                           streams=RandomStreams(2), battery_j=battery_j,
                           noise_std=0.0)
    platform = AgentPlatform(sim)
    return sim, dep, platform


class TestStreaming:
    def test_subscription_delivers_readings(self):
        sim, dep, platform = make_world()
        stream = SensorStreamAgent("s0", dep, sensor_id=0)
        platform.register(stream)
        collector = StreamCollectorAgent("collector", batch_size=5)
        platform.register(collector)
        collector.subscribe_to("s0", period_s=1.0)
        sim.run(until=10.5)
        assert len(collector.readings) >= 9
        assert all(r.sensor_id == 0 for r in collector.readings)
        assert all(r.value == pytest.approx(20.0) for r in collector.readings)

    def test_batch_callback_fires(self):
        sim, dep, platform = make_world()
        batches = []
        stream = SensorStreamAgent("s0", dep, sensor_id=0)
        platform.register(stream)
        collector = StreamCollectorAgent("c", batch_size=4, on_batch=batches.append)
        platform.register(collector)
        collector.subscribe_to("s0", period_s=1.0)
        sim.run(until=9.0)
        assert len(batches) == 2
        assert all(len(b) == 4 for b in batches)

    def test_unsubscribe_stops_publication(self):
        sim, dep, platform = make_world()
        stream = SensorStreamAgent("s0", dep, sensor_id=0)
        platform.register(stream)
        collector = StreamCollectorAgent("c")
        platform.register(collector)
        collector.subscribe_to("s0", period_s=1.0)
        sim.run(until=5.2)
        count_at_unsub = len(collector.readings)
        collector.unsubscribe_from("s0")
        sim.run(until=20.0)
        assert len(collector.readings) <= count_at_unsub + 1

    def test_period_floor_enforced(self):
        sim, dep, platform = make_world()
        stream = SensorStreamAgent("s0", dep, sensor_id=0, min_period_s=2.0)
        platform.register(stream)
        collector = StreamCollectorAgent("c")
        platform.register(collector)
        collector.subscribe_to("s0", period_s=0.01)  # too eager
        sim.run(until=10.1)
        assert len(collector.readings) <= 6

    def test_publication_stops_when_sensor_dies(self):
        sim, dep, platform = make_world(battery_j=3e-7)  # a few samples' worth
        stream = SensorStreamAgent("s0", dep, sensor_id=0)
        platform.register(stream)
        collector = StreamCollectorAgent("c")
        platform.register(collector)
        collector.subscribe_to("s0", period_s=1.0)
        sim.run(until=100.0)
        assert 0 < len(collector.readings) < 20
        assert not dep.sensors[0].alive

    def test_multiple_subscribers_independent_periods(self):
        sim, dep, platform = make_world()
        stream = SensorStreamAgent("s0", dep, sensor_id=0)
        platform.register(stream)
        fast = StreamCollectorAgent("fast")
        slow = StreamCollectorAgent("slow")
        platform.register(fast)
        platform.register(slow)
        fast.subscribe_to("s0", period_s=1.0)
        slow.subscribe_to("s0", period_s=5.0)
        sim.run(until=20.5)
        assert len(fast.readings) > 3 * len(slow.readings)

    def test_sampling_pays_energy(self):
        sim, dep, platform = make_world()
        stream = SensorStreamAgent("s0", dep, sensor_id=0)
        platform.register(stream)
        collector = StreamCollectorAgent("c")
        platform.register(collector)
        collector.subscribe_to("s0", period_s=1.0)
        sim.run(until=10.0)
        assert dep.sensors[0].battery.consumed > 0

    def test_validation(self):
        sim, dep, platform = make_world()
        with pytest.raises(ValueError):
            SensorStreamAgent("s", dep, 0, min_period_s=0.0)
        with pytest.raises(ValueError):
            StreamCollectorAgent("c", batch_size=0)

    def test_non_reading_informs_ignored(self):
        sim, dep, platform = make_world()
        collector = StreamCollectorAgent("c")
        platform.register(collector)
        from repro.agents import Agent, Performative

        other = Agent("o")
        platform.register(other)
        other.ask("c", Performative.INFORM, {"kind": "noise"})
        other.ask("c", Performative.INFORM, "text")
        sim.run()
        assert collector.readings == []
