"""Vectorized sample_all: bit-identity with the per-sensor scalar path."""

import numpy as np
import pytest

from repro.sensors.deployment import SensorDeployment
from repro.sensors.field import FireField, UniformField
from repro.simkernel import RandomStreams


def legacy_sample_all(dep, t=None):
    """The historical scalar path, kept as the reference oracle."""
    time = dep.sim.now if t is None else t
    readings = []
    for sensor in dep.sensors:
        if dep.topology.is_alive(sensor.node_id):
            reading = sensor.sample(dep.field, time)
            if reading is not None:
                readings.append(reading)
            if sensor.battery.depleted:
                dep.topology.kill(sensor.node_id)
    return readings


def make_deployment(seed, **kw):
    streams = RandomStreams(seed)
    field = FireField(100.0, streams.get("fire"))
    defaults = dict(battery_j=2e-4, noise_std=0.4)
    defaults.update(kw)
    return SensorDeployment(25, 100.0, field, streams=streams, **defaults)


def as_tuples(readings):
    return [(r.sensor_id, r.time, r.value, r.attribute) for r in readings]


class TestVectorizedSampling:
    @pytest.mark.parametrize("seed", range(3))
    def test_bit_identical_to_scalar_path(self, seed):
        """Same readings, same RNG stream, same deaths, over a run long
        enough that batteries deplete along the way."""
        fast = make_deployment(seed)
        slow = make_deployment(seed)
        for step in range(15):
            a = fast.sample_all(float(step))
            b = legacy_sample_all(slow, float(step))
            assert as_tuples(a) == as_tuples(b)
            assert fast.alive_sensor_ids() == slow.alive_sensor_ids()
        assert fast.total_sensor_energy_consumed() == \
            slow.total_sensor_energy_consumed()
        assert [s.samples_taken for s in fast.sensors] == \
            [s.samples_taken for s in slow.sensors]

    def test_zero_noise_does_not_touch_stream(self):
        """noise_std=0 must draw nothing (the scalar path skipped the
        draw), so later consumers of the stream see identical values."""
        dep = make_deployment(1, noise_std=0.0)
        rng = dep.sensors[0].rng
        state_before = rng.bit_generator.state["state"]["state"]
        dep.sample_all(0.0)
        assert rng.bit_generator.state["state"]["state"] == state_before

    def test_readings_are_noise_free_when_std_zero(self):
        dep = make_deployment(2, noise_std=0.0)
        readings = dep.sample_all(0.0)
        truth = dep.true_values(0.0)
        assert [r.value for r in readings] == [float(v) for v in truth]

    def test_heterogeneous_fleet_falls_back(self):
        """A sensor with its own noise profile forces the scalar path;
        results still come back for every living sensor."""
        dep = make_deployment(3)
        dep.sensors[4].noise_std = 1.5  # de-homogenize
        readings = dep.sample_all(0.0)
        assert len(readings) == 25
        assert sorted(r.sensor_id for r in readings) == list(range(25))

    def test_dead_sensors_skipped_and_killed_in_topology(self):
        dep = make_deployment(4, battery_j=1e-12)  # dies on first sample
        first = dep.sample_all(0.0)
        assert len(first) == 25  # the depleting sample still returns
        second = dep.sample_all(1.0)
        assert second == []
        assert dep.alive_sensor_ids() == []
        assert dep.dead_sensor_count() == 25

    def test_uniform_field_values(self):
        streams = RandomStreams(0)
        dep = SensorDeployment(9, 30.0, UniformField(21.5), streams=streams,
                               noise_std=0.0)
        readings = dep.sample_all(0.0)
        assert [r.value for r in readings] == [21.5] * 9
