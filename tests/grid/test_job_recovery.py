"""Tests for job failure, checkpointed re-submission, and uplink outages."""

import math

import numpy as np
import pytest

from repro.grid.infrastructure import GridInfrastructure
from repro.grid.job import ComputeJob
from repro.grid.resource import GridResource
from repro.grid.scheduler import GridScheduler
from repro.grid.uplink import Uplink
from repro.simkernel import Simulator


class TestFailingResource:
    def test_failure_reports_and_checkpoints(self):
        sim = Simulator()
        site = GridResource(sim, "flaky", 1e6, fail_prob=0.999,
                            rng=np.random.default_rng(0))
        job = ComputeJob(ops=1e6)
        results = []
        site.submit(job, results.append)
        sim.run()
        (r,) = results
        assert not r.success
        assert r.error == "site-failure"
        assert site.jobs_failed == 1 and site.jobs_completed == 0
        assert 0.0 < job.checkpoint_fraction < 1.0
        assert job.remaining_ops == pytest.approx(1e6 * (1 - job.checkpoint_fraction))

    def test_partial_service_occupies_site_partially(self):
        sim = Simulator()
        site = GridResource(sim, "flaky", 1e6, fail_prob=0.999,
                            rng=np.random.default_rng(0))
        job = ComputeJob(ops=1e6)
        site.submit(job)
        sim.run()
        assert 0.0 < site.busy_seconds < 1.0  # full job would be 1.0 s

    def test_fail_prob_requires_rng(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            GridResource(sim, "x", 1e6, fail_prob=0.5)

    def test_failed_attempt_always_advances_clock_or_checkpoint(self):
        """Regression: the progress draw must come from an open interval.

        ``rng.uniform(0.0, 1.0)`` can return exactly 0.0, which made a
        zero-duration, zero-checkpoint failure whose span had
        ``started == finished`` -- an attempt that consumed nothing and
        taught the checkpoint nothing.
        """

        class ZeroUniformRng:
            """Forces a failure whose pre-fix progress draw is exactly 0.0."""

            def random(self):
                return 0.0  # < fail_prob: the job fails

            def uniform(self, low, high):
                return 0.0  # the degenerate draw

        sim = Simulator()
        site = GridResource(sim, "flaky", 1e6, fail_prob=0.5,
                            rng=ZeroUniformRng())
        job = ComputeJob(ops=1e6)
        results = []
        site.submit(job, results.append)
        sim.run()
        (r,) = results
        assert not r.success
        assert r.finished_at > r.started_at or job.checkpoint_fraction > 0.0

    def test_failure_draws_span_open_interval(self):
        """Every failed attempt makes progress, across many real draws."""
        for seed in range(50):
            sim = Simulator()
            site = GridResource(sim, "flaky", 1e6, fail_prob=0.999,
                                rng=np.random.default_rng(seed))
            job = ComputeJob(ops=1e6)
            results = []
            site.submit(job, results.append)
            sim.run()
            (r,) = results
            assert not r.success
            assert r.finished_at > r.started_at
            assert job.checkpoint_fraction > 0.0

    def test_zero_fail_prob_behaves_as_before(self):
        sim = Simulator()
        site = GridResource(sim, "ok", 1e6)
        results = []
        site.submit(ComputeJob(ops=2e6), results.append)
        sim.run()
        assert results[0].success
        assert results[0].service_s == pytest.approx(2.0)


class TestCheckpointedResubmission:
    def make_grid(self, flaky_fail=0.999):
        sim = Simulator()
        # the flaky site is much faster, so MCT always picks it first
        flaky = GridResource(sim, "flaky", 1e9, fail_prob=flaky_fail,
                             rng=np.random.default_rng(1))
        steady = GridResource(sim, "steady", 1e6)
        return sim, flaky, steady, GridScheduler([flaky, steady])

    def test_resubmits_to_next_best_site(self):
        sim, flaky, steady, sched = self.make_grid()
        job = ComputeJob(ops=1e6)
        results = []
        first = sched.submit(job, results.append, max_attempts=2)
        sim.run()
        assert first is flaky
        (r,) = results
        assert r.success
        assert r.resource == "steady"
        assert sched.resubmissions == 1
        assert sched.dispatched == 1  # one logical job

    def test_checkpoint_shrinks_second_attempt(self):
        sim, flaky, steady, sched = self.make_grid()
        job = ComputeJob(ops=1e6)
        results = []
        sched.submit(job, results.append, max_attempts=2)
        sim.run()
        (r,) = results
        # the steady site only ran the remaining fraction: strictly less
        # than the 1.0 s a from-scratch run would take
        assert r.service_s < 1.0
        assert r.service_s == pytest.approx(job.remaining_ops / steady.ops_per_second)

    def test_attempts_exhausted_reports_failure(self):
        sim = Simulator()
        sites = [
            GridResource(sim, f"f{i}", 1e9, fail_prob=0.999, rng=np.random.default_rng(i))
            for i in range(2)
        ]
        sched = GridScheduler(sites)
        results = []
        sched.submit(ComputeJob(ops=1e6), results.append, max_attempts=2)
        sim.run()
        (r,) = results
        assert not r.success
        assert r.error == "site-failure"

    def test_single_attempt_passes_failure_through(self):
        sim, flaky, steady, sched = self.make_grid()
        results = []
        sched.submit(ComputeJob(ops=1e6), results.append)  # max_attempts=1
        sim.run()
        assert not results[0].success
        assert sched.resubmissions == 0

    def test_exclusion_resets_after_every_site_failed(self):
        """max_attempts > n_sites: once every site has failed the job,
        the exclusion resets and later attempts dispatch again (a site
        that failed once is better than no site)."""
        from repro.observability.tracer import Tracer

        sim = Simulator()
        sites = [
            GridResource(sim, f"f{i}", 1e9, fail_prob=0.999,
                         rng=np.random.default_rng(i))
            for i in range(2)
        ]
        sched = GridScheduler(sites)
        sched.tracer = Tracer(sim)
        results = []
        sched.submit(ComputeJob(ops=1e6), results.append, max_attempts=5)
        sim.run()
        (r,) = results
        assert not r.success
        assert sched.resubmissions == 4
        dispatches = [rec for rec in sched.tracer.records
                      if rec.name == "grid.dispatch"]
        assert [d.attrs["attempt"] for d in dispatches] == [1, 2, 3, 4, 5]
        # the first two attempts exhaust the distinct sites; attempts
        # 3..5 only happen because the exclusion reset re-opened the pool
        assert {d.attrs["site"] for d in dispatches[:2]} == {"f0", "f1"}
        assert all(d.attrs["site"] in {"f0", "f1"} for d in dispatches[2:])

    def test_best_resource_accepts_any_abstract_set(self):
        """``exclude`` takes frozenset (the default), set, or dict keys."""
        sim = Simulator()
        a = GridResource(sim, "a", 1e9)
        b = GridResource(sim, "b", 1e6)
        sched = GridScheduler([a, b])
        job = ComputeJob(ops=1e6)
        assert sched.best_resource(job) is a
        assert sched.best_resource(job, exclude=frozenset({"a"})) is b
        assert sched.best_resource(job, exclude={"a"}) is b
        assert sched.best_resource(job, exclude={"a": 1}.keys()) is b
        # excluding everything re-opens the full pool
        assert sched.best_resource(job, exclude={"a", "b"}) is a


class TestUplinkAvailability:
    def test_estimate_completion_offline_is_inf(self):
        sim = Simulator()
        uplink = Uplink(sim)
        assert math.isfinite(uplink.estimate_completion(1e6))
        uplink.online = False
        assert uplink.estimate_completion(1e6) == math.inf
        assert uplink.estimate_completion(0.0) == math.inf

    def test_subscribers_observe_both_edges(self):
        sim = Simulator()
        uplink = Uplink(sim)
        edges = []
        callback = edges.append
        uplink.subscribe(callback)
        uplink.set_online(False)
        uplink.set_online(False)  # idempotent: no duplicate edge
        uplink.set_online(True)
        assert edges == [False, True]
        assert uplink.outages == 1
        uplink.unsubscribe(callback)
        uplink.set_online(False)
        assert edges == [False, True]  # unsubscribed: no further edges
        uplink.unsubscribe(callback)  # second removal is a no-op

    def test_offline_transfer_queues_and_drains(self):
        sim = Simulator()
        uplink = Uplink(sim, queue_when_offline=True)
        done = []
        uplink.set_online(False)
        assert uplink.transfer(1e6, lambda: done.append(sim.now)) == math.inf
        sim.schedule(5.0, lambda: uplink.set_online(True))
        sim.run()
        assert uplink.transfers == 1
        assert done and done[0] >= 5.0

    def test_when_online_defers_until_recovery(self):
        sim = Simulator()
        uplink = Uplink(sim)
        calls = []
        uplink.when_online(lambda: calls.append("now"))
        assert calls == ["now"]
        uplink.set_online(False)
        uplink.when_online(lambda: calls.append("later"))
        assert calls == ["now"]
        uplink.set_online(True)
        assert calls == ["now", "later"]


class TestOffloadFailurePaths:
    def test_estimate_offload_time_inf_when_offline(self):
        sim = Simulator()
        grid = GridInfrastructure(sim)
        job = ComputeJob(ops=1e6, input_bits=1e4, output_bits=1e3)
        assert math.isfinite(grid.estimate_offload_time(job))
        grid.uplink.online = False
        assert grid.estimate_offload_time(job) == math.inf

    def test_offload_offline_invokes_on_failure(self):
        sim = Simulator()
        grid = GridInfrastructure(sim)
        grid.uplink.online = False
        failures = []
        grid.offload(ComputeJob(ops=1e6), on_failure=failures.append)
        sim.run()
        assert failures == ["uplink-offline"]

    def test_offload_offline_without_handler_raises(self):
        sim = Simulator()
        grid = GridInfrastructure(sim)
        grid.uplink.online = False
        with pytest.raises(RuntimeError):
            grid.offload(ComputeJob(ops=1e6))

    def test_outage_during_compute_fails_download_leg(self):
        sim = Simulator()
        grid = GridInfrastructure(sim, site_rates=(1e3,))  # slow: 1000 s compute
        completions, failures = [], []
        grid.offload(ComputeJob(ops=1e6, input_bits=1e3, output_bits=1e3),
                     completions.append, failures.append)
        sim.schedule(10.0, lambda: grid.uplink.set_online(False))
        sim.run()
        assert completions == []
        assert failures == ["uplink-offline"]

    def test_offload_with_resubmission_succeeds(self):
        sim = Simulator()
        grid = GridInfrastructure(sim)
        grid.resources[1].fail_prob = 0.999  # the fast site MCT prefers
        grid.resources[1].rng = np.random.default_rng(3)
        results = []
        grid.offload(ComputeJob(ops=1e6, input_bits=1e3, output_bits=1e3),
                     results.append, max_attempts=2)
        sim.run()
        (r,) = results
        assert r.success
        assert r.resource == "site0"
