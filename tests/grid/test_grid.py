"""Unit tests for the wired-grid substrate."""

import pytest

from repro.grid import ComputeJob, GridInfrastructure, GridResource, GridScheduler, Uplink
from repro.simkernel import Simulator


class TestComputeJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeJob(ops=-1.0)
        with pytest.raises(ValueError):
            ComputeJob(ops=1.0, input_bits=-1.0)

    def test_unique_ids(self):
        assert ComputeJob(ops=1.0).job_id != ComputeJob(ops=1.0).job_id


class TestGridResource:
    def test_service_time(self):
        sim = Simulator()
        r = GridResource(sim, "s", ops_per_second=100.0)
        assert r.service_time(ComputeJob(ops=250.0)) == pytest.approx(2.5)

    def test_job_completes_at_predicted_time(self):
        sim = Simulator()
        r = GridResource(sim, "s", 100.0)
        results = []
        finish = r.submit(ComputeJob(ops=500.0), results.append)
        sim.run()
        assert finish == pytest.approx(5.0)
        assert results[0].finished_at == pytest.approx(5.0)
        assert results[0].queue_wait_s == 0.0
        assert results[0].service_s == pytest.approx(5.0)

    def test_fifo_queueing(self):
        sim = Simulator()
        r = GridResource(sim, "s", 100.0)
        results = []
        r.submit(ComputeJob(ops=100.0), results.append)
        r.submit(ComputeJob(ops=100.0), results.append)
        sim.run()
        assert results[0].finished_at == pytest.approx(1.0)
        assert results[1].started_at == pytest.approx(1.0)
        assert results[1].finished_at == pytest.approx(2.0)
        assert results[1].queue_wait_s == pytest.approx(1.0)

    def test_estimate_turnaround_includes_backlog(self):
        sim = Simulator()
        r = GridResource(sim, "s", 100.0)
        r.submit(ComputeJob(ops=100.0))
        assert r.estimate_turnaround(ComputeJob(ops=100.0)) == pytest.approx(2.0)

    def test_compute_callable_runs(self):
        sim = Simulator()
        r = GridResource(sim, "s", 100.0)
        results = []
        r.submit(ComputeJob(ops=1.0, compute=lambda: 6 * 7), results.append)
        sim.run()
        assert results[0].value == 42

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            GridResource(Simulator(), "s", 0.0)

    def test_utilization(self):
        sim = Simulator()
        r = GridResource(sim, "s", 100.0)
        r.submit(ComputeJob(ops=500.0))
        sim.run()
        assert r.utilization(10.0) == pytest.approx(0.5)
        assert r.utilization(0.0) == 0.0


class TestGridScheduler:
    def test_picks_fastest_when_idle(self):
        sim = Simulator()
        slow = GridResource(sim, "slow", 10.0)
        fast = GridResource(sim, "fast", 1000.0)
        sched = GridScheduler([slow, fast])
        assert sched.best_resource(ComputeJob(ops=100.0)) is fast

    def test_load_balances_to_idle_site(self):
        sim = Simulator()
        fast = GridResource(sim, "fast", 1000.0)
        slow = GridResource(sim, "slow", 900.0)
        sched = GridScheduler([fast, slow])
        # saturate the fast site
        fast.submit(ComputeJob(ops=100_000.0))
        assert sched.best_resource(ComputeJob(ops=100.0)) is slow

    def test_submit_dispatches_and_counts(self):
        sim = Simulator()
        sched = GridScheduler([GridResource(sim, "a", 100.0)])
        results = []
        sched.submit(ComputeJob(ops=100.0), results.append)
        sim.run()
        assert results[0].resource == "a"
        assert sched.dispatched == 1

    def test_needs_resources(self):
        with pytest.raises(ValueError):
            GridScheduler([])


class TestUplink:
    def test_transfer_time(self):
        sim = Simulator()
        link = Uplink(sim, bandwidth_bps=1000.0, latency_s=0.5)
        assert link.transfer_time(2000.0) == pytest.approx(2.5)

    def test_transfers_serialize(self):
        sim = Simulator()
        link = Uplink(sim, bandwidth_bps=1000.0, latency_s=0.0)
        t1 = link.transfer(1000.0)
        t2 = link.transfer(1000.0)
        assert t1 == pytest.approx(1.0)
        assert t2 == pytest.approx(2.0)

    def test_callback_at_completion(self):
        sim = Simulator()
        link = Uplink(sim, bandwidth_bps=1000.0, latency_s=0.0)
        times = []
        link.transfer(1000.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.0)]

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Uplink(sim, bandwidth_bps=0.0)
        with pytest.raises(ValueError):
            Uplink(sim, latency_s=-1.0)
        with pytest.raises(ValueError):
            Uplink(sim).transfer_time(-1.0)

    def test_accounting(self):
        sim = Simulator()
        link = Uplink(sim)
        link.transfer(100.0)
        link.transfer(200.0)
        assert link.bits_transferred == 300.0
        assert link.transfers == 2


class TestGridInfrastructure:
    def test_offload_pipeline_timing(self):
        sim = Simulator()
        grid = GridInfrastructure(sim, site_rates=(100.0,), uplink=Uplink(sim, 1000.0, 0.0))
        results = []
        job = ComputeJob(ops=100.0, input_bits=1000.0, output_bits=500.0, compute=lambda: "ok")
        grid.offload(job, results.append)
        sim.run()
        # upload 1s + compute 1s + download 0.5s
        assert results[0].finished_at == pytest.approx(2.5)
        assert results[0].value == "ok"

    def test_estimate_matches_actual_unloaded(self):
        sim = Simulator()
        grid = GridInfrastructure(sim, site_rates=(100.0,), uplink=Uplink(sim, 1000.0, 0.0))
        job = ComputeJob(ops=100.0, input_bits=1000.0, output_bits=500.0)
        est = grid.estimate_offload_time(job)
        results = []
        grid.offload(job, results.append)
        sim.run()
        assert results[0].finished_at == pytest.approx(est)

    def test_fastest_rate(self):
        grid = GridInfrastructure(Simulator(), site_rates=(1e9, 1e12))
        assert grid.fastest_rate() == 1e12
