"""Smoke tests for the public API surface."""

import pytest


class TestRootPackage:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None

    def test_quickstart_snippet(self):
        """The README's four-line quick start must keep working."""
        from repro import PervasiveGridRuntime

        rt = PervasiveGridRuntime(n_sensors=9, area_m=20.0, seed=42,
                                  grid_resolution=12)
        out = rt.query("SELECT AVG(value) FROM sensors WHERE room = 2")
        assert out[0].success


class TestSubpackageExports:
    @pytest.mark.parametrize("module", [
        "repro.simkernel",
        "repro.network",
        "repro.network.routing",
        "repro.sensors",
        "repro.grid",
        "repro.agents",
        "repro.discovery",
        "repro.discovery.protocols",
        "repro.composition",
        "repro.faults",
        "repro.resilience",
        "repro.pde",
        "repro.datamining",
        "repro.queries",
        "repro.queries.models",
        "repro.core",
        "repro.workloads",
        "repro.wms",
    ])
    def test_all_names_resolve(self, module):
        import importlib

        mod = importlib.import_module(module)
        exported = getattr(mod, "__all__", [])
        assert exported, f"{module} exports nothing"
        for name in exported:
            assert getattr(mod, name, None) is not None, f"{module}.{name} missing"

    def test_every_public_item_documented(self):
        """Every exported class/function carries a docstring."""
        import importlib
        import inspect

        undocumented = []
        for module in [
            "repro.simkernel", "repro.network", "repro.sensors", "repro.grid",
            "repro.agents", "repro.discovery", "repro.composition", "repro.pde",
            "repro.faults", "repro.resilience",
            "repro.datamining", "repro.queries", "repro.core", "repro.workloads",
            "repro.wms",
        ]:
            mod = importlib.import_module(module)
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ or "").strip():
                        undocumented.append(f"{module}.{name}")
        assert undocumented == []


class TestBrokerFederationAPI:
    def test_home_of_resolves_by_assignment(self):
        from repro.discovery import (
            DistributedBrokerNetwork,
            SemanticMatcher,
            ServiceRegistry,
            build_service_ontology,
        )

        matcher = SemanticMatcher(build_service_ontology())
        regs = [ServiceRegistry(matcher, name=f"b{i}") for i in range(3)]
        net = DistributedBrokerNetwork(regs)
        # assignment: host nodes hash onto brokers; wired side -> b0
        assign = lambda host: f"b{host % 3}" if host is not None else "b0"
        assert net.home_of(7, assign).name == "b1"
        assert net.home_of(None, assign).name == "b0"
