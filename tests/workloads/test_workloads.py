"""Tests for query workloads, service populations and scenarios."""

import numpy as np
import pytest

from repro.queries import QueryClass, classify
from repro.workloads import (
    QueryWorkload,
    ServicePopulation,
    defense_scenario,
    fire_scenario,
    health_scenario,
)


class TestQueryWorkload:
    def make(self, seed=0, **kw):
        return QueryWorkload(np.random.default_rng(seed), **kw)

    def test_all_generated_queries_parse(self):
        wl = self.make()
        queries = wl.batch(100)
        assert len(queries) == 100
        assert wl.generated == 100

    def test_mix_respected_roughly(self):
        wl = self.make(mix=(1.0, 0.0, 0.0, 0.0))
        classes = {classify(q) for q in wl.batch(30)}
        assert classes == {QueryClass.SIMPLE}
        wl2 = self.make(mix=(0.0, 0.0, 1.0, 0.0))
        assert {classify(q) for q in wl2.batch(30)} == {QueryClass.COMPLEX}
        wl3 = self.make(mix=(0.0, 0.0, 0.0, 1.0))
        assert {classify(q) for q in wl3.batch(30)} == {QueryClass.CONTINUOUS}

    def test_cost_clause_frequency(self):
        wl = self.make(cost_prob=1.0, mix=(0.0, 1.0, 0.0, 0.0))
        assert all(q.cost is not None for q in wl.batch(20))
        wl0 = self.make(cost_prob=0.0, mix=(0.0, 1.0, 0.0, 0.0))
        assert all(q.cost is None for q in wl0.batch(20))

    def test_reproducible(self):
        a = [q.raw for q in self.make(seed=3).batch(20)]
        b = [q.raw for q in self.make(seed=3).batch(20)]
        assert a == b

    def test_sensor_ids_in_range(self):
        wl = self.make(mix=(1.0, 0, 0, 0), n_sensors=10)
        for q in wl.batch(30):
            assert 0 <= q.where[0].value < 10

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            QueryWorkload(rng, n_sensors=0)
        with pytest.raises(ValueError):
            QueryWorkload(rng, mix=(0, 0, 0, 0))
        with pytest.raises(ValueError):
            QueryWorkload(rng, cost_prob=2.0)
        with pytest.raises(ValueError):
            self.make().batch(0)


class TestServicePopulation:
    def test_generate_valid_descriptions(self):
        pop = ServicePopulation(np.random.default_rng(0))
        services = pop.generate(50)
        assert len(services) == 50
        names = [s.description.name for s in services]
        assert len(set(names)) == 50  # unique names
        for s in services:
            assert s.description.interfaces == (s.category,)
            assert "class_uuid" in s.description.attributes

    def test_fixed_category(self):
        pop = ServicePopulation(np.random.default_rng(0))
        s = pop.generate_one("ColorPrinterService")
        assert s.category == "ColorPrinterService"
        assert s.description.attributes["color"] is True

    def test_printers_have_printer_attributes(self):
        pop = ServicePopulation(np.random.default_rng(1))
        printers = [s for s in pop.generate(100) if "Printer" in s.category]
        assert printers
        for p in printers:
            assert "cost_per_page" in p.description.attributes
            assert "queue_length" in p.description.attributes

    def test_class_uuid_shared_within_category(self):
        pop = ServicePopulation(np.random.default_rng(2))
        a = pop.generate_one("PrinterService")
        b = pop.generate_one("PrinterService")
        assert (a.description.attributes["class_uuid"]
                == b.description.attributes["class_uuid"]
                == ServicePopulation.class_uuid("PrinterService"))

    def test_host_node_assignment(self):
        pop = ServicePopulation(np.random.default_rng(3), host_nodes=[5, 6])
        services = pop.generate(20)
        assert all(s.description.host_node in (5, 6) for s in services)

    def test_reproducible(self):
        a = [s.description.name for s in ServicePopulation(np.random.default_rng(4)).generate(10)]
        b = [s.description.name for s in ServicePopulation(np.random.default_rng(4)).generate(10)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            ServicePopulation(np.random.default_rng(0)).generate(0)


class TestScenarios:
    def test_fire_scenario_answers_queries(self):
        rt = fire_scenario(n_sensors=16, area_m=30.0, seed=1, grid_resolution=16)
        rt.sim.run(until=120.0)  # let the fire grow
        out = rt.query("SELECT MAX(value) FROM sensors")
        assert out[0].success
        assert out[0].value > 30.0  # hotter than ambient somewhere

    def test_health_scenario_plume_visible(self):
        rt = health_scenario(n_sensors=16, seed=2, grid_resolution=16)
        out = rt.query("SELECT MAX(value) FROM sensors")
        assert out[0].success
        assert out[0].value > 0.0

    def test_defense_scenario_random_placement(self):
        rt = defense_scenario(n_sensors=25, seed=3, grid_resolution=16)
        pos = rt.deployment.topology.positions[:25]
        # random placement: not a lattice
        assert len(np.unique(pos[:, 0])) > 5
        out = rt.query("SELECT COUNT(value) FROM sensors")
        assert out[0].success

    def test_scenarios_reproducible(self):
        a = fire_scenario(n_sensors=9, seed=7).deployment.field.hotspots[0].center
        b = fire_scenario(n_sensors=9, seed=7).deployment.field.hotspots[0].center
        assert a == b

    def test_intrusion_scenario_detects_outbreak(self):
        from repro.workloads import intrusion_scenario

        rt = intrusion_scenario(n_sensors=16, seed=4, grid_resolution=16)
        baseline = rt.query("SELECT MAX(value) FROM sensors")[0].value
        rt.sim.run(until=600.0)  # all attacks have flared by now
        outbreak = rt.query("SELECT MAX(value) FROM sensors")[0].value
        assert baseline < 10.0
        assert outbreak > 20.0

    def test_intrusion_scenario_reproducible(self):
        from repro.workloads import intrusion_scenario

        a = intrusion_scenario(n_sensors=9, seed=6).deployment.field.hotspots[0].t0
        b = intrusion_scenario(n_sensors=9, seed=6).deployment.field.hotspots[0].t0
        assert a == b
