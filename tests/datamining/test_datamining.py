"""Unit tests for streams, trees, Fourier spectra and ensembles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datamining import (
    DecisionTree,
    FourierFunction,
    LabeledStream,
    MajorityVote,
    accuracy,
    average_spectra,
    combine_via_fourier,
    partition_stream,
    spectrum_of,
    truncate_spectrum,
    walsh_hadamard,
)
from repro.datamining.fourier import all_inputs


class TestStream:
    def test_batch_shapes_and_types(self):
        s = LabeledStream(8, np.random.default_rng(0))
        X, y = s.batch(100)
        assert X.shape == (100, 8) and y.shape == (100,)
        assert set(np.unique(X)) <= {0, 1}
        assert set(np.unique(y)) <= {0, 1}

    def test_noiseless_labels_match_concept(self):
        s = LabeledStream(6, np.random.default_rng(1), noise=0.0)
        X, y = s.batch(200)
        assert np.array_equal(y, s.true_label(X))

    def test_noise_flips_some_labels(self):
        s = LabeledStream(6, np.random.default_rng(2), noise=0.3)
        X, y = s.batch(500)
        assert np.mean(y != s.true_label(X)) > 0.15

    def test_drift_changes_concept(self):
        s = LabeledStream(8, np.random.default_rng(3), noise=0.0, drift_at=100)
        X1, _ = s.batch(100)
        before = s.true_label(X1)
        s.batch(50)  # crosses the drift point
        after = s.true_label(X1)
        assert not np.array_equal(before, after)

    def test_reproducible(self):
        a = LabeledStream(6, np.random.default_rng(7)).batch(50)
        b = LabeledStream(6, np.random.default_rng(7)).batch(50)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            LabeledStream(0, rng)
        with pytest.raises(ValueError):
            LabeledStream(5, rng, noise=0.5)
        with pytest.raises(ValueError):
            LabeledStream(3, rng, term_size=5)
        with pytest.raises(ValueError):
            LabeledStream(5, rng).batch(0)

    def test_partition_stream(self):
        X = np.arange(20).reshape(10, 2)
        y = np.arange(10)
        parts = partition_stream(X, y, 3)
        assert len(parts) == 3
        assert sum(len(p[0]) for p in parts) == 10
        with pytest.raises(ValueError):
            partition_stream(X, y, 0)
        with pytest.raises(ValueError):
            partition_stream(X[:2], y[:2], 5)


class TestDecisionTree:
    def test_learns_single_feature(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(200, 5), dtype=np.uint8)
        y = X[:, 2]
        tree = DecisionTree(max_depth=2).fit(X, y)
        assert accuracy(tree.predict, X, y) == 1.0
        assert tree.depth() <= 2

    def test_learns_xor_with_depth_2(self):
        X = all_inputs(2)
        y = X[:, 0] ^ X[:, 1]
        X_rep = np.tile(X, (50, 1))
        y_rep = np.tile(y, 50)
        tree = DecisionTree(max_depth=2, min_samples=1).fit(X_rep, y_rep)
        assert accuracy(tree.predict, X, y) == 1.0

    def test_depth_zero_majority(self):
        X = np.zeros((10, 3), dtype=np.uint8)
        y = np.array([1] * 7 + [0] * 3, dtype=np.uint8)
        tree = DecisionTree(max_depth=0).fit(X, y)
        assert np.all(tree.predict(X) == 1)

    def test_beats_chance_on_dnf(self):
        s = LabeledStream(8, np.random.default_rng(5), noise=0.0)
        X, y = s.batch(2000)
        tree = DecisionTree(max_depth=5).fit(X, y)
        Xt, yt = s.batch(500)
        assert accuracy(tree.predict, Xt, yt) > 0.7

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((1, 2), dtype=np.uint8))
        with pytest.raises(RuntimeError):
            DecisionTree().depth()

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTree(max_depth=-1)
        with pytest.raises(ValueError):
            DecisionTree().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            DecisionTree().fit(np.zeros((3, 2)), np.zeros(4))


class TestWalshHadamard:
    def test_constant_function_single_coefficient(self):
        v = np.ones(8)
        w = walsh_hadamard(v)
        assert w[0] == pytest.approx(1.0)
        assert np.allclose(w[1:], 0.0)

    def test_parity_function_single_coefficient(self):
        # chi over all d bits: table value = (-1)^(popcount)
        X = all_inputs(3)
        table = np.where(X.sum(axis=1) % 2 == 0, 1.0, -1.0)
        w = walsh_hadamard(table)
        assert w[-1] == pytest.approx(1.0)  # S = {0,1,2} is index 0b111
        assert np.count_nonzero(np.abs(w) > 1e-12) == 1

    def test_involution(self):
        rng = np.random.default_rng(0)
        v = rng.choice([-1.0, 1.0], size=16)
        assert np.allclose(walsh_hadamard(walsh_hadamard(v) * 16), v)

    def test_parseval(self):
        rng = np.random.default_rng(1)
        v = rng.choice([-1.0, 1.0], size=32)
        w = walsh_hadamard(v)
        assert np.sum(w**2) == pytest.approx(1.0)  # boolean fn: energy 1

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            walsh_hadamard(np.ones(6))
        with pytest.raises(ValueError):
            walsh_hadamard(np.ones(0))

    @settings(max_examples=20)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=1000))
    def test_property_parseval(self, d, seed):
        rng = np.random.default_rng(seed)
        v = rng.choice([-1.0, 1.0], size=2**d)
        assert np.sum(walsh_hadamard(v) ** 2) == pytest.approx(1.0)


class TestSpectrumAndReconstruction:
    def test_roundtrip_exact(self):
        """spectrum -> FourierFunction reproduces the tree exactly."""
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(500, 6), dtype=np.uint8)
        y = (X[:, 0] & X[:, 1]) | X[:, 4]
        tree = DecisionTree(max_depth=4).fit(X, y)
        w = spectrum_of(tree.predict, 6)
        fn = FourierFunction(w, 6)
        domain = all_inputs(6)
        assert np.array_equal(fn.predict(domain), tree.predict(domain))

    def test_shallow_tree_spectrum_is_sparse(self):
        """Kargupta's observation: depth-k trees have low-order spectra."""
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, size=(500, 8), dtype=np.uint8)
        y = X[:, 3]
        tree = DecisionTree(max_depth=1).fit(X, y)
        w = spectrum_of(tree.predict, 8)
        assert np.count_nonzero(np.abs(w) > 1e-9) <= 2

    def test_truncate_keeps_largest(self):
        w = np.array([0.5, -0.8, 0.1, 0.0])
        t = truncate_spectrum(w, 2)
        assert np.count_nonzero(t) == 2
        assert t[1] == -0.8 and t[0] == 0.5

    def test_truncate_edge_cases(self):
        w = np.array([0.5, -0.8])
        assert np.array_equal(truncate_spectrum(w, 10), w)
        assert np.count_nonzero(truncate_spectrum(w, 0)) == 0
        with pytest.raises(ValueError):
            truncate_spectrum(w, -1)

    def test_fourier_function_validation(self):
        with pytest.raises(ValueError):
            FourierFunction(np.ones(5), 2)
        fn = FourierFunction(np.zeros(4), 2)
        with pytest.raises(ValueError):
            fn.predict(np.zeros((1, 3), dtype=np.uint8))

    def test_size_bits(self):
        fn = FourierFunction(np.array([0.5, 0.0, -0.1, 0.0]), 2)
        assert fn.nonzero_coefficients() == 2
        assert fn.size_bits() == 128.0


class TestEnsemble:
    def make_ensemble(self, d=8, k=3, n=600, seed=0):
        s = LabeledStream(d, np.random.default_rng(seed), noise=0.05)
        X, y = s.batch(n)
        parts = partition_stream(X, y, k)
        trees = [DecisionTree(max_depth=4).fit(Xp, yp) for Xp, yp in parts]
        Xt, yt = s.batch(400)
        return s, trees, (Xt, yt), d

    def test_average_spectra(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert np.allclose(average_spectra([a, b]), [0.5, 0.5])
        with pytest.raises(ValueError):
            average_spectra([])
        with pytest.raises(ValueError):
            average_spectra([a, np.zeros(3)])

    def test_combined_model_beats_chance(self):
        s, trees, (Xt, yt), d = self.make_ensemble()
        combined = combine_via_fourier([t.predict for t in trees], d, k_coefficients=32)
        assert accuracy(combined.predict, Xt, yt) > 0.6

    def test_combined_close_to_majority_vote(self):
        """Fourier combination approximates the vote with far fewer bits."""
        s, trees, (Xt, yt), d = self.make_ensemble()
        vote = MajorityVote([t.predict for t in trees])
        combined = combine_via_fourier([t.predict for t in trees], d, k_coefficients=64)
        agree = np.mean(vote.predict(Xt) == combined.predict(Xt))
        assert agree > 0.85

    def test_truncation_tradeoff_monotone_trend(self):
        """More coefficients => at least as good agreement with the vote."""
        s, trees, (Xt, yt), d = self.make_ensemble(seed=3)
        vote = MajorityVote([t.predict for t in trees]).predict(Xt)
        agreement = []
        for k in (4, 64, 256):
            fn = combine_via_fourier([t.predict for t in trees], d, k_coefficients=k)
            agreement.append(np.mean(fn.predict(Xt) == vote))
        assert agreement[-1] >= agreement[0]

    def test_majority_vote_basic(self):
        always0 = lambda X: np.zeros(len(X), dtype=np.uint8)
        always1 = lambda X: np.ones(len(X), dtype=np.uint8)
        X = np.zeros((5, 2), dtype=np.uint8)
        assert np.all(MajorityVote([always1, always1, always0]).predict(X) == 1)
        assert np.all(MajorityVote([always0, always0, always1]).predict(X) == 0)
        with pytest.raises(ValueError):
            MajorityVote([])

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            accuracy(lambda X: X, np.zeros((0, 2)), np.zeros(0))
