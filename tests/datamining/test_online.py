"""Tests for the drift-adaptive online Fourier ensemble."""

import numpy as np
import pytest

from repro.datamining import LabeledStream, accuracy
from repro.datamining.online import OnlineFourierEnsemble

D = 8


class TestOnlineEnsemble:
    def test_before_update_raises(self):
        ens = OnlineFourierEnsemble(D)
        with pytest.raises(RuntimeError):
            ens.current_model()

    def test_learns_static_concept(self):
        stream = LabeledStream(D, np.random.default_rng(0), noise=0.05)
        ens = OnlineFourierEnsemble(D, window=4)
        for _ in range(6):
            ens.update(*stream.batch(300))
        X, y = stream.batch(500)
        assert accuracy(ens.predict, X, y) > 0.8
        assert ens.members == 4  # window bound
        assert ens.batches_seen == 6

    def test_window_one_is_latest_tree(self):
        stream = LabeledStream(D, np.random.default_rng(1), noise=0.0)
        ens = OnlineFourierEnsemble(D, window=1, k_coefficients=2**D)
        X1, y1 = stream.batch(300)
        ens.update(X1, y1)
        from repro.datamining import DecisionTree
        from repro.datamining.fourier import all_inputs

        tree = DecisionTree(max_depth=4).fit(X1, y1)
        domain = all_inputs(D)
        assert np.array_equal(ens.predict(domain), tree.predict(domain))

    def test_adapts_to_drift(self):
        """After drift, the sliding window recovers; a frozen model does not."""
        stream = LabeledStream(D, np.random.default_rng(2), noise=0.05,
                               drift_at=1800)
        ens = OnlineFourierEnsemble(D, window=3)
        for _ in range(6):  # 1800 examples: pre-drift
            ens.update(*stream.batch(300))
        frozen = ens.current_model()
        stream.batch(1)  # crosses the drift boundary
        # post-drift adaptation
        for _ in range(6):
            ens.update(*stream.batch(300))
        X, y = stream.batch(600)
        adapted_acc = accuracy(ens.predict, X, y)
        frozen_acc = accuracy(frozen.predict, X, y)
        assert adapted_acc > 0.75
        assert adapted_acc > frozen_acc + 0.1

    def test_wire_bits_bounded(self):
        stream = LabeledStream(D, np.random.default_rng(3))
        ens = OnlineFourierEnsemble(D, k_coefficients=16)
        ens.update(*stream.batch(200))
        assert ens.wire_bits() <= 16 * 64.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineFourierEnsemble(D, window=0)
        with pytest.raises(ValueError):
            OnlineFourierEnsemble(D, k_coefficients=0)
