"""Tests for the terminal rendering helpers."""

import numpy as np
import pytest

from repro.reporting import ascii_heatmap, format_table, sparkline


class TestAsciiHeatmap:
    def test_shape(self):
        field = np.random.default_rng(0).random((30, 30))
        out = ascii_heatmap(field, width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 10
        assert all(len(l) == 40 for l in lines)

    def test_hot_spot_renders_hot(self):
        field = np.zeros((20, 20))
        field[10, 10] = 100.0
        out = ascii_heatmap(field, width=20, height=20)
        assert "@" in out
        assert out.count("@") < 10  # localized

    def test_constant_field_uniform(self):
        out = ascii_heatmap(np.full((5, 5), 3.0), width=10, height=5)
        assert len(set(out.replace("\n", ""))) == 1

    def test_orientation_top_is_max_y(self):
        field = np.zeros((10, 10))
        field[:, -1] = 100.0  # hot along max-y edge
        out = ascii_heatmap(field, width=10, height=10)
        lines = out.splitlines()
        assert lines[0].count("@") == 10  # top row hot
        assert "@" not in lines[-1]

    def test_explicit_scale(self):
        out = ascii_heatmap(np.full((4, 4), 5.0), vmin=0.0, vmax=10.0,
                            width=4, height=4)
        # 5/10 -> middle of the ramp, not blank and not saturated
        chars = set(out.replace("\n", ""))
        assert chars.isdisjoint({" ", "@"})

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(5))
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((3, 3)), width=0)


class TestTableAndSparkline:
    def test_format_table(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.5" in lines[2]

    def test_sparkline_range(self):
        s = sparkline([0, 1, 2, 3, 2, 1, 0])
        assert len(s) == 7
        assert s[3] == "█" and s[0] == "▁"

    def test_sparkline_edge_cases(self):
        assert sparkline([]) == ""
        assert len(set(sparkline([5, 5, 5]))) == 1
