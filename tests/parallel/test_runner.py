"""TrialRunner: deterministic reduction across worker processes.

The load-bearing property is the determinism contract: the merged
monitor, per-trial metrics and merged trace are bit-identical whether
the sweep ran serially or across N processes.  Trial functions here are
module-level (they must pickle into workers).
"""

import json

import pytest

from repro.observability.tracer import Tracer
from repro.parallel import (
    SweepResult,
    TrialError,
    TrialResult,
    TrialRunner,
    TrialSpec,
    cell_specs,
    run_trials,
    seed_specs,
)
from repro.simkernel import Monitor, Simulator


def sim_trial(spec):
    """A tiny but real simulation world: N events, counters, a trace."""
    sim = Simulator()
    monitor = Monitor()
    tracer = Tracer(sim)
    sim.tracer = tracer
    with tracer.span("world", seed=spec.seed):
        for i in range(spec.seed % 5 + 1):
            sim.schedule(float(i + 1), lambda i=i: monitor.counter("ticks").add(i + 1))
        sim.run(until=10.0)
    monitor.series("trail").record(sim.now, float(spec.seed))
    return TrialResult(
        monitor=monitor,
        metrics={"seed": spec.seed, "events": sim.events_executed},
        trace=tracer if spec.trace else None,
        sim_time_s=sim.now,
    )


def failing_trial(spec):
    if spec.params.get("fail"):
        raise RuntimeError(f"boom-{spec.index}")
    return TrialResult(metrics={"ok": True})


def not_a_result(spec):
    return {"oops": True}


class TestDeterminism:
    def test_serial_vs_parallel_bit_identical(self):
        specs = seed_specs([5, 1, 3, 2], trace=True)
        serial = TrialRunner(sim_trial, workers=1).run(specs)
        parallel = TrialRunner(sim_trial, workers=2).run(specs)
        assert serial.monitor.summary() == parallel.monitor.summary()
        assert serial.metrics_by_index() == parallel.metrics_by_index()
        assert serial.trace == parallel.trace
        assert serial.workers == 1 and parallel.workers == 2

    def test_reduction_order_is_index_order_not_completion_order(self):
        # seeds chosen so worker finish order differs from index order;
        # the merged series must still list trials by index
        specs = seed_specs([9, 0, 4])
        sweep = TrialRunner(sim_trial, workers=3).run(specs)
        assert list(sweep.monitor.series("trail").values) == [9.0, 0.0, 4.0]

    def test_parallel_counters(self):
        sweep = run_trials(sim_trial, seed_specs([1, 2, 3]), workers=2)
        assert sweep.monitor.counter("parallel.trials").value == 3
        assert sweep.monitor.counter("parallel.trial_failures").value == 0

    def test_no_wall_clock_in_monitor(self):
        sweep = run_trials(sim_trial, seed_specs([1, 2]), workers=2)
        assert sweep.wall_s > 0.0 and sweep.trial_wall_s > 0.0
        for key in sweep.monitor.summary():
            assert "wall" not in key and "speedup" not in key


class TestFailures:
    def test_raise_by_default(self):
        specs = cell_specs([{"fail": False}, {"fail": True}])
        with pytest.raises(TrialError, match="boom-1"):
            TrialRunner(failing_trial, workers=2).run(specs)

    def test_keep_records_failures(self):
        specs = cell_specs([{"fail": False}, {"fail": True}, {"fail": False}])
        sweep = TrialRunner(failing_trial, workers=2, on_error="keep").run(specs)
        assert sweep.failures == 1
        assert [o.ok for o in sweep.outcomes] == [True, False, True]
        assert "boom-1" in sweep.outcomes[1].error
        assert sweep.monitor.counter("parallel.trial_failures").value == 1
        assert sweep.monitor.counter("parallel.trials").value == 3

    def test_wrong_return_type_is_a_trial_error(self):
        with pytest.raises(TrialError, match="expected TrialResult"):
            TrialRunner(not_a_result).run(seed_specs([0]))

    def test_duplicate_indexes_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            TrialRunner(sim_trial).run([TrialSpec(0), TrialSpec(0)])


class TestTraceMerge:
    def test_each_world_nests_under_a_trial_span(self):
        sweep = run_trials(sim_trial, seed_specs([4, 7], trace=True), workers=2)
        roots = [r for r in sweep.trace if r["name"] == "parallel.trial"]
        assert len(roots) == 2
        assert [r["attrs"]["seed"] for r in roots] == [4, 7]
        for root in roots:
            children = [r for r in sweep.trace
                        if r.get("parent") == root["span"]]
            assert children, "world records must be reparented under the trial"
            assert root["end"] == 10.0  # the world's final virtual time
        # remapped ids never collide across trials
        span_ids = [r["span"] for r in sweep.trace if r.get("span") is not None]
        assert len(span_ids) == len(set(span_ids))

    def test_export_trace_jsonl(self, tmp_path):
        sweep = run_trials(sim_trial, seed_specs([2], trace=True))
        path = tmp_path / "trace.jsonl"
        lines = sweep.export_trace(path)
        loaded = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(loaded) == lines == len(sweep.trace)
        assert loaded[0]["name"] == "parallel.trial"

    def test_untraced_trials_produce_no_records(self):
        sweep = run_trials(sim_trial, seed_specs([1, 2], trace=False))
        assert sweep.trace == []


class TestSpecsAndHelpers:
    def test_seed_specs(self):
        specs = seed_specs([11, 13], trace=True, n=49)
        assert [s.seed for s in specs] == [11, 13]
        assert all(s.params == {"n": 49} and s.trace for s in specs)

    def test_cell_specs(self):
        specs = cell_specs([{"a": 1}, {"a": 2}], seed=5)
        assert [(s.index, s.seed, s.params) for s in specs] == [
            (0, 5, {"a": 1}), (1, 5, {"a": 2})]

    def test_workers_capped_at_trial_count(self):
        sweep = run_trials(sim_trial, seed_specs([1]), workers=8)
        assert sweep.workers == 1

    def test_speedup_reflects_aggregate_work(self):
        sweep = run_trials(sim_trial, seed_specs([1, 2, 3, 4]), workers=2)
        assert isinstance(sweep, SweepResult)
        assert sweep.speedup > 0.0
