"""Tests for the scripted fault-injection layer."""

import math

import numpy as np
import pytest

from repro.faults import (
    FaultDomain,
    FaultInjector,
    LinkDegradation,
    NodeCrash,
    Partition,
    RegionBlackout,
    UplinkOutage,
    crash_schedule,
    flapping_schedule,
)
from repro.network.topology import Topology
from repro.simkernel import Monitor, RandomStreams, Simulator


def grid_topology(n_side=3, spacing=10.0, range_m=12.0):
    xs, ys = np.meshgrid(np.arange(n_side), np.arange(n_side))
    pos = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float) * spacing
    return Topology(pos, range_m=range_m)


@pytest.fixture
def world():
    sim = Simulator()
    topo = grid_topology()
    domain = FaultDomain(sim=sim, monitor=Monitor(), topology=topo)
    return sim, topo, domain


class TestNodeCrash:
    def test_kill_and_revive(self, world):
        sim, topo, domain = world
        injector = FaultInjector(domain)
        injector.schedule(NodeCrash(4, at_s=1.0, duration_s=2.0))
        sim.run(until=1.5)
        assert not topo.is_alive(4)
        sim.run(until=4.0)
        assert topo.is_alive(4)
        assert [e.phase for e in injector.timeline] == ["inject", "recover"]

    def test_does_not_resurrect_independently_dead_node(self, world):
        sim, topo, domain = world
        topo.kill(4)
        injector = FaultInjector(domain)
        injector.schedule(NodeCrash(4, at_s=1.0, duration_s=1.0))
        sim.run(until=5.0)
        # the crash found node 4 already dead, so recovery must not revive it
        assert not topo.is_alive(4)

    def test_permanent_crash_never_recovers(self, world):
        sim, topo, domain = world
        injector = FaultInjector(domain)
        injector.schedule(NodeCrash(0, at_s=0.5))
        sim.run(until=100.0)
        assert not topo.is_alive(0)
        assert injector.active == 1

    def test_node_change_hook_fires(self, world):
        sim, topo, domain = world
        seen = []
        domain.on_node_change = lambda node, up: seen.append((sim.now, node, up))
        FaultInjector(domain).schedule(NodeCrash(2, at_s=1.0, duration_s=1.0))
        sim.run(until=3.0)
        assert seen == [(1.0, 2, False), (2.0, 2, True)]


class TestRegionBlackout:
    def test_kills_exactly_the_disc(self, world):
        sim, topo, domain = world
        # disc around the origin corner: nodes 0 (0,0), 1 (10,0), 3 (0,10)
        fault = RegionBlackout(center=(0.0, 0.0), radius_m=11.0, at_s=1.0, duration_s=5.0)
        FaultInjector(domain).schedule(fault)
        sim.run(until=2.0)
        assert sorted(fault.victims) == [0, 1, 3]
        assert all(not topo.is_alive(v) for v in (0, 1, 3))
        assert topo.is_alive(4)
        sim.run(until=10.0)
        assert all(topo.is_alive(v) for v in (0, 1, 3))

    def test_spares_already_dead_nodes_on_recovery(self, world):
        sim, topo, domain = world
        topo.kill(0)
        fault = RegionBlackout(center=(0.0, 0.0), radius_m=11.0, at_s=1.0, duration_s=2.0)
        FaultInjector(domain).schedule(fault)
        sim.run(until=5.0)
        assert not topo.is_alive(0)  # was dead before the blackout
        assert topo.is_alive(1) and topo.is_alive(3)


class TestLinkDegradation:
    def test_swaps_and_restores_radio(self):
        from repro.sensors.deployment import SensorDeployment

        sim = Simulator()
        dep = SensorDeployment(9, 20.0, sim=sim, streams=RandomStreams(7))
        domain = FaultDomain(sim=sim, monitor=dep.monitor, topology=dep.topology,
                             network=dep.network, radio_holders=(dep,))
        original = dep.radio
        fault = LinkDegradation(at_s=1.0, duration_s=2.0, latency_multiplier=4.0,
                                bandwidth_multiplier=0.25, loss_floor=0.2)
        FaultInjector(domain).schedule(fault)
        sim.run(until=1.5)
        assert dep.radio.latency_s == pytest.approx(original.latency_s * 4.0)
        assert dep.radio.bandwidth_bps == pytest.approx(original.bandwidth_bps * 0.25)
        assert dep.radio.loss_prob >= 0.2
        assert dep.network.radio == dep.radio
        sim.run(until=4.0)
        assert dep.radio is original
        assert dep.network.radio is original

    def test_loss_clamped_below_one(self, world):
        sim, topo, domain = world

        class Holder:
            def __init__(self):
                from repro.network.radio import RadioModel
                self.radio = RadioModel(loss_prob=0.5)

        holder = Holder()
        domain.radio_holders = (holder,)
        FaultInjector(domain).schedule(LinkDegradation(at_s=0.5, loss_multiplier=100.0))
        sim.run(until=1.0)
        assert holder.radio.loss_prob < 1.0


class TestUplinkOutageFault:
    def test_drives_uplink_windows(self):
        from repro.grid.uplink import Uplink

        sim = Simulator()
        uplink = Uplink(sim)
        domain = FaultDomain(sim=sim, monitor=Monitor(), uplink=uplink)
        injector = FaultInjector(domain)
        injector.schedule(UplinkOutage(at_s=1.0, duration_s=3.0))
        sim.run(until=2.0)
        assert not uplink.online
        assert uplink.estimate_completion(1e6) == math.inf
        sim.run(until=5.0)
        assert uplink.online
        assert uplink.outages == 1

    def test_missing_subsystem_is_an_error(self, world):
        sim, topo, domain = world  # no uplink in this domain
        FaultInjector(domain).schedule(UplinkOutage(at_s=0.5))
        with pytest.raises(ValueError, match="uplink"):
            sim.run(until=1.0)


class TestPartition:
    def test_severs_and_restores_cross_links(self, world):
        sim, topo, domain = world
        left, right = [0, 3, 6], [1, 2, 4, 5, 7, 8]
        assert topo.shortest_path(0, 2) is not None
        FaultInjector(domain).schedule(Partition(left, right, at_s=1.0, duration_s=2.0))
        sim.run(until=1.5)
        assert topo.shortest_path(0, 2) is None
        assert topo.shortest_path(0, 6) is not None  # intra-group links stay
        assert topo.shortest_path(1, 8) is not None
        sim.run(until=4.0)
        assert topo.shortest_path(0, 2) is not None

    def test_overlapping_partitions_stack(self, world):
        sim, topo, domain = world
        topo.block_links([0], [1])
        topo.block_links([0], [1, 2])
        topo.unblock_links([0], [1])
        assert not topo.has_edge(0, 1)  # still blocked once
        topo.unblock_links([0], [1, 2])
        assert topo.has_edge(0, 1)

    def test_groups_must_be_disjoint(self):
        with pytest.raises(ValueError):
            Partition([0, 1], [1, 2], at_s=0.0)


class TestInjector:
    def test_monitor_counters(self, world):
        sim, topo, domain = world
        injector = FaultInjector(domain)
        injector.schedule_all([
            NodeCrash(0, at_s=1.0, duration_s=1.0),
            NodeCrash(1, at_s=2.0),
        ])
        sim.run(until=10.0)
        counters = domain.monitor.counters()
        assert counters["faults.injected"] == 2
        assert counters["faults.recovered"] == 1
        assert counters["faults.node-crash"] == 2

    def test_past_times_fire_immediately(self, world):
        sim, topo, domain = world
        sim.schedule(5.0, lambda: None)
        sim.run(until=5.0)
        injector = FaultInjector(domain)
        injector.schedule(NodeCrash(0, at_s=1.0))  # already in the past
        sim.schedule(0.1, lambda: None)
        sim.run(until=6.0)
        assert not topo.is_alive(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeCrash(0, at_s=-1.0)
        with pytest.raises(ValueError):
            NodeCrash(0, at_s=0.0, duration_s=0.0)
        with pytest.raises(ValueError):
            NodeCrash(0, at_s=math.inf)


class TestEndToEndOutage:
    """Acceptance: an UplinkOutage mid-run causes zero unhandled
    exceptions -- queries complete locally or fail with a counted reason."""

    def make_runtime(self):
        from repro.core import PervasiveGridRuntime

        return PervasiveGridRuntime(n_sensors=25, area_m=40.0, seed=6,
                                    grid_resolution=24, noise_std=0.0)

    def test_outage_mid_continuous_query_is_handled(self):
        rt = self.make_runtime()
        injector = rt.fault_injector()
        # outage window covers several epochs of the continuous query
        injector.schedule(UplinkOutage(at_s=20.0, duration_s=60.0))
        outcomes = []
        rt.submit("SELECT DISTRIBUTION(value) FROM sensors COST accuracy 0.05 "
                  "EPOCH DURATION 10 FOR 120", lambda outs: outcomes.extend(outs))
        rt.sim.run(until=500.0)  # must not raise
        assert len(outcomes) == 12
        # every epoch either succeeded (grid before/after, local during)
        # or failed with a recorded reason
        for out in outcomes:
            assert out.success or out.error
        assert any(out.success and out.model != "grid" for out in outcomes), \
            "outage epochs should fall back to local models"
        assert any(out.success and out.model == "grid" for out in outcomes), \
            "pre/post-outage epochs should use the grid"
        assert rt.grid.uplink.outages == 1

    def test_outage_during_offload_counted_in_monitor(self):
        """Force the race: the uplink dies after the decision (grid) was
        made but before the offload starts -- the failure must be counted,
        not raised."""
        from repro.core import StaticPolicy

        from repro.core import PervasiveGridRuntime

        rt = PervasiveGridRuntime(n_sensors=25, area_m=40.0, seed=6,
                                  grid_resolution=24, noise_std=0.0,
                                  policy=StaticPolicy("grid"))
        injector = rt.fault_injector()
        outcomes = []
        rt.submit("SELECT DISTRIBUTION(value) FROM sensors",
                  lambda outs: outcomes.extend(outs))
        # the wireless collection takes a moment; kill the uplink first
        injector.schedule(UplinkOutage(at_s=1e-6, duration_s=1e6))
        rt.sim.run(until=1e5)
        (out,) = outcomes
        assert not out.success
        assert out.error == "uplink-offline"
        assert rt.deployment.monitor.counters()["queries.failed.uplink-offline"] == 1


class TestDeterminism:
    def test_crash_schedule_reproducible_from_named_stream(self):
        def build(seed):
            rng = RandomStreams(seed).get("fault-schedule")
            return crash_schedule(rng, nodes=range(9), horizon_s=500.0,
                                  rate_per_s=0.05, mean_downtime_s=10.0)

        a, b = build(123), build(123)
        assert len(a) == len(b) > 0
        assert [(f.node, f.at_s, f.duration_s) for f in a] == [
            (f.node, f.at_s, f.duration_s) for f in b
        ]
        c = build(124)
        assert [(f.node, f.at_s) for f in a] != [(f.node, f.at_s) for f in c]

    def test_identical_timelines_across_runs(self):
        def run(seed):
            sim = Simulator()
            topo = grid_topology()
            domain = FaultDomain(sim=sim, monitor=Monitor(), topology=topo)
            injector = FaultInjector(domain)
            rng = RandomStreams(seed).get("faults")
            injector.schedule_all(crash_schedule(rng, nodes=range(9), horizon_s=300.0,
                                                 rate_per_s=0.1, mean_downtime_s=5.0))
            sim.run(until=300.0)
            return [(e.time, e.kind, e.detail, e.phase) for e in injector.timeline]

        assert run(42) == run(42)

    def test_flapping_schedule_is_square_wave(self):
        faults = flapping_schedule(node=3, horizon_s=100.0, up_s=10.0, down_s=5.0)
        assert [f.at_s for f in faults] == pytest.approx([10.0, 25.0, 40.0, 55.0, 70.0, 85.0])
        assert all(f.duration_s == 5.0 and f.node == 3 for f in faults)
