"""Unit tests for ACL messages, envelopes and attributes."""

import pytest

from repro.agents import (
    ACLMessage,
    AgentAttributes,
    AgentRole,
    DomainAttributes,
    Envelope,
    Performative,
)


class TestACLMessage:
    def test_reply_swaps_endpoints_and_links(self):
        msg = ACLMessage(Performative.REQUEST, sender="a", receiver="b", content="ping")
        rep = msg.reply(Performative.INFORM, "pong")
        assert rep.sender == "b" and rep.receiver == "a"
        assert rep.in_reply_to == msg.conversation_id
        assert rep.content == "pong"
        assert rep.conversation_id != msg.conversation_id

    def test_conversation_ids_unique(self):
        a = ACLMessage(Performative.INFORM, "a", "b")
        b = ACLMessage(Performative.INFORM, "a", "b")
        assert a.conversation_id != b.conversation_id

    def test_all_performatives_distinct(self):
        values = [p.value for p in Performative]
        assert len(values) == len(set(values))


class TestEnvelope:
    def test_carries_content_type_and_ontology(self):
        env = Envelope("a", "b", content={"x": 1}, content_type="soap", ontology="fire-response")
        assert env.content_type == "soap"
        assert env.ontology == "fire-response"

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Envelope("a", "b", None, size_bits=-1.0)

    def test_transcoded_scales_size_only(self):
        env = Envelope("a", "b", content="big", size_bits=1000.0)
        small = env.transcoded(0.25)
        assert small.size_bits == pytest.approx(250.0)
        assert small.content == "big"
        assert env.size_bits == 1000.0  # original untouched
        assert small.envelope_id != env.envelope_id

    def test_transcoded_validates_factor(self):
        env = Envelope("a", "b", None)
        with pytest.raises(ValueError):
            env.transcoded(0.0)
        with pytest.raises(ValueError):
            env.transcoded(1.5)


class TestAttributes:
    def test_roles(self):
        attrs = AgentAttributes.of(AgentRole.BROKER, AgentRole.FACILITATOR)
        assert attrs.has_role(AgentRole.BROKER)
        assert not attrs.has_role(AgentRole.CLIENT)

    def test_frozen(self):
        attrs = AgentAttributes.of(AgentRole.CLIENT)
        with pytest.raises(Exception):
            attrs.mobile = True

    def test_domain_attributes_mapping(self):
        d = DomainAttributes(service="printer", queue_length=3)
        assert d.get("service") == "printer"
        assert d.get("missing", "dflt") == "dflt"
        assert "queue_length" in d
        assert d.keys() == ["queue_length", "service"]
        d.set("color", True)
        assert d.get("color") is True

    def test_domain_attributes_equality(self):
        assert DomainAttributes(a=1) == DomainAttributes(a=1)
        assert DomainAttributes(a=1) != DomainAttributes(a=2)

    def test_as_dict_is_copy(self):
        d = DomainAttributes(a=1)
        copy = d.as_dict()
        copy["a"] = 99
        assert d.get("a") == 1
