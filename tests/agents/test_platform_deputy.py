"""Unit tests for agents, deputies and the platform."""

import numpy as np
import pytest

from repro.agents import (
    ACLMessage,
    Agent,
    AgentAttributes,
    AgentPlatform,
    AgentRole,
    DirectDeputy,
    NetworkDeputy,
    Performative,
)
from repro.network import RadioEnergyModel, RadioModel, Topology, WirelessNetwork
from repro.simkernel import Simulator


class EchoAgent(Agent):
    """Replies INFORM with the same content to every REQUEST."""

    def setup(self):
        self.received = []
        self.on(Performative.REQUEST, self._handle)

    def _handle(self, msg):
        self.received.append(msg)
        self.reply(msg, Performative.INFORM, msg.content)


class SinkAgent(Agent):
    def setup(self):
        self.infos = []
        self.on(Performative.INFORM, self.infos.append)


def wired_platform():
    sim = Simulator()
    platform = AgentPlatform(sim)
    return sim, platform


class TestPlatformBasics:
    def test_register_and_lookup(self):
        sim, platform = wired_platform()
        a = Agent("alice")
        platform.register(a)
        assert platform.is_registered("alice")
        assert platform.agent("alice") is a
        assert a.platform is platform

    def test_duplicate_name_rejected(self):
        sim, platform = wired_platform()
        platform.register(Agent("x"))
        with pytest.raises(ValueError):
            platform.register(Agent("x"))

    def test_unregister_calls_teardown(self):
        sim, platform = wired_platform()
        events = []

        class A(Agent):
            def teardown(self):
                events.append("teardown")

        a = A("x")
        platform.register(a)
        platform.unregister("x")
        assert events == ["teardown"]
        assert not platform.is_registered("x")
        assert a.platform is None

    def test_setup_called_on_register(self):
        sim, platform = wired_platform()
        echo = EchoAgent("e")
        platform.register(echo)
        assert echo.received == []  # setup ran and created the list

    def test_agents_with_role(self):
        sim, platform = wired_platform()
        platform.register(Agent("b", AgentAttributes.of(AgentRole.BROKER)))
        platform.register(Agent("c", AgentAttributes.of(AgentRole.CLIENT)))
        brokers = platform.agents_with_role(AgentRole.BROKER)
        assert [a.name for a in brokers] == ["b"]

    def test_send_requires_registration(self):
        a = Agent("loner")
        with pytest.raises(RuntimeError):
            a.ask("other", Performative.REQUEST)

    def test_dispatch_to_missing_agent_counts(self):
        sim, platform = wired_platform()
        a = Agent("a")
        platform.register(a)
        a.ask("ghost", Performative.REQUEST)
        assert platform.monitor.counter("platform.undeliverable").value == 1


class TestDirectDelivery:
    def test_request_reply_roundtrip(self):
        sim, platform = wired_platform()
        echo = EchoAgent("echo")
        sink = SinkAgent("sink")
        platform.register(echo)
        platform.register(sink)
        msg = ACLMessage(Performative.REQUEST, sender="sink", receiver="echo", content="hi")
        sink.send("echo", msg)
        sim.run()
        assert [m.content for m in echo.received] == ["hi"]
        assert [m.content for m in sink.infos] == ["hi"]
        assert sink.infos[0].in_reply_to == msg.conversation_id

    def test_direct_latency(self):
        sim, platform = wired_platform()
        echo = EchoAgent("echo")
        platform.register(echo, DirectDeputy(echo, sim, latency_s=0.5))
        sender = Agent("s")
        platform.register(sender)
        sender.ask("echo", Performative.REQUEST, "x")
        sim.run()
        # request took 0.5s to arrive (reply via default 0.001 deputy)
        assert echo.received[0] is not None
        assert sim.now >= 0.5

    def test_counts(self):
        sim, platform = wired_platform()
        echo = EchoAgent("echo")
        sink = SinkAgent("sink")
        platform.register(echo)
        platform.register(sink)
        sink.ask("echo", Performative.REQUEST, 1)
        sim.run()
        assert sink.sent_count == 1
        assert echo.sent_count == 1
        assert echo.inbox_count == 1
        assert sink.inbox_count == 1

    def test_raw_handler_for_non_acl(self):
        sim, platform = wired_platform()
        got = []
        a = Agent("a")
        a.on_raw(got.append)
        platform.register(a)
        b = Agent("b")
        platform.register(b)
        b.send("a", {"soap": True}, content_type="soap")
        sim.run()
        assert got and got[0].content == {"soap": True}

    def test_unhandled_performative_ignored(self):
        sim, platform = wired_platform()
        a = Agent("a")
        platform.register(a)
        b = Agent("b")
        platform.register(b)
        b.ask("a", Performative.CFP, None)
        sim.run()
        assert a.inbox_count == 1  # delivered but no handler: no crash


def network_platform(n=5, spacing=10.0, range_m=12.0):
    sim = Simulator()
    pos = np.array([[i * spacing, 0.0] for i in range(n)])
    topo = Topology(pos, range_m=range_m)
    radio = RadioModel(bandwidth_bps=1e6, latency_s=0.01, range_m=range_m)
    net = WirelessNetwork(sim, topo, radio, RadioEnergyModel())
    platform = AgentPlatform(sim)
    return sim, topo, net, platform


class TestNetworkDeputy:
    def test_delivery_over_multihop(self):
        sim, topo, net, platform = network_platform()
        echo = EchoAgent("echo")
        platform.register(echo, NetworkDeputy(echo, net, host_node=4), host_node=4)
        sink = SinkAgent("sink")
        platform.register(sink, NetworkDeputy(sink, net, host_node=0), host_node=0)
        sink.ask("echo", Performative.REQUEST, "over-the-air")
        sim.run()
        assert [m.content for m in echo.received] == ["over-the-air"]
        assert [m.content for m in sink.infos] == ["over-the-air"]
        assert sim.now > 0.04  # 4 hops each way

    def test_drop_without_buffering(self):
        sim, topo, net, platform = network_platform()
        echo = EchoAgent("echo")
        deputy = NetworkDeputy(echo, net, host_node=4)
        platform.register(echo, deputy, host_node=4)
        sender = Agent("s")
        platform.register(sender, NetworkDeputy(sender, net, host_node=0), host_node=0)
        topo.kill(4)
        sender.ask("echo", Performative.REQUEST, "lost")
        sim.run()
        assert echo.received == []
        assert deputy.dropped_count == 1
        assert not deputy.reachable

    def test_disconnection_management_buffers_and_flushes(self):
        sim, topo, net, platform = network_platform()
        echo = EchoAgent("echo")
        deputy = NetworkDeputy(echo, net, host_node=4, buffer_when_down=True, retry_s=1.0)
        platform.register(echo, deputy, host_node=4)
        sender = Agent("s")
        platform.register(sender, NetworkDeputy(sender, net, host_node=0), host_node=0)
        topo.kill(4)
        sender.ask("echo", Performative.REQUEST, "patience")
        sim.schedule(5.0, lambda: topo.revive(4))
        sim.run()
        assert [m.content for m in echo.received] == ["patience"]
        assert deputy.buffered_count == 1
        assert deputy.dropped_count == 0

    def test_buffer_overflow_drops(self):
        sim, topo, net, platform = network_platform()
        echo = EchoAgent("echo")
        deputy = NetworkDeputy(echo, net, host_node=4, buffer_when_down=True, max_buffer=2)
        platform.register(echo, deputy, host_node=4)
        sender = Agent("s")
        platform.register(sender, NetworkDeputy(sender, net, host_node=0), host_node=0)
        topo.kill(4)
        for i in range(5):
            sender.ask("echo", Performative.REQUEST, i)
        sim.run(until=0.5)
        assert deputy.buffered_count == 2
        assert deputy.dropped_count == 3

    def test_transcoding_on_long_paths(self):
        sim, topo, net, platform = network_platform(n=6)
        echo = EchoAgent("echo")
        deputy = NetworkDeputy(echo, net, host_node=5, transcode_factor=0.5, transcode_hop_threshold=3)
        platform.register(echo, deputy, host_node=5)
        sender = Agent("s")
        platform.register(sender, NetworkDeputy(sender, net, host_node=0), host_node=0)
        sender.ask("echo", Performative.REQUEST, "shrink-me")
        sim.run()
        assert deputy.transcoded_count == 1
        assert [m.content for m in echo.received] == ["shrink-me"]

    def test_no_transcoding_on_short_paths(self):
        sim, topo, net, platform = network_platform(n=3)
        echo = EchoAgent("echo")
        deputy = NetworkDeputy(echo, net, host_node=2, transcode_factor=0.5, transcode_hop_threshold=3)
        platform.register(echo, deputy, host_node=2)
        sender = Agent("s")
        platform.register(sender, NetworkDeputy(sender, net, host_node=0), host_node=0)
        sender.ask("echo", Performative.REQUEST, "as-is")
        sim.run()
        assert deputy.transcoded_count == 0

    def test_validation(self):
        sim, topo, net, platform = network_platform()
        a = Agent("a")
        with pytest.raises(ValueError):
            NetworkDeputy(a, net, 0, retry_s=0.0)
        with pytest.raises(ValueError):
            NetworkDeputy(a, net, 0, transcode_factor=0.0)
        with pytest.raises(ValueError):
            DirectDeputy(a, sim, latency_s=-1.0)

    def test_host_node_recorded_in_platform(self):
        sim, topo, net, platform = network_platform()
        a = Agent("a")
        platform.register(a, NetworkDeputy(a, net, host_node=3))
        assert platform.host_node_of("a") == 3
        assert platform.host_node_of("missing") is None
