"""Tests for deputy-level ARQ (loss retransmission)."""

import numpy as np
import pytest

from repro.agents import Agent, AgentPlatform, NetworkDeputy, Performative
from repro.network import RadioEnergyModel, RadioModel, Topology, WirelessNetwork
from repro.simkernel import Simulator


def lossy_world(loss, n=4, max_retransmits=5, seed=0):
    sim = Simulator()
    pos = np.array([[i * 10.0, 0.0] for i in range(n)])
    topo = Topology(pos, range_m=12.0)
    radio = RadioModel(bandwidth_bps=1e6, latency_s=0.01, loss_prob=loss, range_m=12.0)
    net = WirelessNetwork(sim, topo, radio, RadioEnergyModel(),
                          rng=np.random.default_rng(seed))
    platform = AgentPlatform(sim)
    receiver = Agent("rx")
    receiver.got = []
    receiver.on(Performative.INFORM, receiver.got.append)
    deputy = NetworkDeputy(receiver, net, host_node=n - 1,
                           max_retransmits=max_retransmits)
    platform.register(receiver, deputy)
    sender = Agent("tx")
    platform.register(sender, NetworkDeputy(sender, net, host_node=0))
    return sim, topo, platform, sender, receiver, deputy


class TestARQ:
    def test_lossy_link_still_delivers(self):
        sim, topo, platform, tx, rx, deputy = lossy_world(loss=0.2, seed=3)
        for i in range(10):
            tx.ask("rx", Performative.INFORM, i)
        sim.run()
        # 3 hops at 20% loss: ~49% of messages drop without ARQ; with 5
        # retransmissions end-to-end delivery is ~99%
        assert len(rx.got) >= 9
        assert deputy.retransmit_count > 0

    def test_zero_loss_no_retransmits(self):
        sim, topo, platform, tx, rx, deputy = lossy_world(loss=0.0)
        tx.ask("rx", Performative.INFORM, "x")
        sim.run()
        assert deputy.retransmit_count == 0
        assert len(rx.got) == 1

    def test_gives_up_after_max_retransmits(self):
        sim, topo, platform, tx, rx, deputy = lossy_world(
            loss=0.89, max_retransmits=1, seed=1
        )
        for i in range(30):
            tx.ask("rx", Performative.INFORM, i)
        sim.run()
        assert deputy.dropped_count > 0
        # each drop consumed at most 1 retransmission
        assert deputy.retransmit_count <= 30

    def test_no_route_not_retransmitted(self):
        sim, topo, platform, tx, rx, deputy = lossy_world(loss=0.0)
        topo.kill(1)  # partition
        tx.ask("rx", Performative.INFORM, "x")
        sim.run()
        assert deputy.retransmit_count == 0
        assert deputy.dropped_count == 1

    def test_no_route_buffers_when_enabled(self):
        sim, topo, platform, tx, rx, deputy = lossy_world(loss=0.0)
        deputy.buffer_when_down = True
        topo.kill(3)  # receiver host down
        tx.ask("rx", Performative.INFORM, "wait-for-me")
        sim.schedule(3.0, lambda: topo.revive(3))
        sim.run()
        assert [m.content for m in rx.got] == ["wait-for-me"]
