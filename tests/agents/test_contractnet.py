"""Tests for Contract-Net negotiation with performance commitments."""

import pytest

from repro.agents import AgentPlatform
from repro.agents.contractnet import (
    Award,
    CallForProposals,
    ContractNetContractor,
    ContractNetInitiator,
    Proposal,
)
from repro.simkernel import Simulator


def make_world():
    sim = Simulator()
    platform = AgentPlatform(sim)
    initiator = ContractNetInitiator("boss", sim)
    platform.register(initiator)
    return sim, platform, initiator


def add_contractor(platform, sim, name, price=1.0, time=1.0, can=True,
                   overrun=1.0, result="done"):
    c = ContractNetContractor(
        name, sim,
        capability=lambda task: can,
        price_fn=lambda task: price,
        time_fn=lambda task: time,
        executor=lambda task: result,
        overrun_factor=overrun,
    )
    platform.register(c)
    return c


class TestBasicProtocol:
    def test_single_contractor_wins_and_delivers(self):
        sim, platform, boss = make_world()
        add_contractor(platform, sim, "alice", price=2.0, time=1.0)
        awards = []
        boss.negotiate(["alice"], {"kind": "job"}, awards.append)
        sim.run()
        (a,) = awards
        assert a.winner == "alice"
        assert a.completed and a.on_time
        assert a.result == "done"
        assert a.proposals_received == 1

    def test_cheapest_quickest_wins(self):
        sim, platform, boss = make_world()
        add_contractor(platform, sim, "pricey", price=5.0, time=1.0)
        add_contractor(platform, sim, "cheap", price=1.0, time=1.0)
        add_contractor(platform, sim, "slow", price=1.0, time=5.0)
        awards = []
        boss.negotiate(["pricey", "cheap", "slow"], {}, awards.append)
        sim.run()
        assert awards[0].winner == "cheap"
        assert awards[0].proposals_received == 3

    def test_incapable_contractor_declines(self):
        sim, platform, boss = make_world()
        add_contractor(platform, sim, "no", can=False)
        add_contractor(platform, sim, "yes")
        awards = []
        boss.negotiate(["no", "yes"], {}, awards.append)
        sim.run()
        assert awards[0].winner == "yes"
        assert awards[0].proposals_received == 1

    def test_over_reserve_price_declines(self):
        sim, platform, boss = make_world()
        add_contractor(platform, sim, "expensive", price=100.0)
        awards = []
        boss.negotiate(["expensive"], {}, awards.append, max_price=10.0)
        sim.run()
        assert awards[0].winner is None
        assert not awards[0].completed

    def test_over_deadline_declines(self):
        sim, platform, boss = make_world()
        add_contractor(platform, sim, "slow", time=100.0)
        awards = []
        boss.negotiate(["slow"], {}, awards.append, deadline_s=10.0)
        sim.run()
        assert awards[0].winner is None

    def test_no_contractors_rejected(self):
        sim, platform, boss = make_world()
        with pytest.raises(ValueError):
            boss.negotiate([], {}, lambda a: None)

    def test_losers_get_reject(self):
        sim, platform, boss = make_world()
        w = add_contractor(platform, sim, "winner", price=1.0)
        l = add_contractor(platform, sim, "loser", price=2.0)
        boss.negotiate(["winner", "loser"], {}, lambda a: None)
        sim.run()
        assert w.awards_won == 1
        assert l.awards_won == 0
        assert l.bids_made == 1

    def test_bad_cfp_payload_failure(self):
        sim, platform, boss = make_world()
        c = add_contractor(platform, sim, "c")
        from repro.agents import Performative

        boss.ask("c", Performative.CFP, "garbage")
        sim.run()  # no crash; contractor replied FAILURE (unhandled by boss)


class TestCommitments:
    def test_overrun_detected_as_late(self):
        sim, platform, boss = make_world()
        add_contractor(platform, sim, "liar", time=1.0, overrun=2.0)
        awards = []
        boss.negotiate(["liar"], {}, awards.append)
        sim.run()
        (a,) = awards
        assert a.completed
        assert not a.on_time
        assert boss.reputation["liar"] < 1.0

    def test_never_delivering_contractor_times_out(self):
        sim, platform, boss = make_world()
        add_contractor(platform, sim, "ghost", time=1.0, overrun=100.0)
        awards = []
        boss.negotiate(["ghost"], {}, awards.append)
        sim.run(until=60.0)
        (a,) = awards
        assert not a.completed
        assert boss.reputation["ghost"] < 1.0

    def test_reputation_shifts_future_awards(self):
        """A commitment-breaker must underbid to win again."""
        sim, platform, boss = make_world()
        add_contractor(platform, sim, "flaky", price=1.0, time=1.0, overrun=3.0)
        add_contractor(platform, sim, "steady", price=1.4, time=1.0)
        awards = []
        boss.negotiate(["flaky", "steady"], {}, awards.append)
        sim.run()
        assert awards[0].winner == "flaky"  # cheapest wins round 1
        boss.negotiate(["flaky", "steady"], {}, awards.append)
        sim.run()
        assert awards[1].winner == "steady"  # reputation flipped the award

    def test_reputation_recovers_with_good_behaviour(self):
        sim, platform, boss = make_world()
        boss.reputation["x"] = 0.2
        boss._update_reputation("x", True)
        assert boss.reputation["x"] > 0.2

    def test_on_time_delivery_keeps_reputation(self):
        sim, platform, boss = make_world()
        add_contractor(platform, sim, "good", time=2.0)
        awards = []
        boss.negotiate(["good"], {}, awards.append)
        sim.run()
        assert boss.reputation["good"] == pytest.approx(1.0)


class TestDataclasses:
    def test_payload_shapes(self):
        cfp = CallForProposals("c1", {"k": 1}, 5.0, 2.0)
        p = Proposal("c1", "a", 1.0, 1.0)
        a = Award("c1", "a", p, 1)
        assert a.result is None and not a.completed

    def test_invalid_overrun(self):
        with pytest.raises(ValueError):
            ContractNetContractor("c", Simulator(), overrun_factor=0.0)
