"""Tests for the manager's blacklist-exhaustion fallback and breakers."""

import pytest

from repro.composition import TaskGraph, TaskSpec
from repro.discovery import Preference


def one_task_graph():
    g = TaskGraph()
    g.add_task(TaskSpec("learn", "DecisionTreeService"))
    return g


class TestBlacklistExhaustionFallback:
    def test_clears_blacklist_and_rebinds_same_service(self, env_factory):
        """With a single provider, a timeout blacklists it, the rebind
        raises BindingError, and the fallback clears the blacklist and
        rebinds the same (now responsive) service."""
        env = env_factory(timeout_s=5.0, max_retries=2)
        provider = env.add_provider("only", "DecisionTreeService")
        # unresponsive at first: deregistered from the platform, so the
        # invoke is silently dropped and the attempt times out
        env.platform.unregister("only")
        results = []
        env.manager.execute(one_task_graph(), results.append)
        # back online while the first attempt is still hanging
        env.sim.schedule(2.0, lambda: env.platform.register(provider))
        env.sim.run()
        (r,) = results
        assert r.success
        assert r.attempts == 2
        # the fallback rebound the *same* service, so no rebind counted
        assert r.rebinds == 0

    def test_exhausted_blacklist_with_empty_registry_fails(self, env_factory):
        """If even the cleared-blacklist rebind finds nothing (registry
        empty), the attempt finishes as a failure instead of looping."""
        env = env_factory(timeout_s=5.0, max_retries=3)
        env.add_provider("only", "DecisionTreeService")
        env.platform.unregister("only")
        results = []
        env.manager.execute(one_task_graph(), results.append)
        # the host disappears from the registry while the attempt hangs
        env.sim.schedule(2.0, lambda: env.registry.withdraw("svc-only"))
        env.sim.run()
        (r,) = results
        assert not r.success
        assert r.attempts == 1  # never relaunched: rebind failed outright
        assert env.manager.failed == 1

    def test_fallback_not_taken_when_alternative_exists(self, env_factory):
        """Sanity: with a healthy alternative the ordinary blacklist path
        rebinds to it, no clearing involved."""
        env = env_factory(timeout_s=5.0, max_retries=2)
        env.add_provider("dead", "DecisionTreeService", queue=0)
        env.add_provider("alive", "DecisionTreeService", queue=9)
        env.platform.unregister("dead")
        g = TaskGraph()
        g.add_task(TaskSpec("learn", "DecisionTreeService",
                            preferences=(Preference("queue", "minimize"),)))
        results = []
        env.manager.execute(g, results.append)
        env.sim.run()
        (r,) = results
        assert r.success
        assert r.rebinds == 1


class TestManagerWithBreakers:
    def test_open_breaker_excludes_provider_on_rebind(self, env_factory):
        """One timeout trips the (threshold-1) breaker, so the retry binds
        the healthy provider even though the dead one is still advertised
        and preferred."""
        env = env_factory(timeout_s=5.0, max_retries=2,
                          breaker_kwargs={"failure_threshold": 1,
                                          "recovery_timeout_s": 1000.0})
        env.add_provider("dead", "DecisionTreeService", queue=0)
        env.add_provider("alive", "DecisionTreeService", queue=9)
        env.platform.unregister("dead")  # silently drops invokes
        g = TaskGraph()
        g.add_task(TaskSpec("learn", "DecisionTreeService",
                            preferences=(Preference("queue", "minimize"),)))
        results = []
        env.manager.execute(g, results.append)
        env.sim.run()
        (r,) = results
        assert r.success
        assert env.breakers.get("dead").state == "open"
        assert env.breakers.blocked_providers() == {"dead"}

    def test_success_closes_breakers(self, env_factory):
        env = env_factory(breaker_kwargs={"failure_threshold": 1})
        env.add_stream_mining_providers()
        results = []
        g = TaskGraph()
        g.add_task(TaskSpec("learn", "DecisionTreeService"))
        g.add_task(TaskSpec("combine", "EnsembleCombinerService"))
        g.add_edge("learn", "combine")
        env.manager.execute(g, results.append)
        env.sim.run()
        assert results[0].success
        assert env.breakers.blocked_providers() == set()
        assert len(env.breakers) >= 2  # successes recorded per provider

    def test_all_breakers_open_still_binds_as_last_resort(self, env_factory):
        """When every provider of a category is behind an open breaker,
        the bind drops the breaker exclusion rather than failing -- a
        suspect provider beats none."""
        env = env_factory(timeout_s=5.0, max_retries=3,
                          breaker_kwargs={"failure_threshold": 1,
                                          "recovery_timeout_s": 1000.0})
        provider = env.add_provider("only", "DecisionTreeService")
        env.platform.unregister("only")
        results = []
        env.manager.execute(one_task_graph(), results.append)
        # trip happens at the first timeout (t=5); provider returns at t=6
        env.sim.schedule(6.0, lambda: env.platform.register(provider))
        env.sim.run()
        (r,) = results
        assert r.success
        assert env.breakers.get("only").trips >= 1
