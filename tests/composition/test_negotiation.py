"""Tests for negotiated binding (Contract-Net over service providers)."""

import pytest

from repro.agents.contractnet import ContractNetInitiator
from repro.composition import NegotiatedBinder, TaskGraph, TaskSpec


def make_binder(env, **kw):
    initiator = ContractNetInitiator("negotiator", env.sim)
    env.platform.register(initiator)
    return NegotiatedBinder(initiator, env.registry, **kw)


def simple_graph():
    g = TaskGraph()
    g.add_task(TaskSpec("learn", "DecisionTreeService"))
    g.add_task(TaskSpec("combine", "EnsembleCombinerService"))
    g.add_edge("learn", "combine")
    return g


class TestNegotiatedBindTask:
    def test_binds_to_a_bidder(self, env_factory):
        env = env_factory()
        env.add_stream_mining_providers()
        binder = make_binder(env)
        got = []
        binder.bind_task(TaskSpec("learn", "DecisionTreeService"), got.append)
        env.sim.run()
        (binding,) = got
        assert binding is not None
        assert binding.provider in ("dt1", "dt2")
        assert binder.negotiated == 1

    def test_cheapest_bidder_wins(self, env_factory):
        env = env_factory()
        env.add_provider("pricey", "DecisionTreeService", price=9.0)
        env.add_provider("bargain", "DecisionTreeService", price=1.0)
        binder = make_binder(env)
        got = []
        binder.bind_task(TaskSpec("learn", "DecisionTreeService"), got.append)
        env.sim.run()
        assert got[0].provider == "bargain"

    def test_no_candidates_none(self, env_factory):
        env = env_factory()
        binder = make_binder(env)
        got = []
        binder.bind_task(TaskSpec("solve", "PDESolverService"), got.append)
        env.sim.run()
        assert got == [None]

    def test_over_reserve_price_fails(self, env_factory):
        env = env_factory()
        env.add_provider("pricey", "DecisionTreeService", price=50.0)
        binder = make_binder(env, max_price=10.0)
        got = []
        binder.bind_task(TaskSpec("learn", "DecisionTreeService"), got.append)
        env.sim.run()
        assert got == [None]


class TestNegotiatedBindGraph:
    def test_binds_whole_graph(self, env_factory):
        env = env_factory()
        env.add_stream_mining_providers()
        binder = make_binder(env)
        got = []
        binder.bind_graph(simple_graph(), got.append)
        env.sim.run()
        (bindings,) = got
        assert set(bindings) == {"learn", "combine"}

    def test_one_unbindable_task_fails_all(self, env_factory):
        env = env_factory()
        env.add_provider("dt", "DecisionTreeService")
        # no EnsembleCombinerService anywhere
        binder = make_binder(env)
        got = []
        binder.bind_graph(simple_graph(), got.append)
        env.sim.run()
        assert got == [None]

    def test_empty_graph(self, env_factory):
        env = env_factory()
        binder = make_binder(env)
        got = []
        binder.bind_graph(TaskGraph(), got.append)
        env.sim.run()
        assert got == [{}]

    def test_negotiated_bindings_executable(self, env_factory):
        """The negotiated bindings drive a normal manager execution."""
        env = env_factory()
        env.add_stream_mining_providers()
        binder = make_binder(env)
        results = []

        def bound(bindings):
            assert bindings is not None
            env.manager.execute(simple_graph(), results.append, bindings=bindings)

        binder.bind_graph(simple_graph(), bound)
        env.sim.run()
        assert results and results[0].success


class TestCommitmentLoop:
    def test_reputation_steers_future_awards(self, env_factory):
        """A provider that overran its commitment loses the next award."""
        env = env_factory()
        env.add_provider("overruns", "DecisionTreeService", price=1.0)
        env.add_provider("honest", "DecisionTreeService", price=1.3)
        binder = make_binder(env)
        task = TaskSpec("learn", "DecisionTreeService")

        got = []
        binder.bind_task(task, got.append)
        env.sim.run()
        assert got[0].provider == "overruns"  # cheapest wins round 1

        # the manager later measured a 4x overrun of the commitment;
        # reputation is keyed by the provider AGENT name (the negotiation
        # contractor), matching Binding.provider
        binder.report_outcome("overruns", committed_s=1.0, actual_s=4.0)
        binder.report_outcome("overruns", committed_s=1.0, actual_s=4.0)
        assert binder.reputation_of("overruns") < 1.0

        got2 = []
        binder.bind_task(task, got2.append)
        env.sim.run()
        assert got2[0].provider == "honest"

    def test_on_time_outcome_keeps_reputation(self, env_factory):
        env = env_factory()
        binder = make_binder(env)
        binder.report_outcome("good", committed_s=2.0, actual_s=1.9)
        assert binder.reputation_of("good") == pytest.approx(1.0)
