"""Tests for discovery retry-with-backoff and hedged broker queries."""

from repro.composition import ReactiveComposer
from repro.resilience import Hedge, RetryPolicy


def wire_composer(env, **kwargs):
    composer = ReactiveComposer("composer", env.planner, env.manager, "broker",
                                discovery_timeout_s=5.0, **kwargs)
    env.platform.register(composer)
    return composer


class TestDiscoveryRetry:
    def test_single_shot_fails_when_broker_unreachable(self, env_factory):
        env = env_factory()
        env.add_stream_mining_providers()
        env.platform.unregister("broker")
        composer = wire_composer(env)
        results = []
        composer.compose("analyze-stream", results.append, {"n_partitions": 2})
        env.sim.run()
        assert not results[0].success
        assert composer.discovery_retries == 0

    def test_retry_recovers_after_broker_returns(self, env_factory):
        env = env_factory()
        env.add_stream_mining_providers()
        env.platform.unregister("broker")
        composer = wire_composer(
            env, retry=RetryPolicy(max_attempts=4, base_delay_s=1.0, jitter="none"))
        results = []
        composer.compose("analyze-stream", results.append, {"n_partitions": 2})
        # broker comes back while the first attempt is timing out
        env.sim.schedule(3.0, lambda: env.platform.register(env.broker))
        env.sim.run()
        (r,) = results
        assert r.success
        assert composer.discovery_retries >= 1

    def test_retry_budget_exhausts(self, env_factory):
        env = env_factory()
        env.add_stream_mining_providers()
        env.platform.unregister("broker")  # never returns
        composer = wire_composer(
            env, retry=RetryPolicy(max_attempts=3, base_delay_s=0.5, jitter="none"))
        results = []
        composer.compose("analyze-stream", results.append, {"n_partitions": 2})
        env.sim.run()
        assert not results[0].success
        assert composer.discovery_retries == 2  # attempts 2 and 3

    def test_deterministic_backoff_timeline(self, env_factory):
        """With jitter='none' the retry instants are exactly the policy
        ceilings after each 5 s discovery timeout."""
        def run():
            env = env_factory()
            env.add_stream_mining_providers()
            env.platform.unregister("broker")
            composer = wire_composer(
                env, retry=RetryPolicy(max_attempts=3, base_delay_s=1.0, jitter="none"))
            results = []
            composer.compose("analyze-stream", results.append, {"n_partitions": 2})
            env.sim.run()
            return env.sim.now

        assert run() == run()


class TestDiscoveryHedging:
    def test_hedge_wave_rescues_dropped_queries(self, env_factory):
        """The first queries are dropped (broker unregistered); the hedge
        wave re-asks once the broker is back, within the same attempt."""
        env = env_factory()
        env.add_stream_mining_providers()
        env.platform.unregister("broker")
        composer = wire_composer(env, hedge=Hedge(delay_s=2.0, max_hedges=1))
        results = []
        composer.compose("analyze-stream", results.append, {"n_partitions": 2})
        env.sim.schedule(1.0, lambda: env.platform.register(env.broker))
        env.sim.run()
        (r,) = results
        assert r.success
        assert composer.hedged_queries > 0
        assert composer.discovery_retries == 0  # rescued inside attempt 1

    def test_duplicate_replies_do_not_double_bind(self, env_factory):
        """With a healthy broker and an aggressive hedge delay, duplicate
        replies arrive for the same tasks; exactly one composition runs."""
        env = env_factory()
        env.add_stream_mining_providers()
        composer = wire_composer(env, hedge=Hedge(delay_s=1e-3, max_hedges=1))
        results = []
        composer.compose("analyze-stream", results.append, {"n_partitions": 2})
        env.sim.run()
        assert len(results) == 1
        assert results[0].success
        assert env.manager.completed == 1
