"""Tests for reactive vs proactive composition and provider behaviour."""

import pytest

from repro.composition import ProactiveComposer, ReactiveComposer, ServiceProviderAgent
from repro.discovery import ServiceDescription
from repro.simkernel import Simulator


class TestProviderAgent:
    def test_validation(self):
        sim = Simulator()
        desc = ServiceDescription("s", "ComputeService")
        with pytest.raises(ValueError):
            ServiceProviderAgent("p", desc, sim, compute_rate=0.0)
        with pytest.raises(ValueError):
            ServiceProviderAgent("p", desc, sim, fail_prob=1.0)

    def test_provider_sets_description_provider(self):
        sim = Simulator()
        desc = ServiceDescription("s", "ComputeService")
        ServiceProviderAgent("prov", desc, sim)
        assert desc.provider == "prov"

    def test_service_time_from_ops_and_rate(self):
        sim = Simulator()
        desc = ServiceDescription("s", "ComputeService", ops=1e6)
        p = ServiceProviderAgent("p", desc, sim, compute_rate=1e6)
        assert p.service_time_s == pytest.approx(1.0)

    def test_bad_content_gets_failure(self, env_factory):
        env = env_factory()
        p = env.add_provider("p", "ComputeService")
        from repro.agents import Agent, Performative

        client = Agent("c")
        client.fails = []
        client.on(Performative.FAILURE, client.fails.append)
        env.platform.register(client)
        client.ask("p", Performative.REQUEST, "bogus")
        client.ask("p", Performative.REQUEST, {"kind": "mystery"})
        env.sim.run()
        assert len(client.fails) == 2

    def test_stale_data_message_ignored(self, env_factory):
        env = env_factory()
        p = env.add_provider("p", "ComputeService")
        from repro.agents import Agent, Performative

        client = Agent("c")
        env.platform.register(client)
        client.ask("p", Performative.REQUEST,
                   {"kind": "data", "comp_id": "ghost", "task": "t", "from_task": "x"})
        env.sim.run()
        assert p.invocations == 0


class TestReactiveComposer:
    def test_compose_roundtrip(self, env_factory):
        env = env_factory()
        env.add_stream_mining_providers()
        composer = ReactiveComposer("composer", env.planner, env.manager, "broker")
        env.platform.register(composer)
        results = []
        composer.compose("analyze-stream", results.append, params={"n_partitions": 2})
        env.sim.run()
        (r,) = results
        assert r.success

    def test_unknown_goal_fails(self, env_factory):
        env = env_factory()
        composer = ReactiveComposer("composer", env.planner, env.manager, "broker")
        env.platform.register(composer)
        results = []
        composer.compose("nonsense-goal", results.append)
        env.sim.run()
        assert not results[0].success

    def test_missing_service_fails(self, env_factory):
        env = env_factory()  # no providers registered
        composer = ReactiveComposer("composer", env.planner, env.manager, "broker")
        env.platform.register(composer)
        results = []
        composer.compose("analyze-stream", results.append, params={"n_partitions": 2})
        env.sim.run()
        assert not results[0].success

    def test_reactive_pays_discovery_latency(self, env_factory):
        """Reactive composition includes broker round trips before execution."""
        env = env_factory()
        env.add_stream_mining_providers()
        composer = ReactiveComposer("composer", env.planner, env.manager, "broker")
        env.platform.register(composer)
        started = env.sim.now
        done_at = []
        composer.compose("analyze-stream", lambda r: done_at.append(env.sim.now),
                         params={"n_partitions": 2})
        env.sim.run()
        reactive_time = done_at[0] - started
        assert reactive_time > 0.0


class TestProactiveComposer:
    def make(self, env):
        composer = ProactiveComposer("pro", env.planner, env.manager, "broker")
        env.platform.register(composer)
        return composer

    def test_precompute_then_compose_hits_cache(self, env_factory):
        env = env_factory()
        env.add_stream_mining_providers()
        composer = self.make(env)
        ready = []
        composer.precompute("analyze-stream", {"n_partitions": 2}, ready.append)
        env.sim.run()
        assert ready == [True]
        results = []
        composer.compose("analyze-stream", results.append, params={"n_partitions": 2})
        env.sim.run()
        assert results[0].success
        assert composer.cache_hits == 1
        assert composer.cache_misses == 0

    def test_cache_miss_falls_back_to_reactive(self, env_factory):
        env = env_factory()
        env.add_stream_mining_providers()
        composer = self.make(env)
        results = []
        composer.compose("analyze-stream", results.append, params={"n_partitions": 2})
        env.sim.run()
        assert results[0].success
        assert composer.cache_misses == 1
        # second call now hits the repopulated cache
        composer.compose("analyze-stream", results.append, params={"n_partitions": 2})
        env.sim.run()
        assert composer.cache_hits == 1

    def test_proactive_faster_than_reactive(self, env_factory):
        """The paper's motivation for pre-computation: lower request latency."""
        env = env_factory()
        env.add_stream_mining_providers()
        reactive = ReactiveComposer("re", env.planner, env.manager, "broker")
        env.platform.register(reactive)
        proactive = self.make(env)
        proactive.precompute("analyze-stream", {"n_partitions": 2})
        env.sim.run()

        t0 = env.sim.now
        latencies = {}
        reactive.compose("analyze-stream",
                         lambda r: latencies.__setitem__("re", r.latency_s),
                         params={"n_partitions": 2})
        env.sim.run()
        proactive.compose("analyze-stream",
                          lambda r: latencies.__setitem__("pro", r.latency_s),
                          params={"n_partitions": 2})
        env.sim.run()
        assert latencies["pro"] < latencies["re"]

    def test_failure_invalidates_cache(self, env_factory):
        env = env_factory(timeout_s=3.0, max_retries=0)
        flaky = env.add_provider("flaky", "DecisionTreeService", fail_prob=0.999)
        env.add_provider("comb", "EnsembleCombinerService")
        composer = self.make(env)
        from repro.composition import TaskGraph, TaskSpec

        # precompute a simple goal backed by the flaky provider
        composer.precompute("analyze-stream", {"n_partitions": 1})
        env.sim.run()
        results = []
        composer.compose("analyze-stream", results.append, params={"n_partitions": 1})
        env.sim.run()
        # spectra/selection providers are missing -> precompute failed -> miss path
        # (this exercises invalidation robustly regardless of which failure occurred)
        assert composer._cache.get(composer._key("analyze-stream", {"n_partitions": 1})) is None or results

    def test_precompute_unknown_goal_reports_false(self, env_factory):
        env = env_factory()
        composer = self.make(env)
        ready = []
        composer.precompute("nonsense", on_ready=ready.append)
        env.sim.run()
        assert ready == [False]

    def test_invalidate(self, env_factory):
        env = env_factory()
        env.add_stream_mining_providers()
        composer = self.make(env)
        composer.precompute("analyze-stream", {"n_partitions": 2})
        env.sim.run()
        composer.invalidate("analyze-stream", {"n_partitions": 2})
        results = []
        composer.compose("analyze-stream", results.append, params={"n_partitions": 2})
        env.sim.run()
        assert composer.cache_misses == 1
