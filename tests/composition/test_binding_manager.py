"""Unit/integration tests for binding and composition managers."""

import pytest

from repro.composition import Binder, BindingError, TaskGraph, TaskSpec
from repro.composition.manager import CompositionManager
from repro.discovery import Constraint, Preference


def two_task_graph():
    g = TaskGraph()
    g.add_task(TaskSpec("learn", "DecisionTreeService"))
    g.add_task(TaskSpec("combine", "EnsembleCombinerService"))
    g.add_edge("learn", "combine")
    return g


class TestBinder:
    def test_bind_graph_resolves_all(self, env_factory):
        env = env_factory()
        env.add_stream_mining_providers()
        bindings = env.binder.bind_graph(two_task_graph())
        assert set(bindings) == {"learn", "combine"}
        assert bindings["learn"].provider in ("dt1", "dt2")
        assert bindings["combine"].provider == "comb"

    def test_bind_missing_category_raises(self, env_factory):
        env = env_factory()
        with pytest.raises(BindingError):
            env.binder.bind_task(TaskSpec("x", "PDESolverService"))

    def test_exclude_skips_service(self, env_factory):
        env = env_factory()
        env.add_stream_mining_providers()
        task = TaskSpec("learn", "DecisionTreeService")
        first = env.binder.bind_task(task)
        second = env.binder.bind_task(task, exclude={first.service_name})
        assert second.service_name != first.service_name

    def test_preferences_drive_choice(self, env_factory):
        env = env_factory()
        env.add_provider("busy", "DecisionTreeService", queue=9)
        env.add_provider("idle", "DecisionTreeService", queue=0)
        task = TaskSpec("learn", "DecisionTreeService",
                        preferences=(Preference("queue", "minimize"),))
        assert env.binder.bind_task(task).provider == "idle"

    def test_constraints_filter(self, env_factory):
        env = env_factory()
        env.add_provider("pricey", "DecisionTreeService", price=10.0)
        env.add_provider("cheap", "DecisionTreeService", price=1.0)
        task = TaskSpec("learn", "DecisionTreeService",
                        constraints=(Constraint("price", "<=", 5.0),))
        assert env.binder.bind_task(task).provider == "cheap"

    def test_total_advertised_cost(self, env_factory):
        env = env_factory()
        env.add_stream_mining_providers()
        bindings = env.binder.bind_graph(two_task_graph())
        assert env.binder.total_advertised_cost(bindings) == 0.0


@pytest.mark.parametrize("mode", ["centralized", "distributed"])
class TestManagerModes:
    def test_chain_executes(self, env_factory, mode):
        env = env_factory(mode=mode)
        env.add_stream_mining_providers()
        results = []
        env.manager.execute(two_task_graph(), results.append)
        env.sim.run()
        (r,) = results
        assert r.success
        assert r.attempts == 1
        assert set(r.outputs) == {"combine"}
        assert r.latency_s > 0.0
        assert r.mode == mode

    def test_stream_mining_dag_executes(self, env_factory, mode):
        env = env_factory(mode=mode)
        env.add_stream_mining_providers()
        graph = env.planner.plan("analyze-stream", {"n_partitions": 2})
        results = []
        env.manager.execute(graph, results.append, initial_inputs={
            name: {"stream": i} for i, name in enumerate(graph.sources())
        })
        env.sim.run()
        (r,) = results
        assert r.success
        assert len(r.outputs) == 1  # the single combine sink
        assert r.completeness == 1.0

    def test_no_providers_fails_fast(self, env_factory, mode):
        env = env_factory(mode=mode)
        results = []
        env.manager.execute(two_task_graph(), results.append)
        env.sim.run()
        assert not results[0].success
        assert env.manager.failed == 1

    def test_all_providers_faulty_exhausts_retries(self, env_factory, mode):
        env = env_factory(mode=mode, timeout_s=5.0, max_retries=1)
        env.add_provider("dt", "DecisionTreeService", fail_prob=0.999)
        env.add_provider("comb", "EnsembleCombinerService", fail_prob=0.999)
        results = []
        env.manager.execute(two_task_graph(), results.append)
        env.sim.run()
        (r,) = results
        assert not r.success
        assert r.attempts == 2  # initial + one retry

    def test_retry_recovers_via_rebind(self, env_factory, mode):
        env = env_factory(mode=mode, timeout_s=5.0, max_retries=3)
        # one provider always fails silently; a healthy alternative exists
        env.add_provider("flaky", "DecisionTreeService", fail_prob=0.999)
        env.add_provider("solid", "DecisionTreeService")
        env.add_provider("comb", "EnsembleCombinerService")
        results = []
        # force first binding to the flaky provider by preferring its attribute
        g = TaskGraph()
        g.add_task(TaskSpec("learn", "DecisionTreeService"))
        g.add_task(TaskSpec("combine", "EnsembleCombinerService"))
        g.add_edge("learn", "combine")
        env.manager.execute(g, results.append)
        env.sim.run()
        (r,) = results
        # depending on which provider was bound first this either succeeds
        # immediately or after a retry; it must eventually succeed
        assert r.success
        assert r.attempts <= 4

    def test_registry_withdrawal_heals_binding(self, env_factory, mode):
        """Churn withdraws a dead host's ads; rebinding then avoids it."""
        env = env_factory(mode=mode, timeout_s=5.0, max_retries=2)
        flaky = env.add_provider("flaky", "DecisionTreeService", fail_prob=0.999, queue=0)
        env.add_provider("solid", "DecisionTreeService", queue=5)
        env.add_provider("comb", "EnsembleCombinerService")
        g = TaskGraph()
        g.add_task(TaskSpec("learn", "DecisionTreeService",
                            preferences=(Preference("queue", "minimize"),)))
        g.add_task(TaskSpec("combine", "EnsembleCombinerService"))
        g.add_edge("learn", "combine")
        results = []
        env.manager.execute(g, results.append)
        # the flaky provider's service is withdrawn while the attempt hangs
        env.sim.schedule(2.0, lambda: env.registry.withdraw("svc-flaky"))
        env.sim.run()
        (r,) = results
        assert r.success
        assert r.attempts >= 2
        assert r.rebinds >= 1

    def test_concurrent_compositions_isolated(self, env_factory, mode):
        env = env_factory(mode=mode)
        env.add_stream_mining_providers()
        results = []
        env.manager.execute(two_task_graph(), results.append)
        env.manager.execute(two_task_graph(), results.append)
        env.sim.run()
        assert len(results) == 2
        assert all(r.success for r in results)
        assert env.manager.completed == 2


class TestManagerDetails:
    def test_invalid_mode_rejected(self, env_factory):
        env = env_factory()
        with pytest.raises(ValueError):
            CompositionManager("m2", env.sim, env.binder, mode="federated")

    def test_invalid_timeout_rejected(self, env_factory):
        env = env_factory()
        with pytest.raises(ValueError):
            CompositionManager("m3", env.sim, env.binder, timeout_s=0.0)

    def test_centralized_routes_all_data_through_manager(self, env_factory):
        """In centralized mode the manager sends one invoke per task."""
        env = env_factory(mode="centralized")
        env.add_stream_mining_providers()
        graph = env.planner.plan("analyze-stream", {"n_partitions": 2})
        results = []
        env.manager.execute(graph, results.append)
        env.sim.run()
        assert results[0].success
        # manager sent one invoke per task (6 tasks)
        assert env.manager.sent_count == len(graph)

    def test_distributed_manager_sends_only_role_cards(self, env_factory):
        env = env_factory(mode="distributed")
        env.add_stream_mining_providers()
        graph = env.planner.plan("analyze-stream", {"n_partitions": 2})
        results = []
        env.manager.execute(graph, results.append)
        env.sim.run()
        assert results[0].success
        assert env.manager.sent_count == len(graph)  # role cards only
        # data flowed provider-to-provider: providers sent messages
        assert sum(p.sent_count for p in env.providers.values()) >= len(graph) - 1

    def test_partial_results_on_failure(self, env_factory):
        """Graceful degradation: completed sinks reported on failure."""
        env = env_factory(mode="centralized", timeout_s=5.0, max_retries=0)
        env.add_provider("ok", "DecisionTreeService")
        env.add_provider("broken", "EnsembleCombinerService", fail_prob=0.999)
        g = TaskGraph()
        g.add_task(TaskSpec("learn", "DecisionTreeService"))  # sink 1
        g.add_task(TaskSpec("combine", "EnsembleCombinerService"))  # sink 2 (fails)
        results = []
        env.manager.execute(g, results.append)
        env.sim.run()
        (r,) = results
        assert not r.success
        assert "learn" in r.outputs
        assert r.completeness == pytest.approx(0.5)
