"""Unit tests for task graphs and the HTN planner."""

import pytest

from repro.composition import HTNPlanner, Method, TaskGraph, TaskSpec, build_pervasive_domain
from repro.composition.planner import PlanningError


def chain_graph():
    g = TaskGraph()
    g.add_task(TaskSpec("a", "ComputeService"))
    g.add_task(TaskSpec("b", "ComputeService"))
    g.add_task(TaskSpec("c", "ComputeService"))
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


class TestTaskGraph:
    def test_topological_order(self):
        g = chain_graph()
        assert g.topological_order() == ["a", "b", "c"]

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task(TaskSpec("a", "X"))
        with pytest.raises(ValueError):
            g.add_task(TaskSpec("a", "Y"))

    def test_edge_unknown_task_rejected(self):
        g = TaskGraph()
        g.add_task(TaskSpec("a", "X"))
        with pytest.raises(KeyError):
            g.add_edge("a", "ghost")

    def test_cycle_rejected_and_rolled_back(self):
        g = chain_graph()
        with pytest.raises(ValueError):
            g.add_edge("c", "a")
        # the offending edge must not remain
        assert g.successors("c") == []

    def test_sources_sinks(self):
        g = chain_graph()
        assert g.sources() == ["a"]
        assert g.sinks() == ["c"]

    def test_predecessors_successors(self):
        g = chain_graph()
        assert g.predecessors("b") == ["a"]
        assert g.successors("b") == ["c"]

    def test_levels_diamond(self):
        g = TaskGraph()
        for n in "abcd":
            g.add_task(TaskSpec(n, "X"))
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("b", "d")
        g.add_edge("c", "d")
        assert g.levels() == [["a"], ["b", "c"], ["d"]]

    def test_contains_len(self):
        g = chain_graph()
        assert "a" in g and "z" not in g
        assert len(g) == 3

    def test_to_request_carries_category(self):
        spec = TaskSpec("t", "PrinterService", inputs=("Document",))
        req = spec.to_request()
        assert req.category == "PrinterService"
        assert req.inputs == ("Document",)


class TestHTNPlanner:
    def test_stream_mining_decomposition_shape(self):
        planner = HTNPlanner(build_pervasive_domain())
        graph = planner.plan("analyze-stream", {"n_partitions": 3})
        names = graph.topological_order()
        learns = [n for n in names if n.startswith("learn-tree")]
        spectra = [n for n in names if n.startswith("spectrum")]
        selects = [n for n in names if n.startswith("select-dominant")]
        combines = [n for n in names if n.startswith("combine-ensemble")]
        assert len(learns) == 3 and len(spectra) == 3
        assert len(selects) == 1 and len(combines) == 1
        # fan-in: all spectra feed the select task
        assert graph.predecessors(selects[0]) == sorted(spectra)
        assert graph.successors(selects[0]) == combines
        assert graph.sinks() == combines

    def test_stream_mining_parametric_width(self):
        planner = HTNPlanner(build_pervasive_domain())
        graph = planner.plan("analyze-stream", {"n_partitions": 5})
        assert len([n for n in graph.topological_order() if n.startswith("learn")]) == 5

    def test_temperature_distribution_chain(self):
        planner = HTNPlanner(build_pervasive_domain())
        graph = planner.plan("temperature-distribution")
        order = graph.topological_order()
        assert len(order) == 2
        assert order[0].startswith("collect-readings")
        assert order[1].startswith("solve-pde")

    def test_unknown_goal_raises(self):
        planner = HTNPlanner(build_pervasive_domain())
        with pytest.raises(PlanningError):
            planner.plan("world-peace")

    def test_invalid_params_raise(self):
        planner = HTNPlanner(build_pervasive_domain())
        with pytest.raises(PlanningError):
            planner.plan("analyze-stream", {"n_partitions": 0})

    def test_backtracking_over_methods(self):
        """First method inapplicable; second used."""
        domain = {
            "goal": [
                Method(name="guarded", applicable=lambda p: p.get("big", False),
                       subtasks=[TaskSpec("huge", "ComputeService")]),
                Method(name="fallback", subtasks=[TaskSpec("small", "ComputeService")]),
            ]
        }
        graph = HTNPlanner(domain).plan("goal", {})
        assert graph.topological_order() == ["small#0"]

    def test_nested_compound_tasks(self):
        domain = {
            "outer": [Method(name="m", subtasks=["inner", TaskSpec("after", "X")], edges=[(0, 1)])],
            "inner": [Method(name="i", subtasks=[TaskSpec("first", "X")])],
        }
        graph = HTNPlanner(domain).plan("outer")
        order = graph.topological_order()
        assert order[0].startswith("first")
        assert order[1].startswith("after")
        assert graph.predecessors(order[1]) == [order[0]]

    def test_is_compound(self):
        planner = HTNPlanner(build_pervasive_domain())
        assert planner.is_compound("analyze-stream")
        assert not planner.is_compound("learn-tree-0")

    def test_unique_task_names_across_replans(self):
        planner = HTNPlanner(build_pervasive_domain())
        g1 = planner.plan("analyze-stream", {"n_partitions": 2})
        g2 = planner.plan("analyze-stream", {"n_partitions": 2})
        assert len(g1) == len(g2) == 6
