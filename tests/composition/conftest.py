"""Shared fixtures for composition tests."""

import pytest

from repro.agents import AgentPlatform
from repro.composition import (
    Binder,
    CompositionManager,
    HTNPlanner,
    ServiceProviderAgent,
    build_pervasive_domain,
)
from repro.discovery import (
    BrokerAgent,
    SemanticMatcher,
    ServiceDescription,
    ServiceRegistry,
    build_service_ontology,
)
from repro.resilience import BreakerBoard
from repro.simkernel import RandomStreams, Simulator


class CompositionEnv:
    """A wired-side composition testbed: platform, registry, providers."""

    def __init__(self, mode="centralized", timeout_s=10.0, max_retries=2, breaker_kwargs=None):
        self.sim = Simulator()
        self.streams = RandomStreams(42)
        self.platform = AgentPlatform(self.sim)
        self.registry = ServiceRegistry(SemanticMatcher(build_service_ontology()))
        self.binder = Binder(self.registry)
        self.breakers = (
            BreakerBoard(self.sim, **breaker_kwargs) if breaker_kwargs is not None else None
        )
        self.manager = CompositionManager(
            "mgr", self.sim, self.binder, mode=mode, timeout_s=timeout_s,
            max_retries=max_retries, breakers=self.breakers,
        )
        self.platform.register(self.manager)
        self.broker = BrokerAgent("broker", self.registry)
        self.platform.register(self.broker)
        self.planner = HTNPlanner(build_pervasive_domain())
        self.providers = {}

    def add_provider(self, name, category, fail_prob=0.0, ops=1e6, rate=1e8, executor=None, **attrs):
        desc = ServiceDescription(
            name=f"svc-{name}",
            category=category,
            attributes=attrs,
            ops=ops,
        )
        provider = ServiceProviderAgent(
            name,
            desc,
            self.sim,
            compute_rate=rate,
            executor=executor,
            fail_prob=fail_prob,
            rng=self.streams.get(f"fail-{name}"),
        )
        self.platform.register(provider)
        self.registry.advertise(desc)
        self.providers[name] = provider
        return provider

    def add_stream_mining_providers(self, fail_prob=0.0):
        self.add_provider("dt1", "DecisionTreeService", fail_prob=fail_prob)
        self.add_provider("dt2", "DecisionTreeService", fail_prob=fail_prob)
        self.add_provider("fft1", "FourierSpectrumService", fail_prob=fail_prob)
        self.add_provider("fft2", "FourierSpectrumService", fail_prob=fail_prob)
        self.add_provider("comb", "EnsembleCombinerService", fail_prob=fail_prob)


@pytest.fixture
def env_factory():
    return CompositionEnv
