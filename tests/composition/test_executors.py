"""Tests for the real-computation executor library."""

import numpy as np
import pytest

from repro.composition import HTNPlanner, build_pervasive_domain
from repro.composition.executors import (
    build_stream_mining_providers,
    make_aggregation_executor,
    make_combiner_executor,
    make_decision_tree_executor,
    make_pde_executor,
    make_spectrum_executor,
)
from repro.datamining import DecisionTree, LabeledStream, accuracy, partition_stream

D = 8


class TestIndividualExecutors:
    def test_decision_tree_executor(self):
        stream = LabeledStream(D, np.random.default_rng(0), noise=0.0)
        batch = stream.batch(300)
        tree = make_decision_tree_executor()( {}, {"__initial__": batch})
        assert isinstance(tree, DecisionTree)
        X, y = stream.batch(200)
        assert accuracy(tree.predict, X, y) > 0.7

    def test_spectrum_executor_tree_mode(self):
        stream = LabeledStream(D, np.random.default_rng(1), noise=0.0)
        tree = DecisionTree(max_depth=3).fit(*stream.batch(300))
        spectrum = make_spectrum_executor(D)({}, {"learn": tree})
        assert spectrum.shape == (2**D,)
        assert np.sum(spectrum**2) == pytest.approx(1.0)

    def test_spectrum_executor_select_mode(self):
        rng = np.random.default_rng(2)
        spectra = {f"s{i}": rng.normal(size=2**D) for i in range(3)}
        out = make_spectrum_executor(D)({"k_coefficients": 10}, spectra)
        assert np.count_nonzero(out) == 10

    def test_combiner_executor(self):
        spectrum = np.zeros(2**D)
        spectrum[0] = 1.0  # constant +1 function -> label 0
        fn = make_combiner_executor(D)({}, {"select": spectrum})
        X = np.random.default_rng(3).integers(0, 2, size=(20, D), dtype=np.uint8)
        assert np.all(fn.predict(X) == 0)

    def test_pde_executor(self):
        positions = np.array([[5.0, 5.0], [25.0, 25.0]])
        values = np.array([100.0, 20.0])
        field = make_pde_executor(area_m=30.0, resolution=12)(
            {}, {"collect": {"positions": positions, "values": values}})
        assert field.shape == (12, 12)
        assert 20.0 - 1e-6 <= field.min() and field.max() <= 100.0 + 1e-6

    def test_aggregation_executor(self):
        ex = make_aggregation_executor()
        assert ex({}, {"in": [1.0, 2.0, 3.0]}) == pytest.approx(2.0)
        assert ex({"func": "MAX"}, {"in": [1.0, 9.0]}) == pytest.approx(9.0)


class TestStreamMiningEconomy:
    @pytest.mark.parametrize("mode", ["centralized", "distributed"])
    def test_full_pipeline_with_real_ml(self, env_factory, mode):
        env = env_factory(mode=mode)
        build_stream_mining_providers(env.platform, env.registry, env.sim, d=D)
        stream = LabeledStream(D, np.random.default_rng(5), noise=0.05)
        X, y = stream.batch(900)
        parts = partition_stream(X, y, 3)
        graph = env.planner.plan("analyze-stream", {"n_partitions": 3})
        initial = {name: parts[i] for i, name in enumerate(graph.sources())}
        results = []
        env.manager.execute(graph, results.append, initial_inputs=initial)
        env.sim.run()
        (r,) = results
        assert r.success
        combined = next(iter(r.outputs.values()))
        X_test, y_test = stream.batch(500)
        assert accuracy(combined.predict, X_test, y_test) > 0.7

    def test_provider_count_and_advertisements(self, env_factory):
        env = env_factory()
        agents = build_stream_mining_providers(env.platform, env.registry, env.sim,
                                               d=D, n_miners=4)
        assert len(agents) == 6
        assert len(env.registry) == 6
        assert env.platform.is_registered("miner-3")
