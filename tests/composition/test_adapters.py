"""Tests for paradigm adapters (mediating interfaces)."""

import pytest

from repro.agents import Agent, Performative
from repro.composition import TaskGraph, TaskSpec
from repro.composition.adapters import (
    MailboxServiceAgent,
    ParadigmAdapter,
    RPCServiceAgent,
)
from repro.discovery import ServiceDescription


def add_rpc_service(env, backend_name, adapter_name, category, func, method="run"):
    rpc = RPCServiceAgent(backend_name, env.sim, methods={method: func})
    env.platform.register(rpc)
    adapter = ParadigmAdapter(adapter_name, backend_name, "rpc", method=method)
    env.platform.register(adapter)
    desc = ServiceDescription(name=f"svc-{adapter_name}", category=category)
    desc.provider = adapter_name
    env.registry.advertise(desc)
    return rpc, adapter


def add_msg_service(env, backend_name, adapter_name, category, func):
    mbx = MailboxServiceAgent(backend_name, env.sim, func=func)
    env.platform.register(mbx)
    adapter = ParadigmAdapter(adapter_name, backend_name, "msg")
    env.platform.register(adapter)
    desc = ServiceDescription(name=f"svc-{adapter_name}", category=category)
    desc.provider = adapter_name
    env.registry.advertise(desc)
    return mbx, adapter


def two_task_graph():
    g = TaskGraph()
    g.add_task(TaskSpec("learn", "DecisionTreeService"))
    g.add_task(TaskSpec("combine", "EnsembleCombinerService"))
    g.add_edge("learn", "combine")
    return g


class TestForeignEndpoints:
    def test_rpc_endpoint_answers_rpc(self, env_factory):
        env = env_factory()
        rpc = RPCServiceAgent("calc", env.sim, methods={"double": lambda a: a * 2})
        env.platform.register(rpc)
        client = Agent("client")
        client.replies = []
        client.on_raw(client.replies.append)
        env.platform.register(client)
        client.send("calc", {"call_id": 7, "method": "double", "args": 21},
                    content_type="rpc")
        env.sim.run()
        assert client.replies[0].content == {"call_id": 7, "return": 42}
        assert rpc.calls == 1

    def test_rpc_unknown_method_faults(self, env_factory):
        env = env_factory()
        rpc = RPCServiceAgent("calc", env.sim, methods={})
        env.platform.register(rpc)
        client = Agent("client")
        client.replies = []
        client.on_raw(client.replies.append)
        env.platform.register(client)
        client.send("calc", {"call_id": 1, "method": "nope", "args": None},
                    content_type="rpc")
        env.sim.run()
        assert "fault" in client.replies[0].content

    def test_rpc_ignores_acl(self, env_factory):
        env = env_factory()
        rpc = RPCServiceAgent("calc", env.sim, methods={"run": lambda a: a})
        env.platform.register(rpc)
        client = Agent("client")
        env.platform.register(client)
        client.ask("calc", Performative.REQUEST, {"kind": "invoke"})
        env.sim.run()
        assert rpc.calls == 0  # the point: no adapter, no composition

    def test_mailbox_endpoint(self, env_factory):
        env = env_factory()
        mbx = MailboxServiceAgent("box", env.sim, func=lambda p: p + 1)
        env.platform.register(mbx)
        client = Agent("client")
        client.replies = []
        client.on_raw(client.replies.append)
        env.platform.register(client)
        client.send("box", {"payload": 41, "reply_to": "client"}, content_type="msg")
        env.sim.run()
        assert client.replies[0].content == {"payload": 42}

    def test_validation(self, env_factory):
        env = env_factory()
        with pytest.raises(ValueError):
            ParadigmAdapter("a", "b", "carrier-pigeon")
        with pytest.raises(ValueError):
            RPCServiceAgent("r", env.sim, {}, service_time_s=-1.0)


@pytest.mark.parametrize("mode", ["centralized", "distributed"])
class TestAdaptedComposition:
    def test_mixed_paradigm_graph_executes(self, env_factory, mode):
        """Native + RPC-adapted + msg-adapted services in one composition."""
        env = env_factory(mode=mode)
        env.add_provider("native", "FourierSpectrumService")
        add_rpc_service(env, "legacy-soap", "rpc-miner", "DecisionTreeService",
                        func=lambda args: {"tree": "from-rpc", "saw": sorted(args["inputs"])})
        add_msg_service(env, "legacy-mq", "mq-combiner", "EnsembleCombinerService",
                        func=lambda payload: {"combined": True})
        g = TaskGraph()
        g.add_task(TaskSpec("learn", "DecisionTreeService"))
        g.add_task(TaskSpec("spectrum", "FourierSpectrumService"))
        g.add_task(TaskSpec("combine", "EnsembleCombinerService"))
        g.add_edge("learn", "spectrum")
        g.add_edge("spectrum", "combine")
        results = []
        env.manager.execute(g, results.append)
        env.sim.run()
        (r,) = results
        assert r.success
        assert r.outputs["combine"] == {"combined": True}

    def test_rpc_result_payload_threads_through(self, env_factory, mode):
        env = env_factory(mode=mode)
        add_rpc_service(env, "soap-a", "rpc-a", "DecisionTreeService",
                        func=lambda args: "tree-payload")
        add_rpc_service(env, "soap-b", "rpc-b", "EnsembleCombinerService",
                        func=lambda args: args["inputs"])
        results = []
        env.manager.execute(two_task_graph(), results.append)
        env.sim.run()
        (r,) = results
        assert r.success
        # the combiner saw the learn task's output by name
        assert r.outputs["combine"] == {"learn": "tree-payload"}

    def test_silent_backend_times_out(self, env_factory, mode):
        env = env_factory(mode=mode, timeout_s=5.0, max_retries=0)
        # adapter points at a backend that is never registered
        adapter = ParadigmAdapter("rpc-ghost", "missing-backend", "rpc")
        env.platform.register(adapter)
        desc = ServiceDescription(name="svc-ghost", category="DecisionTreeService")
        desc.provider = "rpc-ghost"
        env.registry.advertise(desc)
        env.add_provider("comb", "EnsembleCombinerService")
        results = []
        env.manager.execute(two_task_graph(), results.append)
        env.sim.run()
        assert not results[0].success
