"""Cross-cutting property-based tests (hypothesis).

Each property here is an invariant the system's correctness rests on,
checked over randomized inputs rather than hand-picked cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.discovery import (
    SemanticMatcher,
    ServiceDescription,
    ServiceRequest,
    build_service_ontology,
)
from repro.discovery.matcher import MatchDegree
from repro.network import (
    Battery,
    Message,
    RadioEnergyModel,
    RadioModel,
    Topology,
    WirelessNetwork,
)
from repro.simkernel import Simulator

ONT = build_service_ontology()
SERVICE_CLASSES = sorted(ONT.descendants("Service"))


class TestNetworkEnergyConservation:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=3, max_value=12),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=8),
    )
    def test_battery_draws_equal_monitor_total(self, n, seed, n_msgs):
        """Every joule the monitor counts is drawn from exactly one battery."""
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 40, size=(n, 2))
        topo = Topology(pos, range_m=25.0)
        sim = Simulator()
        batteries = [Battery(10.0) for _ in range(n)]
        net = WirelessNetwork(
            sim, topo, RadioModel(bandwidth_bps=1e6, latency_s=0.01, range_m=25.0),
            RadioEnergyModel(), batteries=batteries, rng=np.random.default_rng(seed),
        )
        for _ in range(n_msgs):
            src, dst = rng.integers(0, n, size=2)
            net.send(Message(src=int(src), dst=int(dst), size_bits=500.0))
        sim.run()
        drawn = sum(b.consumed for b in batteries)
        counted = net.monitor.counter("net.energy_j").value
        assert drawn == pytest.approx(counted, rel=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=500))
    def test_receipt_time_never_before_send(self, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 30, size=(6, 2))
        topo = Topology(pos, range_m=40.0)
        sim = Simulator()
        net = WirelessNetwork(sim, topo,
                              RadioModel(bandwidth_bps=1e6, latency_s=0.01, range_m=40.0))
        receipts = []
        sent_at = sim.now
        net.send(Message(src=0, dst=5, size_bits=100.0), receipts.append)
        sim.run()
        assert receipts[0].time >= sent_at


class TestMatcherProperties:
    @settings(max_examples=50)
    @given(st.sampled_from(SERVICE_CLASSES), st.sampled_from(SERVICE_CLASSES))
    def test_degree_consistent_with_subsumption(self, requested, advertised):
        matcher = SemanticMatcher(ONT)
        degree = matcher.category_degree(requested, advertised)
        if requested == advertised:
            assert degree is MatchDegree.EXACT
        elif ONT.subsumes(requested, advertised):
            assert degree is MatchDegree.PLUGIN
        elif ONT.subsumes(advertised, requested):
            assert degree is MatchDegree.SUBSUMES
        else:
            assert degree in (MatchDegree.OVERLAP, MatchDegree.FAIL)

    @settings(max_examples=25)
    @given(st.lists(st.sampled_from(SERVICE_CLASSES), min_size=1, max_size=15),
           st.sampled_from(SERVICE_CLASSES))
    def test_rank_sorted_and_fail_free(self, categories, requested):
        matcher = SemanticMatcher(ONT)
        candidates = [
            ServiceDescription(name=f"s{i}", category=c)
            for i, c in enumerate(categories)
        ]
        ranked = matcher.rank(ServiceRequest(category=requested), candidates)
        degrees = [int(r.degree) for r in ranked]
        assert degrees == sorted(degrees, reverse=True)
        assert all(r.degree is not MatchDegree.FAIL for r in ranked)
        assert all(0.0 <= r.score <= 1.0 for r in ranked)

    @settings(max_examples=25)
    @given(st.lists(st.sampled_from(SERVICE_CLASSES), min_size=1, max_size=10),
           st.sampled_from(SERVICE_CLASSES), st.integers(min_value=1, max_value=5))
    def test_top_k_is_prefix_of_full_ranking(self, categories, requested, k):
        matcher = SemanticMatcher(ONT)
        candidates = [ServiceDescription(name=f"s{i}", category=c)
                      for i, c in enumerate(categories)]
        req = ServiceRequest(category=requested)
        full = [r.service.name for r in matcher.rank(req, candidates)]
        top = [r.service.name for r in matcher.rank(req, candidates, top_k=k)]
        assert top == full[:k]


class TestTaskGraphProperties:
    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=500))
    def test_random_dag_topological_order_valid(self, n, seed):
        from repro.composition import TaskGraph, TaskSpec

        rng = np.random.default_rng(seed)
        g = TaskGraph()
        for i in range(n):
            g.add_task(TaskSpec(f"t{i}", "ComputeService"))
        # random forward edges only (guaranteed acyclic)
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.3:
                    g.add_edge(f"t{i}", f"t{j}")
        order = g.topological_order()
        position = {name: k for k, name in enumerate(order)}
        for name in order:
            for succ in g.successors(name):
                assert position[name] < position[succ]
        # levels partition the tasks
        level_names = [x for level in g.levels() for x in level]
        assert sorted(level_names) == sorted(order)

    @settings(max_examples=20)
    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=100))
    def test_back_edge_always_rejected(self, n, seed):
        from repro.composition import TaskGraph, TaskSpec

        g = TaskGraph()
        for i in range(n):
            g.add_task(TaskSpec(f"t{i}", "X"))
        for i in range(n - 1):
            g.add_edge(f"t{i}", f"t{i+1}")
        rng = np.random.default_rng(seed)
        i = int(rng.integers(1, n))
        j = int(rng.integers(0, i))
        with pytest.raises(ValueError):
            g.add_edge(f"t{i}", f"t{j}")


class TestFourierProperties:
    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=500))
    def test_wht_linearity(self, d, seed):
        from repro.datamining import walsh_hadamard

        rng = np.random.default_rng(seed)
        n = 2**d
        a, b = rng.normal(size=n), rng.normal(size=n)
        alpha, beta = rng.normal(), rng.normal()
        lhs = walsh_hadamard(alpha * a + beta * b)
        rhs = alpha * walsh_hadamard(a) + beta * walsh_hadamard(b)
        assert np.allclose(lhs, rhs)

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=500),
           st.integers(min_value=0, max_value=64))
    def test_truncation_idempotent_and_energy_bounded(self, d, seed, k):
        from repro.datamining import truncate_spectrum, walsh_hadamard

        rng = np.random.default_rng(seed)
        w = walsh_hadamard(rng.choice([-1.0, 1.0], size=2**d))
        t = truncate_spectrum(w, k)
        assert np.array_equal(truncate_spectrum(t, k), t)
        assert np.sum(t**2) <= np.sum(w**2) + 1e-12
        assert np.count_nonzero(t) <= k

    @settings(max_examples=15)
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=200))
    def test_full_spectrum_reconstruction_exact(self, d, seed):
        from repro.datamining import FourierFunction, spectrum_of
        from repro.datamining.fourier import all_inputs

        rng = np.random.default_rng(seed)
        table = rng.integers(0, 2, size=2**d).astype(np.uint8)
        X = all_inputs(d)

        def predict(Xq):
            weights = 1 << np.arange(d - 1, -1, -1, dtype=np.uint32)
            idx = (np.asarray(Xq, dtype=np.uint32) @ weights).astype(np.intp)
            return table[idx]

        fn = FourierFunction(spectrum_of(predict, d), d)
        assert np.array_equal(fn.predict(X), predict(X))


class TestSimulatorProperties:
    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(max_examples=20)
    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=50.0),
                              st.integers(min_value=0, max_value=3)),
                    min_size=1, max_size=30))
    def test_priority_respected_within_time(self, items):
        sim = Simulator()
        fired = []
        for d, p in items:
            sim.schedule(d, lambda d=d, p=p: fired.append((sim.now, p)), priority=p)
        sim.run()
        for (t1, p1), (t2, p2) in zip(fired, fired[1:]):
            assert t1 < t2 or (t1 == t2 and p1 <= p2)
