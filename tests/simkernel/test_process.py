"""Unit tests for generator-based processes."""

import pytest

from repro.simkernel import Simulator, Process, Delay, Waiter, Interrupt
from repro.simkernel.simulator import SimulationError


def test_process_runs_delays_sequentially():
    sim = Simulator()
    log = []

    def body():
        log.append(("start", sim.now))
        yield Delay(2.0)
        log.append(("mid", sim.now))
        yield Delay(3.0)
        log.append(("end", sim.now))

    Process(sim, body())
    sim.run()
    assert log == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]


def test_process_return_value():
    sim = Simulator()

    def body():
        yield Delay(1.0)
        return 42

    proc = Process(sim, body())
    sim.run()
    assert proc.result == 42
    assert not proc.alive


def test_process_done_waiter_carries_result():
    sim = Simulator()
    seen = []

    def worker():
        yield Delay(1.0)
        return "payload"

    def watcher(target):
        value = yield target.done
        seen.append(value)

    w = Process(sim, worker())
    Process(sim, watcher(w))
    sim.run()
    assert seen == ["payload"]


def test_process_waits_on_another_process():
    sim = Simulator()
    log = []

    def worker():
        yield Delay(5.0)
        return "done"

    def boss():
        w = Process(sim, worker())
        result = yield w
        log.append((sim.now, result))

    Process(sim, boss())
    sim.run()
    assert log == [(5.0, "done")]


def test_waiter_blocks_until_trigger():
    sim = Simulator()
    gate = Waiter(sim)
    log = []

    def waiter_proc():
        value = yield gate
        log.append((sim.now, value))

    Process(sim, waiter_proc())
    sim.schedule(7.0, lambda: gate.trigger("opened"))
    sim.run()
    assert log == [(7.0, "opened")]


def test_waiter_multiple_processes_resumed_in_order():
    sim = Simulator()
    gate = Waiter(sim)
    log = []

    def make(name):
        def body():
            yield gate
            log.append(name)

        return body

    Process(sim, make("p1")())
    Process(sim, make("p2")())
    sim.schedule(1.0, lambda: gate.trigger())
    sim.run()
    assert log == ["p1", "p2"]


def test_waiter_trigger_twice_is_error():
    sim = Simulator()
    gate = Waiter(sim)
    gate.trigger()
    with pytest.raises(SimulationError):
        gate.trigger()


def test_yield_on_already_triggered_waiter_resumes_immediately():
    sim = Simulator()
    gate = Waiter(sim)
    gate.trigger("early")
    log = []

    def body():
        yield Delay(3.0)
        value = yield gate
        log.append((sim.now, value))

    Process(sim, body())
    sim.run()
    assert log == [(3.0, "early")]


def test_interrupt_raises_inside_process():
    sim = Simulator()
    log = []

    def body():
        try:
            yield Delay(100.0)
            log.append("not reached")
        except Interrupt as exc:
            log.append(("interrupted", sim.now, exc.cause))

    proc = Process(sim, body())
    sim.schedule(5.0, lambda: proc.interrupt("node-died"))
    sim.run()
    assert log == [("interrupted", 5.0, "node-died")]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def body():
        yield Delay(1.0)

    proc = Process(sim, body())
    sim.run()
    assert not proc.alive
    proc.interrupt("late")  # must not raise


def test_uncaught_interrupt_terminates_process():
    sim = Simulator()

    def body():
        yield Delay(100.0)

    proc = Process(sim, body())
    sim.schedule(1.0, lambda: proc.interrupt())
    sim.run()
    assert not proc.alive
    assert proc.result is None


def test_interrupt_cancels_pending_delay():
    sim = Simulator()
    log = []

    def body():
        try:
            yield Delay(100.0)
        except Interrupt:
            log.append(sim.now)

    proc = Process(sim, body())
    sim.schedule(2.0, lambda: proc.interrupt())
    sim.run()
    assert log == [2.0]
    assert sim.now == 2.0  # the 100.0 delay never fires


def test_yield_bad_command_raises():
    sim = Simulator()

    def body():
        yield "nonsense"

    Process(sim, body())
    with pytest.raises(SimulationError):
        sim.run()


def test_process_start_is_deferred():
    sim = Simulator()
    log = []

    def body():
        log.append(sim.now)
        yield Delay(0.0)

    Process(sim, body())
    assert log == []  # nothing runs before sim.run()
    sim.run()
    assert log == [0.0]
