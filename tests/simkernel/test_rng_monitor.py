"""Unit tests for random streams and monitors."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simkernel import RandomStreams, Monitor


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(1)
        assert streams.get("x") is streams.get("x")

    def test_same_seed_same_sequence(self):
        a = RandomStreams(123).get("mobility").random(5)
        b = RandomStreams(123).get("mobility").random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        streams = RandomStreams(123)
        a = streams.get("a").random(5)
        b = streams.get("b").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("x").random(5)
        b = RandomStreams(2).get("x").random(5)
        assert not np.array_equal(a, b)

    def test_new_stream_does_not_perturb_existing(self):
        """Key reproducibility property: creating a new named stream never
        changes the draws of an existing stream."""
        s1 = RandomStreams(7)
        first = s1.get("alpha").random(3)

        s2 = RandomStreams(7)
        s2.get("unrelated").random(100)
        second = s2.get("alpha").random(3)
        assert np.array_equal(first, second)

    def test_spawn_is_deterministic(self):
        a = RandomStreams(5).spawn("child").get("x").random(4)
        b = RandomStreams(5).spawn("child").get("x").random(4)
        assert np.array_equal(a, b)

    def test_spawn_differs_from_parent(self):
        parent = RandomStreams(5)
        child = parent.spawn("child")
        assert not np.array_equal(parent.get("x").random(4), child.get("x").random(4))

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    def test_get_reproducible_property(self, seed, name):
        a = RandomStreams(seed).get(name).integers(0, 1 << 30)
        b = RandomStreams(seed).get(name).integers(0, 1 << 30)
        assert a == b


class TestMonitor:
    def test_counter_accumulates(self):
        mon = Monitor()
        c = mon.counter("msgs")
        c.add()
        c.add(2.5)
        assert c.value == 3.5
        assert c.increments == 2

    def test_counter_identity(self):
        mon = Monitor()
        assert mon.counter("x") is mon.counter("x")

    def test_counter_reset(self):
        mon = Monitor()
        c = mon.counter("x")
        c.add(10)
        c.reset()
        assert c.value == 0.0
        assert c.increments == 0

    def test_counter_rejects_non_finite(self):
        import math

        mon = Monitor()
        c = mon.counter("x")
        for bad in (math.inf, -math.inf, math.nan):
            with pytest.raises(ValueError):
                c.add(bad)
        # a rejected add must not poison the counter
        assert c.value == 0.0
        assert c.increments == 0

    def test_series_reductions(self):
        mon = Monitor()
        s = mon.series("latency")
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]:
            s.record(t, v)
        assert s.mean() == pytest.approx(2.0)
        assert s.total() == pytest.approx(6.0)
        assert s.max() == pytest.approx(3.0)
        assert s.last() == pytest.approx(2.0)
        assert len(s) == 3

    def test_empty_series_reductions(self):
        mon = Monitor()
        s = mon.series("empty")
        assert math.isnan(s.mean())
        assert s.total() == 0.0
        assert math.isnan(s.max())
        assert math.isnan(s.last())
        assert math.isnan(s.percentile(50))

    def test_series_percentile(self):
        mon = Monitor()
        s = mon.series("x")
        for i in range(101):
            s.record(float(i), float(i))
        assert s.percentile(50) == pytest.approx(50.0)
        assert s.percentile(95) == pytest.approx(95.0)

    def test_series_arrays_are_copies(self):
        mon = Monitor()
        s = mon.series("x")
        s.record(0.0, 1.0)
        arr = s.values
        arr[0] = 999.0
        assert s.values[0] == 1.0

    def test_summary_merges_counters_and_series(self):
        mon = Monitor()
        mon.counter("sent").add(4)
        mon.series("rt").record(0.0, 2.0)
        summary = mon.summary()
        assert summary["sent"] == 4
        assert summary["rt.mean"] == pytest.approx(2.0)
        assert summary["rt.total"] == pytest.approx(2.0)

    def test_summary_skips_empty_series(self):
        mon = Monitor()
        mon.series("empty")
        assert "empty.mean" not in mon.summary()
