"""Unit tests for the DES event loop."""

import pytest

from repro.simkernel import Simulator, SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=7.5)
    assert sim.now == 7.5


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_fifo_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_priority_breaks_ties():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("normal"), priority=10)
    sim.schedule(1.0, lambda: order.append("high"), priority=0)
    sim.schedule(1.0, lambda: order.append("low"), priority=20)
    sim.run()
    assert order == ["high", "normal", "low"]


def test_zero_delay_allowed():
    sim = Simulator()
    fired = []
    sim.schedule(0.0, lambda: fired.append(True))
    sim.run()
    assert fired == [True]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_nan_and_inf_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(float("inf"), lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_stops_and_sets_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 10]


def test_run_until_with_empty_heap_advances_clock():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(True))
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(2.0, lambda: fired.append("nested"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "nested"]
    assert sim.now == 3.0


def test_stop_from_callback():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    # resume after stop
    sim.run()
    assert fired == [1, 2]


def test_max_events_limit():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_events_executed_counts_only_fired():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    sim.run()
    assert sim.events_executed == 1


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_deterministic_interleaving_regression():
    """Exact event order is stable across runs (reproducibility contract)."""

    def build():
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(1.0, lambda: (log.append("b"), sim.schedule(0.0, lambda: log.append("b0"))))
        sim.schedule(1.0, lambda: log.append("c"), priority=0)
        sim.run()
        return log

    assert build() == build() == ["c", "a", "b", "b0"]
