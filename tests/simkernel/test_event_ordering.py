"""Event-heap ordering invariants.

The kernel's reproducibility rests on the total order ``(time, priority,
seq)`` and on lazy cancellation never perturbing it.  These tests pin:
FIFO order for same-time/same-priority events, cancelled heap heads
being skipped without advancing the clock, and ``EventHandle.cancel``
being a harmless no-op after the event fired.
"""

from repro.simkernel import Simulator
from repro.simkernel.event import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL


def test_same_time_same_priority_fifo_by_schedule_order():
    sim = Simulator()
    fired = []
    for tag in range(8):
        sim.schedule(5.0, lambda tag=tag: fired.append(tag))
    sim.run()
    assert fired == list(range(8))


def test_priority_breaks_time_ties():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("normal"), priority=PRIORITY_NORMAL)
    sim.schedule(5.0, lambda: fired.append("low"), priority=PRIORITY_LOW)
    sim.schedule(5.0, lambda: fired.append("high"), priority=PRIORITY_HIGH)
    sim.schedule(1.0, lambda: fired.append("earlier"))
    sim.run()
    assert fired == ["earlier", "high", "normal", "low"]


def test_zero_delay_events_fifo_behind_same_time_peers():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(0.0, lambda: fired.append("nested"))

    sim.schedule(1.0, first)
    sim.schedule(1.0, lambda: fired.append("second"))
    sim.run()
    # the nested zero-delay event was scheduled after "second", so FIFO
    # seq order runs it last
    assert fired == ["first", "second", "nested"]


def test_cancelled_head_skipped_without_advancing_clock():
    sim = Simulator()
    fired = []
    doomed = sim.schedule(1.0, lambda: fired.append("doomed"))
    sim.schedule(5.0, lambda: fired.append(sim.now))
    doomed.cancel()
    assert sim.step()  # skips the cancelled head, executes the live event
    assert fired == [5.0]
    assert sim.now == 5.0  # never dwelt at t=1
    assert sim.events_executed == 1


def test_step_on_all_cancelled_heap_is_exhaustion():
    sim = Simulator()
    for _ in range(3):
        sim.schedule(1.0, lambda: None).cancel()
    assert sim.step() is False
    assert sim.now == 0.0
    assert sim.pending == 0  # the skips drained the heap


def test_cancel_after_firing_is_a_noop():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1, 2]
    handle.cancel()  # must not raise, must not un-run anything
    handle.cancel()  # idempotent too
    assert handle.cancelled
    assert sim.events_executed == 2


def test_cancel_before_firing_prevents_execution():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    handle.cancel()  # idempotent
    sim.run()
    assert fired == []
    assert sim.events_executed == 0
