"""Calendar queue vs heap: bit-identical event sequences.

The calendar queue is a pure wall-clock optimization -- both event lists
must dispatch the exact same (time, priority, seq) sequence for any
workload, including the adversarial cases: cancellations, zero delays,
same-time/priority ties, wide and narrow time distributions.  These tests
are the proof the simulator's ``queue=`` knob never changes a result.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simkernel import CalendarQueue, HeapEventList, Simulator
from repro.simkernel.eventlist import COMPACT_MIN_TOMBSTONES


def run_workload(queue: str, seed: int, *, n_roots: int = 60) -> list[tuple]:
    """Drive one simulator through a randomized self-scheduling workload.

    Returns the full dispatch trace: (time, tag) per executed event.  The
    workload covers nested scheduling, priorities, zero delays, cancels
    (including cancelling from inside callbacks), and heavy same-time ties.
    """
    sim = Simulator(queue=queue)
    rng = np.random.default_rng(seed)
    trace: list[tuple] = []
    handles: list = []

    def make_cb(tag: int, depth: int):
        def cb() -> None:
            trace.append((sim.now, tag))
            if depth > 0:
                for k in range(int(rng.integers(0, 3))):
                    delay = float(rng.choice([0.0, 0.25, rng.random() * 8.0]))
                    pri = int(rng.integers(0, 3))
                    h = sim.schedule(delay, make_cb(tag * 10 + k, depth - 1),
                                     priority=pri)
                    handles.append(h)
                if handles and rng.random() < 0.3:
                    victim = handles[int(rng.integers(0, len(handles)))]
                    victim.cancel()

        return cb

    for i in range(n_roots):
        t = float(rng.choice([0.0, 1.0, rng.random() * 50.0]))
        sim.schedule_at(t, make_cb(i, 2), priority=int(rng.integers(0, 2)))
    sim.run()
    return trace


class TestCalendarHeapEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_bit_identical_traces(self, seed):
        """Same seed => byte-for-byte identical dispatch under both queues."""
        assert run_workload("heap", seed) == run_workload("calendar", seed)

    def test_same_time_priority_ties_fifo(self):
        """Ties at (time, priority) dispatch in scheduling (seq) order."""
        for queue in ("heap", "calendar"):
            sim = Simulator(queue=queue)
            order = []
            for i in range(50):
                sim.schedule_at(3.0, lambda i=i: order.append(i), priority=5)
            sim.run()
            assert order == list(range(50))

    def test_zero_delay_chains(self):
        """Zero-delay events fire after the current event, FIFO."""
        for queue in ("heap", "calendar"):
            sim = Simulator(queue=queue)
            order = []

            def first():
                order.append("first")
                sim.schedule(0.0, lambda: order.append("chained"))

            sim.schedule(1.0, first)
            sim.schedule_at(1.0, lambda: order.append("second"))
            sim.run()
            assert order == ["first", "second", "chained"]

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                st.integers(min_value=-3, max_value=3),
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_property_arbitrary_times_and_priorities(self, items):
        """Hypothesis: any (time, priority) multiset dispatches identically,
        including pathological float times near bucket boundaries."""
        traces = {}
        for queue in ("heap", "calendar"):
            sim = Simulator(queue=queue)
            trace = []
            for j, (t, pri) in enumerate(items):
                sim.schedule_at(t, lambda j=j: trace.append((sim.now, j)),
                                priority=pri)
            sim.run()
            traces[queue] = trace
        assert traces["heap"] == traces["calendar"]

    def test_unknown_queue_rejected(self):
        from repro.simkernel import SimulationError

        with pytest.raises(SimulationError, match="unknown queue"):
            Simulator(queue="fibonacci")

    def test_instance_accepted(self):
        sim = Simulator(queue=CalendarQueue())
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]


class TestPendingSemantics:
    @pytest.mark.parametrize("queue", ["heap", "calendar"])
    def test_pending_excludes_cancelled(self, queue):
        """``pending`` is the live count; ``queued`` keeps the historical
        raw-entry semantics (tombstones included until compaction)."""
        sim = Simulator(queue=queue)
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending == 10
        assert sim.queued == 10
        for h in handles[:4]:
            h.cancel()
        assert sim.pending == 6
        # below the compaction floor the tombstones are still resident
        assert sim.queued == 10
        sim.run()
        assert sim.pending == 0
        assert sim.events_executed == 6

    @pytest.mark.parametrize("queue", ["heap", "calendar"])
    def test_compaction_sweeps_tombstone_debt(self, queue):
        """Cancelling most of a large queue triggers compaction: queued
        drops back toward pending instead of holding every tombstone."""
        sim = Simulator(queue=queue)
        n = 6 * COMPACT_MIN_TOMBSTONES
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(n)]
        for h in handles[: n - COMPACT_MIN_TOMBSTONES // 2]:
            h.cancel()
        live = COMPACT_MIN_TOMBSTONES // 2
        assert sim.pending == live
        assert sim.queued < n  # compaction fired at least once
        assert sim.queued - sim.pending <= max(COMPACT_MIN_TOMBSTONES, live)
        fired = sim.events_executed
        sim.run()
        assert sim.events_executed - fired == live

    @pytest.mark.parametrize("queue", ["heap", "calendar"])
    def test_cancel_during_dispatch_of_same_event(self, queue):
        """A callback cancelling its own already-dispatched handle must not
        corrupt the live count (the event is no longer queued)."""
        sim = Simulator(queue=queue)
        box = {}

        def cb():
            box["h"].cancel()

        box["h"] = sim.schedule(1.0, cb)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.pending == 0
        assert sim.events_executed == 2

    @pytest.mark.parametrize("queue", ["heap", "calendar"])
    def test_double_cancel_counts_once(self, queue):
        sim = Simulator(queue=queue)
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        h.cancel()
        assert sim.pending == 1
        sim.run()
        assert sim.events_executed == 1


class TestSlotReuse:
    @pytest.mark.parametrize("queue", ["heap", "calendar"])
    def test_handles_survive_event_recycling(self, queue):
        """An EventHandle held after its event fired (and its Event object
        was recycled into a new event) must stay inert: cancel() is a
        no-op for the new occupant, and metadata still reads correctly."""
        sim = Simulator(queue=queue)
        fired = []
        h1 = sim.schedule(1.0, lambda: fired.append("a"), label="first")
        sim.run()
        assert fired == ["a"]
        # schedule more work -- the kernel may reuse h1's Event slot
        h2 = sim.schedule(1.0, lambda: fired.append("b"), label="second")
        h1.cancel()  # stale handle: must not cancel h2's event
        sim.run()
        assert fired == ["a", "b"]
        assert h1.label == "first"
        assert h1.time == 1.0
        assert not h2.cancelled

    @pytest.mark.parametrize("queue", ["heap", "calendar"])
    def test_many_rounds_reuse_is_invisible(self, queue):
        """Thousands of alloc/recycle cycles never change behavior."""
        sim = Simulator(queue=queue)
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 3000:
                sim.schedule(0.5, tick)

        sim.schedule(0.5, tick)
        sim.run()
        assert count[0] == 3000
        assert sim.pending == 0


class TestCalendarInternals:
    def test_resize_preserves_order_across_growth(self):
        """Pushing far more events than buckets forces several resizes;
        order must survive every redistribution."""
        q = CalendarQueue()
        sim = Simulator(queue=q)
        rng = np.random.default_rng(11)
        times = rng.random(5000) * 1e4
        fired = []
        for t in sorted(set(float(x) for x in times)):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(set(fired))

    def test_sparse_then_dense_time_distributions(self):
        """Width re-estimation must cope with clustered-then-spread times."""
        sim = Simulator(queue="calendar")
        fired = []
        # dense cluster near t=1
        for i in range(200):
            sim.schedule_at(1.0 + i * 1e-9, lambda i=i: fired.append(("d", i)))
        # sparse tail out to t=1e6
        for i in range(20):
            sim.schedule_at(1e4 * (i + 1), lambda i=i: fired.append(("s", i)))
        sim.run()
        assert fired[:200] == [("d", i) for i in range(200)]
        assert fired[200:] == [("s", i) for i in range(20)]
