"""Clock-consistency contract of ``Simulator.run``.

Regression tests for the ``max_events`` exit path: every way out of
``run(until=...)`` must leave ``now`` either at ``until`` (nothing live
remains at or before it) or at the last executed event (work was cut
short).  The clock never jumps past unrun work and never stalls when
only cancelled or later events remain.
"""

from repro.simkernel import Simulator


def test_until_advances_clock_with_empty_heap():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_until_advances_clock_past_last_event():
    sim = Simulator()
    sim.schedule(3.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_max_events_exit_with_no_remaining_work_lands_on_until():
    # the regression: exhausting max_events used to return with now stuck
    # at the last event even though nothing else was pending before until
    sim = Simulator()
    fired = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, lambda t=t: fired.append(t))
    sim.run(until=10.0, max_events=3)
    assert fired == [1.0, 2.0, 3.0]
    assert sim.now == 10.0


def test_max_events_exit_with_live_pending_event_holds_clock():
    sim = Simulator()
    fired = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, lambda t=t: fired.append(t))
    sim.run(until=10.0, max_events=2)
    assert fired == [1.0, 2.0]
    # the t=3 event has not run; the clock must not jump past it
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert fired == [1.0, 2.0, 3.0] and sim.now == 10.0


def test_max_events_exit_with_only_cancelled_remainder_lands_on_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1.0))
    doomed = sim.schedule(5.0, lambda: fired.append(5.0))
    doomed.cancel()
    sim.run(until=10.0, max_events=1)
    assert fired == [1.0]
    assert sim.now == 10.0  # cancelled events are not unrun work


def test_max_events_exit_with_only_later_events_lands_on_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1.0))
    sim.schedule(50.0, lambda: fired.append(50.0))
    sim.run(until=10.0, max_events=1)
    assert fired == [1.0]
    assert sim.now == 10.0  # the 50.0 event is beyond the horizon


def test_stop_holds_clock_when_live_work_remains():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1.0), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2.0))
    sim.run(until=10.0)
    assert fired == [1.0]
    assert sim.now == 1.0


def test_max_events_without_until_never_advances_past_work():
    sim = Simulator()
    fired = []
    for t in (1.0, 2.0):
        sim.schedule(t, lambda t=t: fired.append(t))
    sim.run(max_events=1)
    assert fired == [1.0] and sim.now == 1.0
