"""Unit tests for the dynamic unit-disc topology."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network import Topology, grid_positions, random_positions


def line_topology(n=5, spacing=10.0, range_m=12.0):
    pos = np.array([[i * spacing, 0.0] for i in range(n)])
    return Topology(pos, range_m=range_m)


class TestAdjacency:
    def test_line_neighbors(self):
        topo = line_topology()
        assert topo.neighbors(0) == [1]
        assert topo.neighbors(2) == [1, 3]
        assert topo.degree(2) == 2

    def test_has_edge_symmetric(self):
        topo = line_topology()
        assert topo.has_edge(1, 2) and topo.has_edge(2, 1)
        assert not topo.has_edge(0, 4)

    def test_kill_removes_edges(self):
        topo = line_topology()
        topo.kill(1)
        assert topo.neighbors(0) == []
        assert not topo.is_alive(1)
        assert topo.alive_nodes() == [0, 2, 3, 4]

    def test_revive_restores_edges(self):
        topo = line_topology()
        topo.kill(1)
        topo.revive(1)
        assert topo.neighbors(0) == [1]

    def test_version_bumps_on_changes(self):
        topo = line_topology()
        v0 = topo.version
        topo.kill(1)
        assert topo.version > v0
        v1 = topo.version
        topo.move(0, np.array([100.0, 100.0]))
        assert topo.version > v1

    def test_kill_dead_node_is_noop_for_version(self):
        topo = line_topology()
        topo.kill(1)
        v = topo.version
        topo.kill(1)
        assert topo.version == v

    def test_positions_view_read_only(self):
        topo = line_topology()
        with pytest.raises(ValueError):
            topo.positions[0, 0] = 5.0

    def test_move_changes_adjacency(self):
        topo = line_topology()
        topo.move(4, np.array([0.0, 5.0]))
        assert 4 in topo.neighbors(0)

    def test_move_all_shape_mismatch(self):
        topo = line_topology()
        with pytest.raises(ValueError):
            topo.move_all(np.zeros((3, 2)))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Topology(np.zeros((2, 2)), range_m=0.0)


class TestPathsAndTrees:
    def test_shortest_path_line(self):
        topo = line_topology()
        assert topo.shortest_path(0, 4) == [0, 1, 2, 3, 4]
        assert topo.shortest_path(2, 2) == [2]

    def test_shortest_path_partitioned(self):
        topo = line_topology()
        topo.kill(2)
        assert topo.shortest_path(0, 4) is None

    def test_shortest_path_dead_endpoint(self):
        topo = line_topology()
        topo.kill(4)
        assert topo.shortest_path(0, 4) is None

    def test_hop_counts(self):
        topo = line_topology()
        hops = topo.hop_counts_from(0)
        assert hops == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_tree_parents(self):
        topo = line_topology()
        tree = topo.bfs_tree(0)
        assert tree[0] == 0
        assert tree[3] == 2

    def test_bfs_tree_deterministic_tie_break(self):
        # diamond: 0 - {1,2} - 3; parent of 3 must be the lower id (1)
        pos = np.array([[0.0, 0.0], [1.0, 1.0], [1.0, -1.0], [2.0, 0.0]])
        topo = Topology(pos, range_m=1.6)
        tree = topo.bfs_tree(0)
        assert tree[3] == 1

    def test_is_connected(self):
        topo = line_topology()
        assert topo.is_connected()
        topo.kill(2)
        assert not topo.is_connected()
        assert topo.is_connected(among=[0, 1])

    def test_connected_component(self):
        topo = line_topology()
        topo.kill(2)
        assert topo.connected_component(0) == {0, 1}
        assert topo.connected_component(3) == {3, 4}

    def test_nearest_to(self):
        topo = line_topology()
        assert topo.nearest_to(np.array([21.0, 0.0])) == 2


class TestNearest:
    def test_nearest_alive_only(self):
        topo = line_topology()
        topo.kill(2)
        # node 2 at x=20 is dead; x=21 is nearest to node 3 at x=30? no: |21-10|=11, |21-30|=9
        assert topo.nearest_to(np.array([21.0, 0.0])) == 3
        assert topo.nearest_to(np.array([21.0, 0.0]), alive_only=False) == 2


class TestPlacements:
    def test_grid_positions_count_and_bounds(self):
        pts = grid_positions(10, 100.0)
        assert pts.shape == (10, 2)
        assert pts.min() >= 0.0 and pts.max() <= 100.0

    def test_grid_positions_single(self):
        pts = grid_positions(1, 100.0)
        assert pts.shape == (1, 2)

    def test_grid_positions_invalid(self):
        with pytest.raises(ValueError):
            grid_positions(0, 100.0)

    def test_random_positions_reproducible(self):
        a = random_positions(5, 50.0, np.random.default_rng(3))
        b = random_positions(5, 50.0, np.random.default_rng(3))
        assert np.array_equal(a, b)
        assert a.min() >= 0.0 and a.max() <= 50.0

    @settings(max_examples=25)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=100))
    def test_grid_lattice_connected_when_range_exceeds_spacing(self, n, seed):
        pts = grid_positions(n, 90.0)
        side = int(np.ceil(np.sqrt(n)))
        spacing = 90.0 / max(side - 1, 1)
        topo = Topology(pts, range_m=spacing * 1.01)
        assert topo.is_connected()
