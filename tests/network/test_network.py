"""Unit tests for event-driven message delivery, mobility and churn."""

import numpy as np
import pytest

from repro.simkernel import Simulator, Monitor, RandomStreams
from repro.network import (
    Battery,
    Message,
    RadioEnergyModel,
    RadioModel,
    Topology,
    WirelessNetwork,
    RandomWaypoint,
    StaticPlacement,
)
from repro.network.churn import ChurnProcess


def make_net(n=5, spacing=10.0, range_m=12.0, loss=0.0, batteries=None, seed=0):
    sim = Simulator()
    pos = np.array([[i * spacing, 0.0] for i in range(n)])
    topo = Topology(pos, range_m=range_m)
    radio = RadioModel(bandwidth_bps=1e6, latency_s=0.01, loss_prob=loss, range_m=range_m)
    net = WirelessNetwork(
        sim,
        topo,
        radio,
        RadioEnergyModel(),
        batteries=batteries,
        rng=np.random.default_rng(seed),
        monitor=Monitor(),
    )
    return sim, topo, net


class TestUnicast:
    def test_delivery_along_line(self):
        sim, topo, net = make_net()
        receipts = []
        net.send(Message(src=0, dst=4, size_bits=1000.0), receipts.append)
        sim.run()
        (r,) = receipts
        assert r.delivered
        assert r.hops == 4
        # 4 hops * (1000/1e6 + 0.01) = 4 * 0.011
        assert r.time == pytest.approx(0.044)

    def test_receive_hook_invoked(self):
        sim, topo, net = make_net()
        got = []
        net.nodes[4].receive = got.append
        msg = Message(src=0, dst=4, size_bits=100.0, payload="hello")
        net.send(msg)
        sim.run()
        assert got and got[0].payload == "hello"

    def test_energy_charged_to_batteries(self):
        batteries = [Battery(1.0) for _ in range(5)]
        sim, topo, net = make_net(batteries=batteries)
        net.send(Message(src=0, dst=4, size_bits=1000.0))
        sim.run()
        assert batteries[0].consumed > 0  # tx only
        assert batteries[4].consumed > 0  # rx only
        assert batteries[2].consumed > batteries[4].consumed  # relay pays tx+rx

    def test_receipt_energy_matches_battery_draws(self):
        batteries = [Battery(1.0) for _ in range(5)]
        sim, topo, net = make_net(batteries=batteries)
        receipts = []
        net.send(Message(src=0, dst=4, size_bits=1000.0), receipts.append)
        sim.run()
        total = sum(b.consumed for b in batteries)
        assert receipts[0].energy_j == pytest.approx(total)

    def test_no_route_drops(self):
        sim, topo, net = make_net()
        topo.kill(2)
        receipts = []
        net.send(Message(src=0, dst=4, size_bits=100.0), receipts.append)
        sim.run()
        assert not receipts[0].delivered
        assert receipts[0].reason == "no-route"

    def test_loss_eventually_drops(self):
        sim, topo, net = make_net(loss=0.9, seed=1)
        outcomes = []
        for _ in range(20):
            net.send(Message(src=0, dst=4, size_bits=100.0), outcomes.append)
        sim.run()
        assert any(not r.delivered and r.reason == "loss" for r in outcomes)

    def test_relay_death_mid_flight(self):
        """A relay that dies while the message is in the air drops it."""
        batteries = [Battery(1.0) for _ in range(5)]
        sim, topo, net = make_net(batteries=batteries)
        receipts = []
        net.send(Message(src=0, dst=4, size_bits=1000.0), receipts.append)
        # kill node 2 shortly after the message leaves node 0
        sim.schedule(0.015, lambda: topo.kill(2))
        sim.run()
        assert not receipts[0].delivered
        assert receipts[0].reason in ("dead-node", "no-route")

    def test_battery_death_kills_topology_node(self):
        batteries = [Battery(float("inf"))] * 2 + [Battery(1e-7)] + [Battery(float("inf"))] * 2
        sim, topo, net = make_net(batteries=batteries)
        net.send(Message(src=0, dst=4, size_bits=100000.0))
        sim.run()
        assert not topo.is_alive(2)
        assert net.monitor.counter("net.node_deaths").value == 1

    def test_send_requires_destination(self):
        sim, topo, net = make_net()
        with pytest.raises(ValueError):
            net.send(Message(src=0, dst=None, size_bits=10.0))

    def test_monitor_counters(self):
        sim, topo, net = make_net()
        net.send(Message(src=0, dst=4, size_bits=100.0))
        net.send(Message(src=1, dst=3, size_bits=100.0))
        sim.run()
        assert net.monitor.counter("net.sent").value == 2
        assert net.monitor.counter("net.delivered").value == 2
        assert net.monitor.counter("net.hops").value == 4 + 2

    def test_reroute_around_topology_change(self):
        """Routes are recomputed per hop, so mobility mid-flight reroutes."""
        pos = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0], [10.0, 10.0]])
        sim = Simulator()
        topo = Topology(pos, range_m=15.0)
        radio = RadioModel(bandwidth_bps=1e6, latency_s=0.01, range_m=15.0)
        net = WirelessNetwork(sim, topo, radio)
        receipts = []
        net.send(Message(src=0, dst=2, size_bits=100.0), receipts.append)
        # While hop 0->1 is in flight, the destination moves out of node 1's
        # range but stays within node 3's: the remaining route becomes 1-3-2.
        sim.schedule(0.005, lambda: topo.move(2, np.array([10.0, 24.0])))
        sim.run()
        assert receipts[0].delivered
        assert receipts[0].hops == 3  # 0-1, 1-3, 3-2 instead of 0-1, 1-2


class TestBroadcast:
    def test_broadcast_reaches_neighbors(self):
        sim, topo, net = make_net()
        delivered = net.broadcast_local(2, Message(src=2, dst=None, size_bits=100.0))
        assert delivered == [1, 3]

    def test_broadcast_receive_hooks(self):
        sim, topo, net = make_net()
        got = []
        net.nodes[1].receive = lambda m: got.append(1)
        net.nodes[3].receive = lambda m: got.append(3)
        net.broadcast_local(2, Message(src=2, dst=None, size_bits=100.0))
        sim.run()
        assert sorted(got) == [1, 3]

    def test_broadcast_from_dead_node(self):
        sim, topo, net = make_net()
        topo.kill(2)
        assert net.broadcast_local(2, Message(src=2, dst=None, size_bits=10.0)) == []

    def test_broadcast_charges_one_tx(self):
        batteries = [Battery(1.0) for _ in range(5)]
        sim, topo, net = make_net(batteries=batteries)
        net.broadcast_local(2, Message(src=2, dst=None, size_bits=1000.0))
        tx = net.energy_model.tx_cost(1000.0, net.radio.range_m)
        assert batteries[2].consumed == pytest.approx(tx)


class TestPrediction:
    def test_unicast_time_prediction_matches_actual(self):
        sim, topo, net = make_net()
        predicted = net.unicast_time(0, 4, 1000.0)
        receipts = []
        net.send(Message(src=0, dst=4, size_bits=1000.0), receipts.append)
        sim.run()
        assert receipts[0].time == pytest.approx(predicted)

    def test_unicast_energy_prediction_matches_actual(self):
        sim, topo, net = make_net()
        predicted = net.unicast_energy(0, 4, 1000.0)
        receipts = []
        net.send(Message(src=0, dst=4, size_bits=1000.0), receipts.append)
        sim.run()
        assert receipts[0].energy_j == pytest.approx(predicted)

    def test_predictions_none_when_partitioned(self):
        sim, topo, net = make_net()
        topo.kill(2)
        assert net.unicast_time(0, 4, 10.0) is None
        assert net.unicast_energy(0, 4, 10.0) is None


class TestMobility:
    def test_static_placement_never_moves(self):
        sim, topo, net = make_net()
        before = topo.positions.copy()
        StaticPlacement(topo).start(sim)
        sim.run(until=100.0)
        assert np.array_equal(before, topo.positions)

    def test_random_waypoint_moves_only_mobile_nodes(self):
        sim, topo, net = make_net()
        rng = RandomStreams(7).get("mobility")
        rw = RandomWaypoint(topo, mobile_nodes=[3, 4], area_m=50.0, rng=rng, pause_s=0.0)
        before = topo.positions.copy()
        rw.start(sim)
        sim.run(until=10.0)
        assert np.array_equal(before[:3], topo.positions[:3])
        assert not np.array_equal(before[3:], topo.positions[3:])
        assert rw.ticks == 10

    def test_random_waypoint_stays_in_area(self):
        sim, topo, net = make_net()
        rng = RandomStreams(7).get("mobility")
        rw = RandomWaypoint(topo, mobile_nodes=[0, 1, 2, 3, 4], area_m=40.0, rng=rng, speed_max=5.0, pause_s=0.0)
        rw.start(sim)
        sim.run(until=200.0)
        pos = topo.positions
        assert pos.min() >= -1e-9 and pos.max() <= 40.0 + 1e-9

    def test_random_waypoint_reproducible(self):
        def run():
            sim, topo, net = make_net()
            rng = RandomStreams(11).get("mobility")
            rw = RandomWaypoint(topo, mobile_nodes=[0, 1], area_m=30.0, rng=rng)
            rw.start(sim)
            sim.run(until=25.0)
            return topo.positions.copy()

        assert np.array_equal(run(), run())

    def test_random_waypoint_validation(self):
        sim, topo, net = make_net()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RandomWaypoint(topo, [0], 10.0, rng, speed_min=0.0)
        with pytest.raises(ValueError):
            RandomWaypoint(topo, [0], 10.0, rng, speed_min=2.0, speed_max=1.0)
        with pytest.raises(ValueError):
            RandomWaypoint(topo, [0], 10.0, rng, tick_s=0.0)

    def test_pause_freezes_node(self):
        sim, topo, net = make_net()
        rng = RandomStreams(3).get("m")
        rw = RandomWaypoint(topo, mobile_nodes=[0], area_m=5.0, rng=rng, speed_min=100.0, speed_max=100.0, pause_s=1000.0)
        rw.step(1.0)  # arrives somewhere in the tiny area and starts pausing
        p1 = topo.positions[0].copy()
        rw.step(1.0)
        assert np.array_equal(p1, topo.positions[0])


class TestChurn:
    def test_churn_toggles_nodes(self):
        sim, topo, net = make_net()
        rng = RandomStreams(5).get("churn")
        events = []
        churn = ChurnProcess(
            sim, topo, nodes=[1, 2, 3], rng=rng, mean_up_s=5.0, mean_down_s=5.0,
            on_change=lambda n, up: events.append((n, up)),
        )
        churn.start()
        sim.run(until=100.0)
        assert churn.transitions > 5
        downs = [e for e in events if not e[1]]
        ups = [e for e in events if e[1]]
        assert downs and ups
        assert all(n in (1, 2, 3) for n, _ in events)

    def test_churn_availability_formula(self):
        sim, topo, net = make_net()
        churn = ChurnProcess(sim, topo, [1], np.random.default_rng(0), mean_up_s=80.0, mean_down_s=20.0)
        assert churn.availability == pytest.approx(0.8)

    def test_churn_start_twice_rejected(self):
        sim, topo, net = make_net()
        churn = ChurnProcess(sim, topo, [1], np.random.default_rng(0))
        churn.start()
        with pytest.raises(RuntimeError):
            churn.start()

    def test_churn_validation(self):
        sim, topo, net = make_net()
        with pytest.raises(ValueError):
            ChurnProcess(sim, topo, [1], np.random.default_rng(0), mean_up_s=0.0)


class TestBroadcastIsolation:
    """Each broadcast receiver must get its own copy of the message."""

    def test_receivers_cannot_corrupt_each_others_hops(self):
        sim, topo, net = make_net()
        got = {}
        for nbr in (0, 2):
            def receive(msg, nbr=nbr):
                msg.hops.append(nbr)  # receiver-side bookkeeping
                got[nbr] = msg
            net.nodes[nbr].receive = receive
        net.broadcast_local(1, Message(src=1, dst=None, size_bits=100.0))
        sim.run()
        assert got[0].hops == [0] and got[2].hops == [2]

    def test_payload_mutation_stays_local(self):
        sim, topo, net = make_net()
        original = {"count": 0}
        got = {}
        for nbr in (0, 2):
            def receive(msg, nbr=nbr):
                msg.payload["count"] += 1
                got[nbr] = msg.payload["count"]
            net.nodes[nbr].receive = receive
        net.broadcast_local(1, Message(src=1, dst=None, size_bits=100.0,
                                       payload=original))
        sim.run()
        # each receiver incremented its own copy exactly once, and the
        # sender's payload object was never touched
        assert got == {0: 1, 2: 1}
        assert original["count"] == 0

    def test_copies_keep_msg_id_for_dedup(self):
        sim, topo, net = make_net()
        got = []
        for nbr in (0, 2):
            net.nodes[nbr].receive = got.append
        msg = Message(src=1, dst=None, size_bits=100.0)
        net.broadcast_local(1, msg)
        sim.run()
        assert [m.msg_id for m in got] == [msg.msg_id, msg.msg_id]
        assert all(m is not msg for m in got)


class TestDeadSource:
    """A dead radio cannot transmit: no routing, no battery charge."""

    def test_send_from_dead_source_drops(self):
        sim, topo, net = make_net()
        topo.kill(0)
        receipts = []
        net.send(Message(src=0, dst=4, size_bits=1000.0), receipts.append)
        sim.run()
        (r,) = receipts
        assert not r.delivered
        assert r.reason == "dead-source"
        assert r.hops == 0 and r.energy_j == 0.0
        assert net.monitor.counters()["net.dropped"] == 1

    def test_dead_source_charges_no_battery(self):
        batteries = [Battery(1.0) for _ in range(5)]
        sim, topo, net = make_net(batteries=batteries)
        topo.kill(0)
        net.send(Message(src=0, dst=4, size_bits=1000.0))
        sim.run()
        assert all(b.remaining == 1.0 and b.draws == 0 for b in batteries)
        assert net.monitor.counters().get("net.energy_j", 0.0) == 0.0

    def test_live_source_still_routes(self):
        sim, topo, net = make_net()
        topo.kill(0)
        topo.revive(0)
        receipts = []
        net.send(Message(src=0, dst=4, size_bits=1000.0), receipts.append)
        sim.run()
        assert receipts[0].delivered
