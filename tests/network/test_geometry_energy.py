"""Unit tests for geometry helpers, batteries and radio energy model."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.network.geometry import (
    as_positions,
    distance,
    distances_from,
    neighbors_within,
    pairwise_distances,
)
from repro.network.energy import Battery, RadioEnergyModel
from repro.network.radio import RadioModel


class TestGeometry:
    def test_distance_simple(self):
        assert distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_as_positions_validates_shape(self):
        with pytest.raises(ValueError):
            as_positions(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            as_positions(np.zeros(4))

    def test_pairwise_matches_naive(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 100, size=(20, 2))
        d = pairwise_distances(pos)
        for i in range(20):
            for j in range(20):
                expected = math.hypot(*(pos[i] - pos[j]))
                assert d[i, j] == pytest.approx(expected, abs=1e-9)

    def test_pairwise_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 10, size=(15, 2))
        d = pairwise_distances(pos)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)

    def test_distances_from(self):
        pos = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = distances_from(pos, np.array([0.0, 0.0]))
        assert d == pytest.approx([0.0, 5.0])

    def test_neighbors_within_no_self_loops(self):
        pos = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        adj = neighbors_within(pos, 2.0)
        assert not adj.diagonal().any()
        assert adj[0, 1] and adj[1, 0]
        assert not adj[0, 2]

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=1000))
    def test_pairwise_triangle_inequality(self, n, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 50, size=(n, 2))
        d = pairwise_distances(pos)
        i, j, k = rng.integers(0, n, size=3)
        assert d[i, j] <= d[i, k] + d[k, j] + 1e-7


class TestRadioEnergyModel:
    def test_tx_grows_with_distance_squared(self):
        m = RadioEnergyModel(e_elec=0.0, eps_amp=1.0)
        assert m.tx_cost(1.0, 2.0) == pytest.approx(4.0)
        assert m.tx_cost(1.0, 3.0) == pytest.approx(9.0)

    def test_tx_includes_electronics(self):
        m = RadioEnergyModel(e_elec=2.0, eps_amp=0.0)
        assert m.tx_cost(10.0, 100.0) == pytest.approx(20.0)

    def test_rx_independent_of_distance(self):
        m = RadioEnergyModel()
        assert m.rx_cost(100.0) == pytest.approx(m.e_elec * 100.0)

    def test_cpu_much_cheaper_than_radio_per_unit(self):
        """The property that makes in-network aggregation worthwhile."""
        m = RadioEnergyModel()
        assert m.cpu_cost(1.0) < m.tx_cost(1.0, 10.0) / 100.0

    def test_negative_inputs_rejected(self):
        m = RadioEnergyModel()
        with pytest.raises(ValueError):
            m.tx_cost(-1.0, 1.0)
        with pytest.raises(ValueError):
            m.rx_cost(-1.0)
        with pytest.raises(ValueError):
            m.cpu_cost(-1.0)

    @given(st.floats(min_value=0, max_value=1e6), st.floats(min_value=0, max_value=1e3))
    def test_tx_cost_nonnegative(self, bits, dist):
        assert RadioEnergyModel().tx_cost(bits, dist) >= 0.0


class TestBattery:
    def test_draw_reduces_remaining(self):
        b = Battery(1.0)
        assert b.draw(0.3)
        assert b.remaining == pytest.approx(0.7)
        assert b.consumed == pytest.approx(0.3)

    def test_depletion(self):
        b = Battery(1.0)
        assert not b.draw(2.0)
        assert b.depleted
        assert b.remaining == 0.0
        assert b.consumed == pytest.approx(1.0)  # can't consume more than capacity

    def test_infinite_battery_never_depletes(self):
        b = Battery(float("inf"))
        assert b.draw(1e12)
        assert not b.depleted
        assert b.fraction_remaining == 1.0

    def test_fraction_remaining(self):
        b = Battery(2.0)
        b.draw(0.5)
        assert b.fraction_remaining == pytest.approx(0.75)

    def test_zero_capacity_battery(self):
        b = Battery(0.0)
        assert b.depleted
        assert b.fraction_remaining == 0.0

    def test_negative_draw_rejected(self):
        with pytest.raises(ValueError):
            Battery(1.0).draw(-0.1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Battery(-1.0)

    @given(st.lists(st.floats(min_value=0, max_value=0.5), max_size=20))
    def test_consumed_never_exceeds_capacity(self, draws):
        b = Battery(1.0)
        for d in draws:
            b.draw(d)
        assert b.consumed <= 1.0 + 1e-12
        assert b.remaining >= 0.0


class TestRadioModel:
    def test_transmission_time(self):
        r = RadioModel(bandwidth_bps=1000.0, latency_s=0.5)
        assert r.transmission_time(2000.0) == pytest.approx(2.0)
        assert r.hop_time(2000.0) == pytest.approx(2.5)

    def test_profiles_ordering(self):
        """Wired >> wifi >> bluetooth >= mote bandwidth; paper's hierarchy."""
        assert RadioModel.wired_backbone().bandwidth_bps > RadioModel.wifi().bandwidth_bps
        assert RadioModel.wifi().bandwidth_bps > RadioModel.bluetooth().bandwidth_bps
        assert RadioModel.bluetooth().bandwidth_bps > RadioModel.mote().bandwidth_bps

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioModel(bandwidth_bps=0)
        with pytest.raises(ValueError):
            RadioModel(latency_s=-1)
        with pytest.raises(ValueError):
            RadioModel(loss_prob=1.0)
        with pytest.raises(ValueError):
            RadioModel(range_m=0)
        with pytest.raises(ValueError):
            RadioModel().transmission_time(-1.0)
