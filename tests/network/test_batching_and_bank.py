"""Batched broadcast delivery and the array-backed battery bank.

Both are pure mechanics changes: one fan-out event instead of an event
per receiver, and numpy arrays instead of per-node Battery objects.  The
tests here pin the equivalence -- delivery logs, energy, RNG stream and
battery state must match the historical scalar forms exactly.
"""

import numpy as np
import pytest

from repro.network import (
    Battery,
    BatteryBank,
    Message,
    RadioModel,
    Topology,
    WirelessNetwork,
)
from repro.network.network import _receiver_copy
from repro.simkernel import Monitor, RandomStreams, Simulator


def build_flood_net(seed, *, legacy=False, queue="heap"):
    """A lossy 50-node network where every receiver rebroadcasts once."""
    streams = RandomStreams(seed)
    pos = streams.get("pos").random((50, 2)) * 45
    topo = Topology(pos, 14.0, index="dense")
    sim = Simulator(queue=queue)
    radio = RadioModel(bandwidth_bps=250_000.0, latency_s=0.01,
                       loss_prob=0.2, range_m=14.0)
    net = WirelessNetwork(sim, topo, radio,
                          batteries=[Battery(1.0) for _ in range(50)],
                          rng=streams.get("loss"), monitor=Monitor())
    if legacy:
        # the pre-batching form: one scheduled event per receiver
        def fan_out_legacy(targets, snapshot, delay):
            for dst in targets:
                net._deliver_later(dst, _receiver_copy(snapshot), delay)

        net._fan_out_later = fan_out_legacy
    log = []
    seen = [set() for _ in range(50)]

    def attach(i):
        def recv(msg):
            log.append((sim.now, i, msg.msg_id, tuple(msg.hops)))
            if msg.msg_id not in seen[i]:
                seen[i].add(msg.msg_id)
                net.broadcast_local(i, _receiver_copy(msg))

        net.nodes[i].receive = recv

    for i in range(50):
        attach(i)
    return sim, net, log, seen


class TestBroadcastBatching:
    @pytest.mark.parametrize("seed", range(3))
    def test_flood_bit_identical_to_per_receiver_events(self, seed):
        """Chained lossy rebroadcasts deliver the same messages at the
        same times with the same energy, batched or not."""
        results = {}
        for legacy in (False, True):
            sim, net, log, seen = build_flood_net(seed, legacy=legacy)
            msg = Message(msg_id="m0", src=0, dst=None, size_bits=512.0)
            seen[0].add("m0")
            net.broadcast_local(0, msg)
            sim.run(until=10.0)
            results[legacy] = (
                log,
                net.monitor.counter("net.energy_j").value,
                [net.nodes[i].battery.remaining for i in range(50)],
            )
        assert results[False] == results[True]

    def test_batched_uses_one_event_per_broadcast(self):
        sim, net, log, seen = build_flood_net(1)
        seen[0].add("m0")
        net.broadcast_local(0, Message(msg_id="m0", src=0, dst=None,
                                       size_bits=512.0))
        sim.run(until=10.0)
        # every broadcast with >= 1 survivor schedules exactly one event
        broadcasts = sum(1 for s in seen if s)
        assert sim.events_executed <= broadcasts
        assert len(log) > sim.events_executed  # fan-out amortizes deliveries

    def test_receivers_get_independent_copies(self):
        """Mutating one receiver's message must not leak to the others."""
        rng = np.random.default_rng(0)
        pos = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        topo = Topology(pos, 5.0, index="dense")
        sim = Simulator()
        net = WirelessNetwork(sim, topo,
                              RadioModel(bandwidth_bps=1e6, latency_s=0.01,
                                         range_m=5.0),
                              rng=rng)
        got = {}

        def recv(i):
            def _recv(msg):
                msg.hops.append(99)
                msg.payload["touched_by"] = i
                got[i] = msg

            return _recv

        net.nodes[1].receive = recv(1)
        net.nodes[2].receive = recv(2)
        delivered = net.broadcast_local(
            0, Message(msg_id="b", src=0, dst=None, size_bits=64.0,
                       payload={"v": 1}))
        assert delivered == [1, 2]
        sim.run()
        assert got[1].payload["touched_by"] == 1
        assert got[2].payload["touched_by"] == 2
        assert got[1].hops == [99]
        assert got[2].hops == [99]

    def test_snapshot_taken_at_broadcast_time(self):
        """Sender-side mutation after broadcast_local returns must not be
        visible to receivers (radios decoded the bytes already on air)."""
        pos = np.array([[0.0, 0.0], [1.0, 0.0]])
        topo = Topology(pos, 5.0, index="dense")
        sim = Simulator()
        net = WirelessNetwork(sim, topo,
                              RadioModel(bandwidth_bps=1e6, latency_s=0.01,
                                         range_m=5.0),
                              rng=np.random.default_rng(0))
        got = []
        net.nodes[1].receive = got.append
        msg = Message(msg_id="b", src=0, dst=None, size_bits=64.0,
                      payload={"v": "original"})
        net.broadcast_local(0, msg)
        msg.payload["v"] = "mutated-after-send"
        msg.hops.append(7)
        sim.run()
        assert got[0].payload["v"] == "original"
        assert got[0].hops == []

    def test_dead_receiver_at_fire_time_skipped(self):
        """Liveness is re-checked per receiver when the fan-out fires."""
        pos = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        topo = Topology(pos, 5.0, index="dense")
        sim = Simulator()
        net = WirelessNetwork(sim, topo,
                              RadioModel(bandwidth_bps=1e6, latency_s=0.01,
                                         range_m=5.0),
                              rng=np.random.default_rng(0))
        got = []
        net.nodes[1].receive = lambda m: got.append(1)
        net.nodes[2].receive = lambda m: got.append(2)
        delivered = net.broadcast_local(
            0, Message(msg_id="b", src=0, dst=None, size_bits=64.0))
        assert delivered == [1, 2]
        sim.schedule_at(0.0, lambda: topo.kill(1))  # dies before delivery
        sim.run()
        assert got == [2]


class TestBatteryBank:
    def test_view_draw_bit_identical_to_battery(self):
        rng = np.random.default_rng(3)
        caps = [1e-3, 5e-4, float("inf"), 0.0, 2e-3]
        singles = [Battery(c) for c in caps]
        bank = BatteryBank(caps)
        views = bank.batteries()
        for _ in range(3000):
            i = int(rng.integers(0, len(caps)))
            j = float(rng.uniform(0, 3e-7))
            assert singles[i].draw(j) == views[i].draw(j)
        for s, v in zip(singles, views):
            assert s.remaining == v.remaining
            assert s.consumed == v.consumed
            assert s.draws == v.draws
            assert s.depleted == v.depleted
            assert s.fraction_remaining == v.fraction_remaining

    def test_draw_many_matches_scalar_draws(self):
        caps = [1e-3, 5e-4, float("inf"), 0.0, 2e-3]
        singles = [Battery(c) for c in caps]
        bank = BatteryBank(caps)
        alive_scalar = [singles[i].draw(6e-4) for i in range(5)]
        alive_vec = bank.draw_many(np.arange(5), 6e-4)
        assert alive_scalar == list(alive_vec)
        assert [b.remaining for b in singles] == list(bank.remaining)
        assert [b.consumed for b in singles] == list(bank.consumed)
        assert list(bank.draws) == [1] * 5

    def test_fleet_accounting(self):
        bank = BatteryBank.uniform(100, 2e-4)
        bank.draw_many(np.arange(40), 1e-4)
        bank.draw_many(np.arange(10), 2e-4)  # overdraw: deplete 10 cells
        assert bank.depleted_count == 10
        assert int(bank.alive_mask.sum()) == 90
        assert bank.total_consumed == pytest.approx(40 * 1e-4 + 10 * 1e-4)
        frac = bank.fraction_remaining()
        assert frac.shape == (100,)
        assert np.all(frac[50:] == 1.0)
        assert np.all(frac[:10] == 0.0)

    def test_views_power_a_network(self):
        """Bank views drop in wherever Battery is expected."""
        rng = np.random.default_rng(0)
        pos = rng.random((8, 2)) * 10
        topo = Topology(pos, 15.0, index="dense")
        sim = Simulator()
        bank = BatteryBank.uniform(8, 1.0)
        net = WirelessNetwork(sim, topo,
                              RadioModel(bandwidth_bps=1e6, latency_s=0.01,
                                         range_m=15.0),
                              batteries=bank.batteries(), rng=rng)
        net.send(Message(src=0, dst=7, size_bits=500.0))
        sim.run()
        assert bank.total_consumed > 0.0
        assert bank.total_consumed == pytest.approx(
            net.monitor.counter("net.energy_j").value, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            BatteryBank([1.0, -0.5])
        with pytest.raises(ValueError, match="1-D"):
            BatteryBank(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="negative energy"):
            BatteryBank.uniform(2).battery(0).draw(-1.0)
        with pytest.raises(ValueError, match="negative energy"):
            BatteryBank.uniform(2).draw_many([0], -1.0)
