"""Unit tests for flooding, gossip, aggregation trees and clustering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network import RadioEnergyModel, RadioModel, Topology, grid_positions
from repro.network.routing import AggregationTree, ClusterFormation, Flooding, Gossip

RADIO = RadioModel(bandwidth_bps=1e6, latency_s=0.01, range_m=12.0)
EM = RadioEnergyModel()


def line_topology(n=5, spacing=10.0, range_m=12.0):
    pos = np.array([[i * spacing, 0.0] for i in range(n)])
    return Topology(pos, range_m=range_m)


def grid_topology(n=25, area=40.0, range_m=12.0):
    return Topology(grid_positions(n, area), range_m=range_m)


class TestFlooding:
    def test_reaches_whole_component(self):
        topo = grid_topology()
        res = Flooding(topo, RADIO, EM).disseminate(0, 100.0)
        assert res.reached == set(range(25))
        assert res.messages == 25  # everyone broadcasts once

    def test_partition_limits_reach(self):
        topo = line_topology()
        topo.kill(2)
        res = Flooding(topo, RADIO, EM).disseminate(0, 100.0)
        assert res.reached == {0, 1}
        assert res.messages == 2

    def test_latency_is_eccentricity(self):
        topo = line_topology(5)
        res = Flooding(topo, RADIO, EM).disseminate(0, 1000.0)
        assert res.latency_s == pytest.approx(4 * RADIO.hop_time(1000.0))

    def test_energy_sums_tx_and_rx(self):
        topo = line_topology(2)
        res = Flooding(topo, RADIO, EM).disseminate(0, 1000.0)
        # both nodes broadcast once; each hears the other's broadcast
        expected = 2 * EM.tx_cost(1000.0, RADIO.range_m) + 2 * EM.rx_cost(1000.0)
        assert res.energy_j == pytest.approx(expected)
        assert res.per_node_energy.sum() == pytest.approx(res.energy_j)


class TestGossip:
    def make(self, topo, prob=1.0, fanout=4, seed=0):
        return Gossip(topo, RADIO, EM, np.random.default_rng(seed), forward_prob=prob, fanout=fanout)

    def test_full_fanout_full_prob_reaches_component_on_line(self):
        topo = line_topology()
        res = self.make(topo).disseminate(0, 100.0)
        assert res.reached == {0, 1, 2, 3, 4}

    def test_low_prob_reaches_fewer(self):
        topo = grid_topology()
        full = self.make(topo, prob=1.0, fanout=4).disseminate(0, 100.0)
        sparse = self.make(topo, prob=0.3, fanout=1, seed=2).disseminate(0, 100.0)
        assert len(sparse.reached) < len(full.reached)

    def test_cheaper_than_flooding_in_energy_when_sparse(self):
        topo = grid_topology()
        flood = Flooding(topo, RADIO, EM).disseminate(0, 100.0)
        gossip = self.make(topo, prob=0.5, fanout=1, seed=1).disseminate(0, 100.0)
        assert gossip.energy_j < flood.energy_j

    def test_expected_coverage_in_unit_interval(self):
        topo = grid_topology(16)
        cov = self.make(topo, prob=0.7, fanout=2).expected_coverage(0, 100.0, trials=5)
        assert 0.0 < cov <= 1.0

    def test_reproducible_with_same_rng(self):
        topo = grid_topology()
        a = self.make(topo, prob=0.6, fanout=2, seed=9).disseminate(0, 100.0)
        b = self.make(topo, prob=0.6, fanout=2, seed=9).disseminate(0, 100.0)
        assert a.reached == b.reached
        assert a.energy_j == pytest.approx(b.energy_j)

    def test_validation(self):
        topo = line_topology()
        with pytest.raises(ValueError):
            self.make(topo, prob=0.0)
        with pytest.raises(ValueError):
            Gossip(topo, RADIO, EM, np.random.default_rng(0), fanout=0)


class TestAggregationTree:
    def test_line_tree_structure(self):
        topo = line_topology()
        tree = AggregationTree(topo, root=0)
        assert tree.parent[0] == 0
        assert tree.parent[3] == 2
        assert tree.children[0] == [1]
        assert tree.depth == 4
        assert tree.nodes == [0, 1, 2, 3, 4]

    def test_subtree_sizes_line(self):
        tree = AggregationTree(line_topology(), root=0)
        sizes = tree.subtree_sizes()
        assert sizes == {0: 5, 1: 4, 2: 3, 3: 2, 4: 1}

    def test_path_to_root(self):
        tree = AggregationTree(line_topology(), root=0)
        assert tree.path_to_root(3) == [3, 2, 1, 0]

    def test_tree_excludes_partitioned_nodes(self):
        topo = line_topology()
        topo.kill(2)
        tree = AggregationTree(topo, root=0)
        assert set(tree.nodes) == {0, 1}

    def test_aggregated_one_tx_per_nonroot(self):
        tree = AggregationTree(grid_topology(), root=0)
        cost = tree.aggregated_collection(64.0, RADIO, EM)
        assert cost.messages == 24
        assert cost.bits_total == pytest.approx(24 * 64.0)

    def test_aggregated_latency_scales_with_depth(self):
        tree = AggregationTree(line_topology(5), root=0)
        cost = tree.aggregated_collection(64.0, RADIO, EM)
        assert cost.latency_s == pytest.approx(4 * RADIO.hop_time(64.0))

    def test_raw_forwards_subtree_counts(self):
        tree = AggregationTree(line_topology(3), root=0)
        cost = tree.raw_collection(64.0, RADIO, EM)
        # node 2 sends 1, node 1 sends 2 (its own + node 2's)
        assert cost.messages == 3
        assert cost.bits_total == pytest.approx(3 * 64.0)

    def test_raw_costs_more_than_aggregated(self):
        """The paper's central energy claim (via TAG)."""
        tree = AggregationTree(grid_topology(), root=0)
        raw = tree.raw_collection(64.0, RADIO, EM)
        agg = tree.aggregated_collection(64.0, RADIO, EM)
        assert raw.energy_j > agg.energy_j
        assert raw.latency_s > agg.latency_s

    def test_root_only_tree(self):
        topo = line_topology()
        for n in (1, 2, 3, 4):
            topo.kill(n)
        tree = AggregationTree(topo, root=0)
        assert tree.nodes == [0]
        assert tree.depth == 0
        cost = tree.aggregated_collection(64.0, RADIO, EM)
        assert cost.messages == 0
        assert cost.energy_j == 0.0

    @settings(max_examples=20)
    @given(st.integers(min_value=4, max_value=36), st.integers(min_value=0, max_value=50))
    def test_property_aggregated_cheaper_or_equal(self, n, seed):
        topo = grid_topology(n, area=30.0, range_m=16.0)
        tree = AggregationTree(topo, root=0)
        raw = tree.raw_collection(64.0, RADIO, EM)
        agg = tree.aggregated_collection(64.0, RADIO, EM)
        assert agg.energy_j <= raw.energy_j + 1e-12
        assert agg.messages <= raw.messages


class TestClusterFormation:
    def make(self, topo, frac=0.2, seed=0):
        return ClusterFormation(topo, sink=0, rng=np.random.default_rng(seed), head_fraction=frac)

    def test_every_non_sink_node_assigned(self):
        topo = grid_topology()
        cf = self.make(topo)
        assert set(cf.membership) == set(range(1, 25))
        assert all(h in cf.heads for h in cf.membership.values())

    def test_at_least_one_head(self):
        topo = grid_topology()
        cf = self.make(topo, frac=1e-9)  # Bernoulli will miss; fallback fires
        assert len(cf.heads) == 1

    def test_sink_never_head_nor_member(self):
        topo = grid_topology()
        cf = self.make(topo)
        assert 0 not in cf.heads
        assert 0 not in cf.membership

    def test_members_of(self):
        topo = grid_topology()
        cf = self.make(topo)
        for head in cf.heads:
            for m in cf.members_of(head):
                assert cf.membership[m] == head
                assert m != head

    def test_collection_cost_positive(self):
        topo = grid_topology()
        cf = self.make(topo)
        cost = cf.aggregated_collection(64.0, 64.0, RADIO, EM)
        assert cost.energy_j > 0
        assert cost.messages >= len(cf.membership) - len(cf.heads)
        assert 0 in cost.participating

    def test_cluster_beats_raw_tree_collection(self):
        """Cluster aggregation also saves energy vs raw convergecast."""
        topo = grid_topology()
        cf = self.make(topo)
        cluster = cf.aggregated_collection(64.0, 64.0, RADIO, EM)
        raw = AggregationTree(topo, root=0).raw_collection(64.0, RADIO, EM)
        assert cluster.energy_j < raw.energy_j

    def test_dead_nodes_not_assigned(self):
        topo = grid_topology()
        topo.kill(5)
        cf = self.make(topo)
        assert 5 not in cf.membership

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterFormation(grid_topology(), 0, np.random.default_rng(0), head_fraction=0.0)

    def test_empty_network(self):
        topo = line_topology(2)
        topo.kill(1)
        cf = ClusterFormation(topo, sink=0, rng=np.random.default_rng(0))
        assert cf.heads == []
        assert cf.membership == {}
