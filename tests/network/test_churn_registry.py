"""Churn <-> registry interaction and fault-timeline determinism."""

import numpy as np

from repro.discovery import (
    SemanticMatcher,
    ServiceDescription,
    ServiceRegistry,
    build_service_ontology,
)
from repro.network.churn import ChurnProcess
from repro.network.topology import Topology
from repro.simkernel import RandomStreams, Simulator


def make_topology(n=5):
    pos = np.stack([np.arange(n, dtype=float), np.zeros(n)], axis=1)
    return Topology(pos, range_m=1.5)


def make_registry():
    return ServiceRegistry(SemanticMatcher(build_service_ontology()))


class TestChurnDrivesRegistry:
    def test_down_withdraws_and_up_readvertises(self):
        sim = Simulator()
        topo = make_topology()
        registry = make_registry()
        ads = {
            node: ServiceDescription(
                name=f"svc-{node}", category="DecisionTreeService",
                provider=f"agent-{node}", host_node=node,
            )
            for node in range(5)
        }
        for ad in ads.values():
            registry.advertise(ad)

        def on_change(node, up):
            if up:
                registry.advertise(ads[node])
            else:
                registry.withdraw_host(node)

        churn = ChurnProcess(sim, topo, nodes=range(5), rng=RandomStreams(5).get("churn"),
                             mean_up_s=10.0, mean_down_s=10.0, on_change=on_change)
        churn.start()

        # simulate until at least one node has gone down
        while not any(not topo.is_alive(n) for n in range(5)):
            assert sim.step(), "churn never took a node down"
        down = [n for n in range(5) if not topo.is_alive(n)]
        names = {s.name for s in registry.services()}
        for node in down:
            assert f"svc-{node}" not in names, "down host's ad must be withdrawn"

        # keep going until every down node has come back up
        while any(not topo.is_alive(n) for n in range(5)):
            assert sim.step(), "churned nodes never recovered"
        names = {s.name for s in registry.services()}
        for node in range(5):
            assert f"svc-{node}" in names, "recovered host must re-advertise"
        assert churn.transitions >= 2

    def test_same_named_stream_gives_identical_timelines(self):
        def run(seed):
            sim = Simulator()
            topo = make_topology()
            timeline = []
            churn = ChurnProcess(
                sim, topo, nodes=range(5), rng=RandomStreams(seed).get("churn"),
                mean_up_s=20.0, mean_down_s=5.0,
                on_change=lambda node, up: timeline.append((sim.now, node, up)),
            )
            churn.start()
            sim.run(until=500.0)
            return timeline

        a, b = run(99), run(99)
        assert a == b
        assert len(a) > 0
        assert run(100) != a
