"""Grid-hash spatial index vs dense adjacency: exact equivalence.

The grid backend exists purely for scale; it must answer every topology
query bit-identically to the dense O(n^2) matrix.  The fuzz tests here
drive both backends through the same churn (moves, bulk moves, kills,
revives, link blocking) and compare every query after every mutation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.geometry import (
    ADJACENCY_MAX_N,
    PAIRWISE_MAX_N,
    PopulationTooLarge,
    neighbors_within,
    pairwise_distances,
)
from repro.network.spatial import GridHashIndex
from repro.network.topology import GRID_AUTO_THRESHOLD, Topology


def dense_row(positions, radius, node):
    """Reference neighbor row straight from the dense helper."""
    adj = neighbors_within(positions, radius)
    return list(np.flatnonzero(adj[node]))


class TestGridHashIndex:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dense_rows(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 120))
        pos = rng.random((n, 2)) * 50
        radius = float(rng.uniform(2.0, 25.0))
        index = GridHashIndex(pos, radius)
        for u in range(n):
            assert list(index.neighbors_within(u, pos)) == dense_row(pos, radius, u)

    def test_incremental_move_matches_rebuild(self):
        rng = np.random.default_rng(3)
        pos = rng.random((80, 2)) * 40
        index = GridHashIndex(pos, 6.0)
        for _ in range(300):
            u = int(rng.integers(0, 80))
            pos[u] = rng.random(2) * 40
            index.move(u, pos[u])
        fresh = GridHashIndex(pos, 6.0)
        for u in range(80):
            assert list(index.neighbors_within(u, pos)) == \
                list(fresh.neighbors_within(u, pos))

    def test_move_all_rebuckets_only_changed(self):
        rng = np.random.default_rng(4)
        pos = rng.random((100, 2)) * 100
        index = GridHashIndex(pos, 10.0)
        moved = index.move_all(pos)  # no-op bulk move
        assert moved == 0
        pos2 = pos.copy()
        pos2[:5] += 30.0  # guaranteed cell changes for exactly 5 nodes
        assert index.move_all(pos2) == 5
        fresh = GridHashIndex(pos2, 10.0)
        for u in range(100):
            assert list(index.neighbors_within(u, pos2)) == \
                list(fresh.neighbors_within(u, pos2))

    def test_coincident_nodes_are_neighbors(self):
        """Distance 0 between distinct nodes is within any radius; only the
        self-loop is excluded (same convention as the dense path)."""
        pos = np.array([[5.0, 5.0], [5.0, 5.0], [30.0, 30.0]])
        index = GridHashIndex(pos, 2.0)
        assert list(index.neighbors_within(0, pos)) == [1]
        assert list(index.neighbors_within(1, pos)) == [0]
        assert list(index.neighbors_within(2, pos)) == []

    def test_boundary_distance_exact(self):
        """dist == radius is a neighbor under both backends (<=, not <)."""
        pos = np.array([[0.0, 0.0], [7.0, 0.0]])
        index = GridHashIndex(pos, 7.0)
        assert list(index.neighbors_within(0, pos)) == [1]
        assert dense_row(pos, 7.0, 0) == [1]

    def test_negative_coordinates(self):
        """floor-based cell hashing must be correct left of the origin."""
        rng = np.random.default_rng(9)
        pos = rng.random((60, 2)) * 40 - 20.0
        index = GridHashIndex(pos, 5.0)
        for u in range(60):
            assert list(index.neighbors_within(u, pos)) == dense_row(pos, 5.0, u)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.5, max_value=30.0, allow_nan=False),
    )
    def test_property_always_matches_dense(self, n, seed, radius):
        rng = np.random.default_rng(seed)
        pos = rng.random((n, 2)) * 30
        index = GridHashIndex(pos, radius)
        adj = neighbors_within(pos, radius)
        for u in range(n):
            assert list(index.neighbors_within(u, pos)) == \
                list(np.flatnonzero(adj[u]))


class TestTopologyBackendEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_fuzz_churn_bit_identical(self, seed):
        """Dense and grid topologies agree on every query through heavy
        churn: single moves, bulk moves, kills, revives, blocks."""
        rng = np.random.default_rng(seed)
        n = 150
        pos = rng.random((n, 2)) * 80
        radius = 11.0
        dense = Topology(pos, radius, index="dense")
        grid = Topology(pos, radius, index="grid")

        def check():
            for u in range(n):
                assert dense.neighbors(u) == grid.neighbors(u)
            probe = rng.integers(0, n, 30).reshape(-1, 2)
            for a, b in probe:
                a, b = int(a), int(b)
                assert dense.has_edge(a, b) == grid.has_edge(a, b)
                assert dense.shortest_path(a, b) == grid.shortest_path(a, b)
            root = int(rng.integers(0, n))
            assert dense.hop_counts_from(root) == grid.hop_counts_from(root)
            assert dense.bfs_tree(root) == grid.bfs_tree(root)
            assert dense.is_connected() == grid.is_connected()

        check()
        for _ in range(10):
            for u in rng.integers(0, n, 8):
                p = rng.random(2) * 80
                dense.move(int(u), p)
                grid.move(int(u), p)
            for u in rng.integers(0, n, 4):
                dense.kill(int(u))
                grid.kill(int(u))
            for u in rng.integers(0, n, 2):
                dense.revive(int(u))
                grid.revive(int(u))
            ga = [int(x) for x in rng.integers(0, n, 3)]
            gb = [int(x) for x in rng.integers(0, n, 3)]
            dense.block_links(ga, gb)
            grid.block_links(ga, gb)
            check()
            dense.unblock_links(ga, gb)
            grid.unblock_links(ga, gb)
            bulk = dense.positions + rng.normal(0, 2, (n, 2))
            dense.move_all(bulk)
            grid.move_all(bulk)
            check()

    def test_grid_adjacency_property_matches_dense(self):
        rng = np.random.default_rng(7)
        pos = rng.random((90, 2)) * 50
        dense = Topology(pos, 9.0, index="dense")
        grid = Topology(pos, 9.0, index="grid")
        dense.kill(3)
        grid.kill(3)
        assert np.array_equal(dense.adjacency, grid.adjacency)

    def test_auto_selects_by_population(self):
        rng = np.random.default_rng(0)
        small = Topology(rng.random((10, 2)) * 10, 3.0)
        assert small.index_kind == "dense"
        big = Topology(rng.random((GRID_AUTO_THRESHOLD + 1, 2)) * 1000, 3.0)
        assert big.index_kind == "grid"

    def test_invalid_index_rejected(self):
        with pytest.raises(ValueError, match="index must be"):
            Topology(np.zeros((2, 2)), 1.0, index="quadtree")

    def test_blocked_links_do_not_leak_memory_dense_matrix(self):
        """Blocking is dict-backed: a large-n grid topology can block links
        without ever materializing an (n, n) matrix."""
        rng = np.random.default_rng(1)
        n = ADJACENCY_MAX_N + 10
        topo = Topology(rng.random((n, 2)) * 1e4, 5.0, index="grid")
        topo.block_links([0, 1], [2, 3])
        assert not topo.has_edge(0, 2)
        topo.unblock_links([0, 1], [2, 3])
        # neighbors still answer at a population the dense path refuses
        assert isinstance(topo.neighbors(0), list)


class TestDenseGuards:
    def test_pairwise_refuses_oversized(self):
        pos = np.zeros((PAIRWISE_MAX_N + 1, 2))
        with pytest.raises(PopulationTooLarge, match="spatial index"):
            pairwise_distances(pos)

    def test_adjacency_refuses_oversized(self):
        pos = np.zeros((ADJACENCY_MAX_N + 1, 2))
        with pytest.raises(PopulationTooLarge, match="spatial index"):
            neighbors_within(pos, 1.0)

    def test_grid_adjacency_property_refuses_oversized(self):
        rng = np.random.default_rng(2)
        topo = Topology(rng.random((ADJACENCY_MAX_N + 1, 2)) * 1e4, 5.0,
                        index="grid")
        with pytest.raises(PopulationTooLarge):
            _ = topo.adjacency

    def test_max_n_override(self):
        pos = np.zeros((5, 2))
        with pytest.raises(PopulationTooLarge):
            pairwise_distances(pos, max_n=4)
        assert pairwise_distances(pos, max_n=5).shape == (5, 5)

    def test_blockwise_matches_single_shot(self):
        """Block-row evaluation is bit-identical to one full broadcast."""
        rng = np.random.default_rng(5)
        pos = rng.random((200, 2)) * 100
        delta = pos[:, None, :] - pos[None, :, :]
        ref = np.hypot(delta[..., 0], delta[..., 1])
        assert np.array_equal(pairwise_distances(pos), ref)
        adj = ref <= 12.0
        np.fill_diagonal(adj, False)
        assert np.array_equal(neighbors_within(pos, 12.0), adj)
