"""Route-cache correctness: cached answers must equal uncached BFS.

The cache memoizes BFS parents/paths/hop-counts behind the topology's
generation counter; every mutation (kill, revive, move, link blocking)
bumps the counter and lazily flushes the cache.  These tests compare
every cached answer against an independent pure-Python BFS oracle under
heavy churn, and pin down the hit/miss/invalidation accounting.
"""

import collections

import numpy as np
import pytest

from repro.network import Topology, record_route_cache_metrics
from repro.simkernel import Monitor


def oracle_bfs(topo: Topology, src: int):
    """Independent BFS over the adjacency matrix: lowest-id expansion,
    exactly the determinism contract the cache relies on."""
    if not topo.is_alive(src):
        return {}
    adj = topo.adjacency
    parent = {src: src}
    queue = collections.deque([src])
    while queue:
        node = queue.popleft()
        for nbr in np.flatnonzero(adj[node]):
            nbr = int(nbr)
            if nbr not in parent and topo.is_alive(nbr):
                parent[nbr] = node
                queue.append(nbr)
    return parent


def oracle_path(topo: Topology, src: int, dst: int):
    if src == dst:
        return [src]  # the kernel's contract, even for a dead node
    if not (topo.is_alive(src) and topo.is_alive(dst)):
        return None
    parent = oracle_bfs(topo, src)
    if dst not in parent:
        return None
    path = [dst]
    while path[-1] != src:
        path.append(parent[path[-1]])
    return path[::-1]


def line_topology(n=6, spacing=10.0, range_m=12.0):
    pos = np.array([[i * spacing, 0.0] for i in range(n)])
    return Topology(pos, range_m=range_m)


class TestCacheBasics:
    def test_repeat_query_hits(self):
        topo = line_topology()
        first = topo.shortest_path(0, 5)
        stats = topo.route_cache_stats
        assert stats["misses"] == 1 and stats["hits"] == 0
        second = topo.shortest_path(0, 5)
        assert topo.route_cache_stats["hits"] == 1
        assert first == second == [0, 1, 2, 3, 4, 5]

    def test_cached_paths_are_private_copies(self):
        topo = line_topology()
        first = topo.shortest_path(0, 5)
        first.append(999)  # caller mutates its copy
        assert topo.shortest_path(0, 5) == [0, 1, 2, 3, 4, 5]

    def test_one_bfs_serves_all_destinations(self):
        topo = line_topology()
        topo.shortest_path(0, 5)  # the only BFS this test should run
        for dst in (1, 2, 3, 4):
            assert topo.shortest_path(0, dst) == list(range(dst + 1))
        assert topo.route_cache_stats["misses"] == 1

    def test_unreachable_result_is_cached(self):
        topo = line_topology()
        topo.kill(2)
        assert topo.shortest_path(0, 5) is None
        misses = topo.route_cache_stats["misses"]
        assert topo.shortest_path(0, 5) is None
        assert topo.route_cache_stats["misses"] == misses
        assert topo.route_cache_stats["hits"] >= 1

    def test_trivial_queries_bypass_cache(self):
        topo = line_topology()
        assert topo.shortest_path(3, 3) == [3]
        topo.kill(4)
        assert topo.shortest_path(0, 4) is None  # dead endpoint
        assert topo.route_cache_stats["misses"] == 0

    def test_hop_counts_and_bfs_tree_cached(self):
        topo = line_topology()
        hops = topo.hop_counts_from(0)
        tree = topo.bfs_tree(0)
        assert hops[5] == 5 and tree[5] == 4 and tree[0] == 0
        stats = topo.route_cache_stats
        topo.hop_counts_from(0)
        topo.bfs_tree(0)
        assert topo.route_cache_stats["hits"] == stats["hits"] + 2
        # returned mappings are private copies
        topo.hop_counts_from(0).clear()
        assert topo.hop_counts_from(0)[5] == 5


class TestInvalidation:
    def test_kill_invalidates(self):
        topo = line_topology()
        assert topo.shortest_path(0, 5) == [0, 1, 2, 3, 4, 5]
        topo.kill(3)
        assert topo.shortest_path(0, 5) is None
        assert topo.route_cache_stats["invalidations"] == 1

    def test_revive_restores_route(self):
        topo = line_topology()
        topo.kill(3)
        assert topo.shortest_path(0, 5) is None
        topo.revive(3)
        assert topo.shortest_path(0, 5) == [0, 1, 2, 3, 4, 5]

    def test_move_invalidates(self):
        topo = line_topology()
        assert topo.shortest_path(0, 2) == [0, 1, 2]
        d_before = topo.distance(0, 1)
        topo.move(1, np.array([500.0, 0.0]))  # out of everyone's range
        assert topo.shortest_path(0, 2) is None
        assert topo.distance(0, 1) != d_before

    def test_block_links_invalidates(self):
        topo = line_topology()
        assert topo.shortest_path(0, 5) is not None
        topo.block_links([2], [3])
        assert topo.shortest_path(0, 5) is None
        topo.unblock_links([2], [3])
        assert topo.shortest_path(0, 5) == [0, 1, 2, 3, 4, 5]

    def test_invalidation_counted_once_per_flush(self):
        topo = line_topology()
        topo.shortest_path(0, 5)
        topo.kill(3)
        topo.revive(3)  # two version bumps, but the cache flushes lazily
        topo.shortest_path(0, 5)
        assert topo.route_cache_stats["invalidations"] == 1

    def test_mutation_without_queries_never_flushes(self):
        topo = line_topology()
        topo.kill(1)
        topo.revive(1)
        assert topo.route_cache_stats["invalidations"] == 0


class TestChurnEquivalence:
    """Fuzz: interleave queries and mutations; cache must track the oracle."""

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_random_churn(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        topo = Topology(rng.uniform(0.0, 60.0, size=(n, 2)), range_m=22.0)
        blocked = []
        for _ in range(300):
            op = rng.integers(0, 8)
            if op == 0:
                topo.kill(int(rng.integers(0, n)))
            elif op == 1:
                topo.revive(int(rng.integers(0, n)))
            elif op == 2:
                topo.move(int(rng.integers(0, n)), rng.uniform(0.0, 60.0, 2))
            elif op == 3 and len(blocked) < 4:
                a, b = int(rng.integers(0, n)), int(rng.integers(0, n))
                if a != b:
                    topo.block_links([a], [b])
                    blocked.append((a, b))
            elif op == 4 and blocked:
                a, b = blocked.pop()
                topo.unblock_links([a], [b])
            else:
                src, dst = int(rng.integers(0, n)), int(rng.integers(0, n))
                assert topo.shortest_path(src, dst) == oracle_path(topo, src, dst)
                if topo.is_alive(src):
                    parent = oracle_bfs(topo, src)
                    hops = {}
                    for node in parent:
                        steps, cursor = 0, node
                        while cursor != src:
                            cursor = parent[cursor]
                            steps += 1
                        hops[node] = steps
                    assert topo.hop_counts_from(src) == hops
                    tree = dict(parent)
                    assert topo.bfs_tree(src) == tree
        stats = topo.route_cache_stats
        assert stats["hits"] > 0 and stats["invalidations"] > 0


class TestMetricsExport:
    def test_record_route_cache_metrics_idempotent(self):
        topo = line_topology()
        monitor = Monitor()
        topo.shortest_path(0, 5)
        topo.shortest_path(0, 5)
        record_route_cache_metrics(topo, monitor)
        record_route_cache_metrics(topo, monitor)  # no double counting
        assert monitor.counter("net.route_cache.hits").value == 1
        assert monitor.counter("net.route_cache.misses").value == 1
        topo.shortest_path(0, 4)
        record_route_cache_metrics(topo, monitor)
        assert monitor.counter("net.route_cache.hits").value == 2
