"""HookProfiler: deterministic wall-clock attribution for event dispatch.

Accounting is tested with an injected nanosecond clock so every self /
cumulative number is exact; the isolation invariant (profiling never
touches the Monitor, so sharded sweeps stay bit-identical at any worker
count) is tested with real TrialRunner sweeps.  Trial functions are
module-level (they must pickle into workers).
"""

import json

import pytest

from repro.core.runtime import PervasiveGridRuntime
from repro.observability.profiling import (
    NOOP_FRAME,
    NOOP_PROFILER,
    HookProfiler,
    load_profile,
    merge_profiles,
    subsystem_wall_rollup,
)
from repro.parallel import TrialResult, TrialRunner, seed_specs
from repro.simkernel import Monitor, Simulator


class FakeClock:
    """Manually-advanced nanosecond clock."""

    def __init__(self) -> None:
        self.ns = 0

    def __call__(self) -> int:
        return self.ns


def make():
    clock = FakeClock()
    return HookProfiler(clock=clock), clock


class TestFrameAccounting:
    def test_self_excludes_children_cum_includes_them(self):
        prof, clock = make()
        with prof.frame("query.run"):
            clock.ns += 10
            with prof.frame("net.route", "network"):
                clock.ns += 5
            clock.ns += 3
        rows = {r["name"]: r for r in prof.handlers()}
        assert rows["query.run"]["self_s"] == pytest.approx(13e-9)
        assert rows["query.run"]["cum_s"] == pytest.approx(18e-9)
        assert rows["net.route"]["self_s"] == pytest.approx(5e-9)
        assert rows["net.route"]["cum_s"] == pytest.approx(5e-9)
        assert rows["net.route"]["subsystem"] == "network"
        # default subsystem is the first dotted component
        assert rows["query.run"]["subsystem"] == "query"
        # self times partition the wall exactly
        assert prof.total_wall_s == pytest.approx(18e-9)

    def test_recursive_frames_count_cum_once(self):
        prof, clock = make()
        with prof.frame("f"):
            clock.ns += 2
            with prof.frame("f"):
                clock.ns += 4
            clock.ns += 1
        rows = {r["name"]: r for r in prof.handlers()}
        assert rows["f"]["calls"] == 2
        # self: inner 4 + outer (2 + 1) = 7
        assert rows["f"]["self_s"] == pytest.approx(7e-9)
        # cum counted at the outermost occurrence only: 7, not 11
        assert rows["f"]["cum_s"] == pytest.approx(7e-9)

    def test_collapsed_stacks_are_paths_with_self_microseconds(self):
        prof, clock = make()
        with prof.frame("a"):
            clock.ns += 3000
            with prof.frame("b"):
                clock.ns += 2000
        assert prof.collapsed_stacks() == ["a 3", "a;b 2"]

    def test_handlers_sorted_by_descending_self_then_name(self):
        prof, clock = make()
        for name, ns in (("mid", 5), ("big", 9), ("also_mid", 5)):
            with prof.frame(name):
                clock.ns += ns
        assert [r["name"] for r in prof.handlers()] == ["big", "also_mid", "mid"]

    def test_clear_drops_samples(self):
        prof, clock = make()
        with prof.frame("a"):
            clock.ns += 5
        prof.clear()
        assert len(prof) == 0 and prof.events == 0
        assert prof.handlers() == [] and prof.total_wall_s == 0.0


class TestDispatchAttribution:
    def run_events(self, prof):
        sim = Simulator()
        sim.profiler = prof

        def tick():
            pass

        # labeled events fold at the first ':'; unlabeled fall back to
        # the callback qualname truncated at '.<locals>'
        sim.schedule(1.0, tick, label="hop:17")
        sim.schedule(2.0, tick, label="hop:18")
        sim.schedule(3.0, tick)
        sim.run()
        return sim

    def test_labels_fold_and_qualnames_truncate(self):
        prof, clock = make()
        self.run_events(prof)
        rows = {r["name"]: r for r in prof.handlers()}
        assert prof.events == 3
        assert rows["hop"]["calls"] == 2
        qualnames = [n for n in rows if n.endswith("run_events")]
        assert qualnames, rows.keys()
        assert ".<locals>" not in qualnames[0]

    def test_handler_names_deterministic_across_runs(self):
        """The property --diff rests on: same workload, same name set."""
        a, _ = make()
        b, _ = make()
        self.run_events(a)
        self.run_events(b)
        assert [r["name"] for r in a.handlers()] == [r["name"] for r in b.handlers()]

    def test_disabled_profiler_is_skipped_by_the_dispatch_loop(self):
        prof = HookProfiler(enabled=False)
        self.run_events(prof)
        assert prof.events == 0 and len(prof) == 0


class TestNoop:
    def test_disabled_frame_is_the_shared_singleton(self):
        assert NOOP_PROFILER.frame("a.b") is NOOP_FRAME
        assert HookProfiler(enabled=False).frame("x") is NOOP_FRAME

    def test_fresh_profiler_is_truthy_despite_len_zero(self):
        # the 'sim.profiler or NOOP_PROFILER' idiom must keep a fresh
        # (empty) profiler, so truthiness cannot follow __len__
        prof = HookProfiler()
        assert len(prof) == 0 and bool(prof)
        assert (prof or NOOP_PROFILER) is prof

    def test_noop_frame_records_nothing(self):
        with NOOP_PROFILER.frame("a.b", "net"):
            pass
        assert len(NOOP_PROFILER) == 0


class TestExport:
    def fill(self):
        prof, clock = make()
        with prof.frame("query.run"):
            clock.ns += 10_000
            with prof.frame("net.route", "network"):
                clock.ns += 4_000
        return prof

    def test_to_dict_write_load_round_trip(self, tmp_path):
        prof = self.fill()
        path = tmp_path / "p.json"
        assert prof.write(path) == 2
        doc = load_profile(path)
        assert doc == prof.to_dict()
        assert doc["schema"] == 1 and doc["kind"] == "hook_profile"
        assert doc["collapsed"] == {"query.run": 10, "query.run;net.route": 4}

    def test_load_rejects_non_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_profile(bad)

    def test_load_rejects_wrong_kind_schema_and_missing_keys(self, tmp_path):
        cases = [
            ({"kind": "trace"}, "not a profile export"),
            ({"kind": "hook_profile", "schema": 99}, "unsupported schema"),
            ({"kind": "hook_profile", "schema": 1, "events": 0, "wall_s": 0.0,
              "handlers": []}, "no 'collapsed' key"),
        ]
        for doc, message in cases:
            path = tmp_path / "doc.json"
            path.write_text(json.dumps(doc))
            with pytest.raises(ValueError, match=message):
                load_profile(path)


class TestMerge:
    def test_merge_sums_per_name_and_skips_none(self):
        a = TestExport().fill().to_dict()
        b = TestExport().fill().to_dict()
        merged = merge_profiles([a, None, b])
        rows = {r["name"]: r for r in merged["handlers"]}
        assert rows["net.route"]["calls"] == 2
        assert rows["net.route"]["self_s"] == pytest.approx(8e-6)
        assert merged["collapsed"]["query.run;net.route"] == 8
        assert merged["wall_s"] == pytest.approx(2 * a["wall_s"])

    def test_merge_of_nothing_is_none(self):
        assert merge_profiles([]) is None
        assert merge_profiles([None, None]) is None


class TestRollup:
    def test_shares_sum_to_one(self):
        doc = TestExport().fill().to_dict()
        rows = subsystem_wall_rollup(doc)
        assert [r["subsystem"] for r in rows] == ["query", "network"]
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)
        assert rows[0]["self_s"] == pytest.approx(10e-6)

    def test_empty_profile_rolls_up_empty(self):
        assert subsystem_wall_rollup(HookProfiler().to_dict()) == []


class TestRuntimeIntegration:
    def test_profiled_runtime_attributes_the_query_stack(self, tmp_path):
        rt = PervasiveGridRuntime(n_sensors=9, area_m=20.0, seed=5, profile=True)
        rt.query("SELECT AVG(temperature) FROM sensors")
        assert rt.profiler is rt.sim.profiler
        assert rt.profiler.events > 0
        names = {r["name"] for r in rt.profiler.handlers()}
        assert "queries.decide" in names
        path = tmp_path / "rt.json"
        assert rt.export_profile(path) == len(rt.profiler)
        assert load_profile(path)["events"] == rt.profiler.events

    def test_unprofiled_runtime_refuses_to_export(self, tmp_path):
        rt = PervasiveGridRuntime(n_sensors=9, area_m=20.0, seed=5)
        assert rt.profiler is None and rt.sim.profiler is None
        with pytest.raises(RuntimeError, match="profile=True"):
            rt.export_profile(tmp_path / "no.json")

    def test_profiling_does_not_change_simulation_results(self):
        def answers(profile: bool):
            rt = PervasiveGridRuntime(n_sensors=25, area_m=40.0, seed=3,
                                      profile=profile)
            out = [(o.success, o.model, o.time_s, repr(o.value))
                   for o in rt.query("SELECT DISTRIBUTION(temperature) FROM sensors")]
            return out, rt.sim.now

        assert answers(False) == answers(True)


def profiled_trial(spec):
    """A tiny world that profiles; counters must not see the profiler."""
    sim = Simulator()
    monitor = Monitor()
    profiler = HookProfiler() if spec.profile else None
    sim.profiler = profiler
    for i in range(spec.seed % 4 + 2):
        sim.schedule(float(i + 1), lambda i=i: monitor.counter("ticks").add(i + 1),
                     label=f"tick:{i}")
    sim.run()
    return TrialResult(monitor=monitor, metrics={"events": sim.events_executed},
                       sim_time_s=sim.now, profile=profiler)


class TestTrialRunnerIsolation:
    def test_bit_identical_at_any_worker_count_with_profiling(self):
        specs = seed_specs([5, 1, 3, 2], profile=True)
        serial = TrialRunner(profiled_trial, workers=1).run(specs)
        parallel = TrialRunner(profiled_trial, workers=2).run(specs)
        # the PR 4 contract: profiling rides TrialResult.profile, never
        # the monitor, so the merge stays bit-identical
        assert serial.monitor.summary() == parallel.monitor.summary()
        assert serial.metrics_by_index() == parallel.metrics_by_index()
        for key in serial.monitor.summary():
            assert "profile" not in key and "wall" not in key

    def test_profiles_merge_across_workers(self):
        sweep = TrialRunner(profiled_trial, workers=2).run(
            seed_specs([5, 1, 3, 2], profile=True))
        assert sweep.profile is not None
        assert sweep.profile["events"] == sum(
            o.metrics["events"] for o in sweep.outcomes)
        names = {r["name"] for r in sweep.profile["handlers"]}
        assert "tick" in names

    def test_unprofiled_sweep_has_no_profile(self):
        sweep = TrialRunner(profiled_trial, workers=2).run(seed_specs([1, 2]))
        assert sweep.profile is None
