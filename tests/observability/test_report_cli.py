"""The report CLI: error paths and the machine-readable --format json."""

import json

import pytest

from repro.observability.export import write_jsonl
from repro.observability.report import main, report_dict
from repro.observability.analysis import Trace
from repro.observability.tracer import SpanRecord, TraceEvent


def sample_trace():
    root = SpanRecord(trace_id=0, span_id=1, parent_id=None,
                      name="queries.epoch", start_s=0.0, attrs={})
    root.end_s = 10.0
    child = SpanRecord(trace_id=0, span_id=2, parent_id=1,
                       name="net.send", start_s=2.0, attrs={})
    child.end_s = 6.0
    event = TraceEvent(trace_id=0, parent_id=2, name="net.hop", time_s=3.0,
                       attrs={"node": 4})
    return [root, child, event]


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_jsonl(sample_trace(), path)
    return str(path)


class TestErrorPaths:
    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "nope.jsonl" in err

    def test_empty_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 2
        assert "empty trace" in capsys.readouterr().err

    def test_blank_lines_only_exits_two(self, tmp_path, capsys):
        path = tmp_path / "blank.jsonl"
        path.write_text("\n\n\n")
        assert main([str(path)]) == 2
        assert "empty trace" in capsys.readouterr().err

    def test_malformed_json_line_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span", "trace": 0\nnot json at all\n')
        assert main([str(path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "not valid JSON" in err
        assert "Traceback" not in err

    def test_unknown_record_kind_exits_two(self, tmp_path, capsys):
        path = tmp_path / "odd.jsonl"
        path.write_text('{"kind": "blob"}\n')
        assert main([str(path)]) == 2
        assert "unknown record kind" in capsys.readouterr().err


class TestTextFormat:
    def test_report_renders(self, trace_path, capsys):
        assert main([trace_path]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "queries.epoch" in out

    def test_root_prefix_without_match(self, trace_path, capsys):
        assert main([trace_path, "--root", "zzz"]) == 0
        assert "no closed root span" in capsys.readouterr().out


class TestJsonFormat:
    def test_document_shape(self, trace_path, capsys):
        assert main([trace_path, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["trace"] == {"spans": 2, "events": 1, "trace_ids": 1,
                                "roots": 1}
        assert doc["root"]["name"] == "queries.epoch"
        assert doc["root"]["duration_s"] == 10.0
        assert doc["events"] == {"net.hop": 1}

    def test_critical_path_shares_sum_to_one(self, trace_path, capsys):
        main([trace_path, "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        shares = [seg["share"] for seg in doc["critical_path"]]
        assert sum(shares) == pytest.approx(1.0)
        names = {seg["name"] for seg in doc["critical_path"]}
        assert {"queries.epoch", "net.send"} <= names

    def test_rollup_rows(self, trace_path, capsys):
        main([trace_path, "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        by_sub = {r["subsystem"]: r for r in doc["rollup"]}
        assert by_sub["net"]["self_s"] == pytest.approx(4.0)
        assert by_sub["queries"]["self_s"] == pytest.approx(6.0)

    def test_no_matching_root_is_null(self, trace_path, capsys):
        assert main([trace_path, "--format", "json", "--root", "zzz"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["root"] is None
        assert doc["critical_path"] is None
        assert doc["rollup"] is None

    def test_report_dict_matches_cli(self, capsys):
        doc = report_dict(Trace(sample_trace()))
        assert doc["trace"]["spans"] == 2
