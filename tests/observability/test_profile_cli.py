"""The profile CLI: hotspots, collapsed stacks, and --diff evidence."""

import json

import pytest

from repro.core.runtime import PervasiveGridRuntime
from repro.observability.profile import main
from repro.observability.profiling import HookProfiler


class FakeClock:
    def __init__(self) -> None:
        self.ns = 0

    def __call__(self) -> int:
        return self.ns


def export(tmp_path, name, frames):
    """Write a profile with known frame timings; returns its path."""
    clock = FakeClock()
    prof = HookProfiler(clock=clock)
    for frame_name, subsystem, ns in frames:
        with prof.frame(frame_name, subsystem):
            clock.ns += ns
    path = tmp_path / name
    prof.write(path)
    return str(path)


FRAMES = [("queries.decide", "queries", 9_000_000),
          ("net.route", "network", 4_000_000),
          ("grid.schedule", "grid", 1_000_000)]


class TestHotspots:
    def test_renders_handlers_and_subsystem_rollup(self, tmp_path, capsys):
        path = export(tmp_path, "p.json", FRAMES)
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "3 handlers" in out and "14 ms wall" in out
        assert "queries.decide" in out and "64.3%" in out
        assert "wall time by subsystem:" in out and "network" in out

    def test_top_truncates_and_says_so(self, tmp_path, capsys):
        path = export(tmp_path, "p.json", FRAMES)
        assert main([path, "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "queries.decide" in out
        assert "grid.schedule" not in out
        assert "... 2 more handlers" in out

    def test_collapsed_dumps_flamegraph_lines(self, tmp_path, capsys):
        path = export(tmp_path, "p.json", FRAMES)
        assert main([path, "--collapsed"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert "net.route 4000" in out and "queries.decide 9000" in out


class TestDiff:
    def test_same_workload_twice_has_stable_hotspot_names(self, tmp_path, capsys):
        """The acceptance property: two seeded runs of the same workload
        diff cleanly -- every handler matches by name."""
        def profile_run(name):
            rt = PervasiveGridRuntime(n_sensors=9, area_m=20.0, seed=5,
                                      profile=True)
            rt.query("SELECT AVG(temperature) FROM sensors")
            path = tmp_path / name
            rt.export_profile(path)
            return str(path)

        old, new = profile_run("old.json"), profile_run("new.json")
        assert main(["--diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "handler sets identical (stable hotspot names)" in out
        assert "total wall:" in out

    def test_diff_reports_appeared_and_disappeared(self, tmp_path, capsys):
        old = export(tmp_path, "old.json", FRAMES)
        new = export(tmp_path, "new.json",
                     [FRAMES[0], ("net.route_cached", "network", 500_000)])
        assert main(["--diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "appeared: net.route_cached" in out
        assert "disappeared: grid.schedule, net.route" in out

    def test_diff_shows_per_handler_delta(self, tmp_path, capsys):
        old = export(tmp_path, "old.json", FRAMES)
        new = export(tmp_path, "new.json",
                     [("queries.decide", "queries", 4_500_000),
                      FRAMES[1], FRAMES[2]])
        assert main(["--diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "-50.0%" in out and "queries.decide" in out


class TestErrors:
    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_wrong_kind_exits_two(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"kind": "trace"}))
        assert main([str(path)]) == 2
        assert "not a profile export" in capsys.readouterr().err

    def test_exactly_one_of_profile_or_diff(self, tmp_path):
        path = export(tmp_path, "p.json", FRAMES)
        with pytest.raises(SystemExit):
            main([])
        with pytest.raises(SystemExit):
            main([path, "--diff", path, path])

    def test_collapsed_does_not_combine_with_diff(self, tmp_path):
        path = export(tmp_path, "p.json", FRAMES)
        with pytest.raises(SystemExit):
            main(["--diff", path, path, "--collapsed"])

    def test_disjoint_profiles_exit_two_with_one_line_error(self, tmp_path, capsys):
        """Diffing two unrelated workloads must fail loudly, not render
        an empty table."""
        old = export(tmp_path, "old.json", FRAMES)
        new = export(tmp_path, "new.json",
                     [("disc.advertise", "discovery", 2_000_000)])
        assert main(["--diff", old, new]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        err_lines = [ln for ln in captured.err.splitlines() if ln]
        assert len(err_lines) == 1
        assert "share no handler names" in err_lines[0]
