"""Monitor satellites: summary determinism, increments, merge semantics."""

import math

import pytest

from repro.simkernel import Monitor


class TestSummary:
    def test_counters_report_value_and_increments(self):
        monitor = Monitor()
        monitor.counter("net.sent").add(2.5)
        monitor.counter("net.sent").add(0.5)
        summary = monitor.summary()
        assert summary["net.sent"] == 3.0
        assert summary["net.sent.increments"] == 2

    def test_key_order_is_deterministic(self):
        """Two monitors fed identical data in different insertion orders
        produce identical summaries (same keys, same order)."""
        a, b = Monitor(), Monitor()
        for m, order in ((a, ("z.one", "a.two", "m.mid")),
                         (b, ("m.mid", "z.one", "a.two"))):
            for name in order:
                m.counter(name).add()
            m.gauge("g.depth").set(4.0)
            m.histogram("h.lat").observe(1.0)
            m.series("s.t").record(0.0, 1.0)
        assert list(a.summary()) == list(b.summary())
        assert a.summary() == b.summary()

    def test_empty_instruments_are_omitted(self):
        monitor = Monitor()
        monitor.gauge("g.unset")
        monitor.histogram("h.empty")
        monitor.series("s.empty")
        assert monitor.summary() == {}

    def test_histogram_reductions(self):
        monitor = Monitor()
        for v in (1.0, 2.0, 3.0, 4.0):
            monitor.histogram("queries.latency").observe(v)
        summary = monitor.summary()
        assert summary["queries.latency.count"] == 4
        assert summary["queries.latency.mean"] == 2.5
        assert summary["queries.latency.max"] == 4.0
        assert summary["queries.latency.p50"] == 2.5


class TestMerge:
    def test_counter_collision_adds_values_and_increments(self):
        a, b = Monitor(), Monitor()
        a.counter("net.sent").add(2)
        a.counter("net.sent").add(3)
        b.counter("net.sent").add(10)
        a.merge(b)
        assert a.counter("net.sent").value == 15.0
        assert a.counter("net.sent").increments == 3

    def test_disjoint_counters_union(self):
        a, b = Monitor(), Monitor()
        a.counter("net.sent").add()
        b.counter("grid.jobs_dispatched").add()
        a.merge(b)
        assert a.counters() == {"grid.jobs_dispatched": 1.0, "net.sent": 1.0}

    def test_gauge_collision_last_writer_wins(self):
        a, b = Monitor(), Monitor()
        a.gauge("faults.active").set(3.0)
        b.gauge("faults.active").set(1.0)
        a.merge(b)
        assert a.gauge("faults.active").value == 1.0
        assert a.gauge("faults.active").updates == 2

    def test_unset_gauge_does_not_clobber(self):
        a, b = Monitor(), Monitor()
        a.gauge("faults.active").set(3.0)
        b.gauge("faults.active")  # created but never set
        a.merge(b)
        assert a.gauge("faults.active").value == 3.0
        assert a.gauge("faults.active").updates == 1

    def test_histogram_collision_concatenates(self):
        a, b = Monitor(), Monitor()
        a.histogram("queries.latency").observe(1.0)
        b.histogram("queries.latency").observe(3.0)
        b.histogram("queries.latency").observe(5.0)
        a.merge(b)
        assert list(a.histogram("queries.latency").values) == [1.0, 3.0, 5.0]

    def test_series_collision_concatenates_in_other_order(self):
        a, b = Monitor(), Monitor()
        a.series("faults.active").record(0.0, 1.0)
        b.series("faults.active").record(0.5, 2.0)
        b.series("faults.active").record(1.5, 0.0)
        a.merge(b)
        assert list(a.series("faults.active").times) == [0.0, 0.5, 1.5]
        assert list(a.series("faults.active").values) == [1.0, 2.0, 0.0]

    def test_merge_chains_and_leaves_other_untouched(self):
        a, b, c = Monitor(), Monitor(), Monitor()
        b.counter("x.n").add(1)
        c.counter("x.n").add(2)
        result = a.merge(b).merge(c)
        assert result is a
        assert a.counter("x.n").value == 3.0
        assert b.counter("x.n").value == 1.0
        assert c.counter("x.n").value == 2.0


class TestInstrumentGuards:
    def test_counter_rejects_non_finite(self):
        with pytest.raises(ValueError):
            Monitor().counter("x.n").add(math.inf)

    def test_gauge_rejects_non_finite(self):
        with pytest.raises(ValueError):
            Monitor().gauge("x.n").set(math.nan)

    def test_counter_reset(self):
        counter = Monitor().counter("x.n")
        counter.add(5)
        counter.reset()
        assert counter.value == 0.0
        assert counter.increments == 0
