"""Metric naming conventions: the catalog, aliases, canonical summaries."""

import pytest

from repro.observability.metrics import (
    ALIASES,
    CONVENTIONS,
    INSTRUMENTS,
    MetricSpec,
    canonical_name,
    canonical_summary,
    rollup_by_subsystem,
)
from repro.simkernel import Monitor


class TestCatalog:
    def test_specs_are_well_formed(self):
        for name, spec in CONVENTIONS.items():
            assert spec.name == name
            assert spec.instrument in INSTRUMENTS
            assert "." in spec.name
            assert spec.description

    def test_expected_canonical_names_present(self):
        expected = {
            "net.msgs_sent", "energy.j_spent", "queries.latency",
            "grid.jobs_resubmitted", "composition.rebinds",
            "faults.injected", "resilience.breaker_trips",
        }
        assert expected <= set(CONVENTIONS)

    def test_aliases_target_catalog_entries(self):
        for legacy, canonical in ALIASES.items():
            assert canonical in CONVENTIONS
            assert legacy not in CONVENTIONS  # aliases never shadow

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="instrument"):
            MetricSpec("net.x", "dial", "1", "nope")
        with pytest.raises(ValueError, match="subsystem"):
            MetricSpec("flat", "counter", "1", "nope")

    def test_subsystem_property(self):
        assert CONVENTIONS["net.msgs_sent"].subsystem == "net"
        assert CONVENTIONS["grid.queue_wait"].subsystem == "grid"


class TestCanonicalName:
    def test_identity_for_unknown_and_canonical(self):
        assert canonical_name("net.msgs_sent") == "net.msgs_sent"
        assert canonical_name("custom.thing") == "custom.thing"

    def test_alias_mapping(self):
        assert canonical_name("net.sent") == "net.msgs_sent"
        assert canonical_name("resilience.breaker.trips") == "resilience.breaker_trips"

    def test_summary_suffixes_follow_the_alias(self):
        assert canonical_name("net.sent.increments") == "net.msgs_sent.increments"
        assert canonical_name("net.energy_j.total") == "energy.j_spent.total"


class TestCanonicalSummary:
    def test_rekeys_legacy_counters(self):
        monitor = Monitor()
        monitor.counter("net.sent").add(3)
        summary = canonical_summary(monitor)
        assert summary["net.msgs_sent"] == 3.0
        assert summary["net.msgs_sent.increments"] == 1
        assert "net.sent" not in summary

    def test_colliding_twins_are_summed(self):
        monitor = Monitor()
        monitor.counter("net.sent").add(2)
        monitor.counter("net.msgs_sent").add(5)
        summary = canonical_summary(monitor)
        assert summary["net.msgs_sent"] == 7.0
        assert summary["net.msgs_sent.increments"] == 2

    def test_keys_are_sorted(self):
        monitor = Monitor()
        monitor.counter("queries.submitted").add()
        monitor.counter("net.sent").add()
        monitor.gauge("faults.active").set(1.0)
        keys = list(canonical_summary(monitor))
        assert keys == sorted(keys)

    def test_rollup_groups_by_subsystem(self):
        monitor = Monitor()
        monitor.counter("net.sent").add(4)
        monitor.counter("net.dropped").add(1)
        monitor.counter("grid.jobs_dispatched").add(2)
        monitor.counter("net.energy_j").add(0.5)  # aliases into energy.*
        grouped = rollup_by_subsystem(monitor)
        assert list(grouped) == ["energy", "grid", "net"]
        assert grouped["net"]["net.msgs_sent"] == 4.0
        assert grouped["energy"]["energy.j_spent"] == 0.5
        for sub, vals in grouped.items():
            assert list(vals) == sorted(vals)
