"""The SLO engine: signals, sliding windows, alerts, health verdicts."""

import math

import pytest

from repro.observability.slo import (
    SLO,
    AlertEvent,
    Signal,
    SLOEvaluator,
    breaker_slo,
    default_slos,
    render_health,
)
from repro.observability.tracer import Tracer
from repro.simkernel import Monitor, Simulator


def make_slo(signal, objective, comparison="<=", window_s=60.0,
             severity="page", name="test.metric"):
    return SLO(name, "test objective", signal, objective,
               comparison=comparison, window_s=window_s, severity=severity)


class TestValidation:
    def test_signal_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Signal("median", "x.y")

    def test_ratio_needs_denominator(self):
        with pytest.raises(ValueError, match="denominator"):
            Signal("ratio", "x.y")

    def test_percentile_needs_q(self):
        with pytest.raises(ValueError, match="q"):
            Signal("percentile", "x.y")

    def test_prefix_only_for_counters(self):
        with pytest.raises(ValueError, match="prefix"):
            Signal("mean", "x.y", prefix=True)
        Signal("delta", "x.", prefix=True)  # fine

    def test_slo_name_needs_subsystem(self):
        with pytest.raises(ValueError, match="subsystem"):
            make_slo(Signal("delta", "x.y"), 1.0, name="flat")

    def test_slo_comparison_and_severity(self):
        with pytest.raises(ValueError, match="comparison"):
            make_slo(Signal("delta", "x.y"), 1.0, comparison="<")
        with pytest.raises(ValueError, match="severity"):
            make_slo(Signal("delta", "x.y"), 1.0, severity="panic")

    def test_slo_window_positive(self):
        with pytest.raises(ValueError, match="window_s"):
            make_slo(Signal("delta", "x.y"), 1.0, window_s=0.0)

    def test_evaluator_needs_slos(self):
        with pytest.raises(ValueError, match="at least one"):
            SLOEvaluator(Simulator(), Monitor(), [])

    def test_evaluator_rejects_duplicate_names(self):
        slo = make_slo(Signal("delta", "x.y"), 1.0)
        with pytest.raises(ValueError, match="unique"):
            SLOEvaluator(Simulator(), Monitor(), [slo, slo])

    def test_evaluator_interval_positive(self):
        slo = make_slo(Signal("delta", "x.y"), 1.0)
        with pytest.raises(ValueError, match="interval_s"):
            SLOEvaluator(Simulator(), Monitor(), [slo], interval_s=0.0)

    def test_start_until_in_the_past(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        sim.run()
        ev = SLOEvaluator(sim, Monitor(), [make_slo(Signal("delta", "x.y"), 1.0)])
        with pytest.raises(ValueError, match="until_s"):
            ev.start(50.0)

    def test_met_both_comparisons(self):
        le = make_slo(Signal("delta", "x.y"), 5.0, comparison="<=")
        assert le.met(5.0) and not le.met(5.1)
        ge = make_slo(Signal("delta", "x.y"), 0.9, comparison=">=")
        assert ge.met(0.9) and not ge.met(0.89)

    def test_subsystem_prefix(self):
        assert make_slo(Signal("delta", "x.y"), 1.0, name="grid.up").subsystem == "grid"


class TestSignals:
    """Each signal kind, evaluated by hand-driving ticks."""

    def setup_method(self):
        self.sim = Simulator()
        self.monitor = Monitor()

    def evaluator(self, *slos, **kwargs):
        return SLOEvaluator(self.sim, self.monitor, list(slos), **kwargs)

    def advance(self, dt):
        self.sim.schedule(dt, lambda: None)
        self.sim.run()

    def test_counter_delta_slides_out_of_window(self):
        slo = make_slo(Signal("delta", "net.drops"), 2.0, window_s=60.0)
        ev = self.evaluator(slo)
        self.monitor.counter("net.drops").add(5)
        self.advance(10.0)
        ev.tick()
        assert ev.status["test.metric"].value == 5.0
        assert ev.status["test.metric"].firing
        # 70 s later the burst has left the 60 s window
        self.advance(70.0)
        ev.tick()
        assert ev.status["test.metric"].value == 0.0
        assert not ev.status["test.metric"].firing

    def test_counter_rate(self):
        slo = make_slo(Signal("rate", "net.drops"), 1.0, window_s=50.0)
        ev = self.evaluator(slo)
        self.monitor.counter("net.drops").add(10)
        self.advance(10.0)
        ev.tick()
        assert ev.status["test.metric"].value == pytest.approx(10.0 / 50.0)

    def test_ratio_none_while_denominator_zero(self):
        slo = make_slo(Signal("ratio", "q.failed", denominator="q.total"), 0.1)
        ev = self.evaluator(slo)
        self.advance(1.0)
        ev.tick()
        assert ev.status["test.metric"].value is None
        assert not ev.status["test.metric"].firing  # no data is not a breach
        self.monitor.counter("q.failed").add(1)
        self.monitor.counter("q.total").add(4)
        self.advance(1.0)
        ev.tick()
        assert ev.status["test.metric"].value == pytest.approx(0.25)

    def test_prefix_counters_are_summed(self):
        slo = make_slo(Signal("delta", "q.failed.", prefix=True), 0.0)
        ev = self.evaluator(slo)
        self.monitor.counter("q.failed.timeout").add(2)
        self.monitor.counter("q.failed.no-route").add(3)
        self.monitor.counter("q.succeeded").add(7)  # not under the prefix
        self.advance(1.0)
        ev.tick()
        assert ev.status["test.metric"].value == 5.0

    def test_histogram_percentile(self):
        slo = make_slo(Signal("percentile", "q.latency", q=50.0), 10.0)
        ev = self.evaluator(slo)
        for v in (1.0, 2.0, 3.0, 4.0, 100.0):
            self.monitor.histogram("q.latency").observe(v)
        self.advance(1.0)
        ev.tick()
        assert ev.status["test.metric"].value == pytest.approx(3.0)

    def test_series_mean_uses_sample_timestamps(self):
        slo = make_slo(Signal("mean", "x.level"), 1.0, window_s=60.0)
        ev = self.evaluator(slo)
        self.monitor.series("x.level").record(5.0, 100.0)  # will age out
        self.advance(100.0)
        self.monitor.series("x.level").record(90.0, 2.0)
        self.monitor.series("x.level").record(95.0, 4.0)
        ev.tick()
        assert ev.status["test.metric"].value == pytest.approx(3.0)

    def test_gauge_last(self):
        slo = make_slo(Signal("last", "x.depth"), 3.0)
        ev = self.evaluator(slo)
        self.advance(1.0)
        ev.tick()
        assert ev.status["test.metric"].value is None  # never set
        self.monitor.gauge("x.depth").set(7.0)
        self.advance(1.0)
        ev.tick()
        assert ev.status["test.metric"].value == 7.0

    def test_probe_sampled_each_tick(self):
        online = [1.0]
        slo = make_slo(Signal("mean", "grid.uplink_online"), 0.99,
                       comparison=">=", window_s=30.0)
        ev = self.evaluator(slo).probe("grid.uplink_online", lambda: online[0])
        self.advance(10.0)
        ev.tick()
        assert ev.status["test.metric"].value == 1.0
        online[0] = 0.0
        self.advance(10.0)
        ev.tick()
        assert ev.status["test.metric"].value == pytest.approx(0.5)
        assert ev.status["test.metric"].firing


class TestAlerting:
    def drive(self, tracer=None):
        """One fire/resolve cycle on a counter-delta SLO."""
        sim, monitor = Simulator(), Monitor()
        slo = make_slo(Signal("delta", "net.drops"), 0.0, window_s=30.0,
                       name="net.drops_budget")
        ev = SLOEvaluator(sim, monitor, [slo], interval_s=10.0, tracer=tracer)
        ev.start(100.0)
        sim.schedule(15.0, lambda: monitor.counter("net.drops").add(3))
        sim.run(until=100.0)
        return monitor, ev

    def test_fire_and_resolve_on_timeline(self):
        monitor, ev = self.drive()
        phases = [(e.phase, e.time_s) for e in ev.timeline]
        assert phases == [("fire", 20.0), ("resolve", 60.0)]
        assert isinstance(ev.timeline[0], AlertEvent)
        assert ev.timeline[0].severity == "page"
        st = ev.status["net.drops_budget"]
        assert st.fired == 1 and st.resolved == 1 and not st.firing
        assert 0.0 < st.compliance < 1.0

    def test_monitor_counters(self):
        monitor, ev = self.drive()
        counters = monitor.counters()
        assert counters["slo.alerts_fired"] == 1.0
        assert counters["slo.alerts_resolved"] == 1.0
        assert counters["slo.evaluations"] == 10.0  # t=10..100 every 10 s

    def test_trace_events(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=True)
        slo = make_slo(Signal("delta", "net.drops"), 0.0, window_s=30.0,
                       name="net.drops_budget")
        monitor = Monitor()
        ev = SLOEvaluator(sim, monitor, [slo], interval_s=10.0, tracer=tracer)
        ev.start(100.0)
        sim.schedule(15.0, lambda: monitor.counter("net.drops").add(3))
        sim.run(until=100.0)
        names = [e.name for e in tracer.records if e.name.startswith("slo.")
                 and e.name != "slo.sample"]
        assert names == ["slo.fire", "slo.resolve"]
        samples = [e for e in tracer.records if e.name == "slo.sample"]
        assert len(samples) == 10
        assert {e.attrs["slo"] for e in samples} == {"net.drops_budget"}

    def test_no_sample_events_when_disabled(self):
        sim = Simulator()
        tracer = Tracer(sim, enabled=True)
        monitor = Monitor()
        slo = make_slo(Signal("delta", "net.drops"), 0.0)
        ev = SLOEvaluator(sim, monitor, [slo], interval_s=10.0, tracer=tracer,
                          record_samples=False)
        ev.start(50.0)
        sim.run(until=50.0)
        assert not [e for e in tracer.records if e.name == "slo.sample"]

    def test_deterministic_timeline(self):
        _, a = self.drive()
        _, b = self.drive()
        assert a.timeline == b.timeline

    def test_breached_series_tracks_firing_count(self):
        monitor, ev = self.drive()
        series = monitor.series("slo.breached")
        assert series.max() == 1.0
        assert series.last() == 0.0


class TestHealth:
    def build(self, severity="page"):
        sim, monitor = Simulator(), Monitor()
        slos = [
            make_slo(Signal("delta", "net.drops"), 0.0, name="net.drops_budget",
                     severity=severity),
            make_slo(Signal("delta", "queries.failed"), 0.0,
                     name="queries.failure_budget", severity="warn"),
        ]
        ev = SLOEvaluator(sim, monitor, slos, interval_s=10.0)
        return sim, monitor, ev

    def test_healthy_before_and_after_clean_run(self):
        sim, monitor, ev = self.build()
        health = ev.health()
        assert health.verdict == "healthy"
        ev.start(50.0)
        sim.run(until=50.0)
        assert ev.health().verdict == "healthy"
        assert ev.health().firing == ()
        assert all(s.score == 1.0 for s in ev.health().subsystems)

    def test_page_alert_is_critical(self):
        sim, monitor, ev = self.build(severity="page")
        monitor.counter("net.drops").add(1)
        ev.start(20.0)
        sim.run(until=20.0)
        health = ev.health()
        assert health.verdict == "critical"
        assert "net.drops_budget" in health.firing
        by_name = {s.subsystem: s for s in health.subsystems}
        assert by_name["net"].status == "critical"
        assert by_name["queries"].status == "healthy"

    def test_warn_alert_is_degraded(self):
        sim, monitor, ev = self.build(severity="warn")
        monitor.counter("net.drops").add(1)
        ev.start(20.0)
        sim.run(until=20.0)
        assert ev.health().verdict == "degraded"

    def test_past_breach_keeps_subsystem_degraded(self):
        sim, monitor, ev = self.build(severity="page")
        monitor.counter("net.drops").add(1)
        ev.start(200.0)  # long run: alert resolves, compliance < 1 remains
        sim.run(until=200.0)
        health = ev.health()
        assert health.firing == ()
        by_name = {s.subsystem: s for s in health.subsystems}
        assert by_name["net"].status == "degraded"
        assert 0.0 < by_name["net"].score < 1.0
        assert health.verdict == "degraded"

    def test_render_health_mentions_verdict_and_alerts(self):
        sim, monitor, ev = self.build(severity="page")
        monitor.counter("net.drops").add(1)
        ev.start(20.0)
        sim.run(until=20.0)
        text = render_health(ev)
        assert "grid health: CRITICAL" in text
        assert "net.drops_budget" in text
        assert "fire" in text
        assert "FIRING" in text
        no_alerts = render_health(ev, alerts=False)
        assert "alerts" not in no_alerts


class TestScheduling:
    def test_start_ticks_until_horizon_only(self):
        sim, monitor = Simulator(), Monitor()
        ev = SLOEvaluator(sim, monitor, [make_slo(Signal("delta", "x.y"), 1.0)],
                          interval_s=15.0)
        ev.start(100.0)
        sim.run()  # exhaust the heap: self-rescheduling must terminate
        assert monitor.counters()["slo.evaluations"] == 6.0  # t=15..90
        assert sim.now <= 100.0


class TestDefaultCatalog:
    def test_default_slos_are_well_formed(self):
        slos = default_slos()
        names = [s.name for s in slos]
        assert len(set(names)) == len(names)
        assert "queries.latency_p95" in names
        assert "grid.uplink_availability" in names
        SLOEvaluator(Simulator(), Monitor(), slos)  # constructible

    def test_breaker_slo(self):
        slo = breaker_slo(threshold=0.5)
        assert slo.subsystem == "resilience"
        assert slo.objective == 0.5
        assert slo.signal.kind == "last"
