"""The dashboard CLI: activity, SLO status, alert timeline, verdict."""

from repro.observability.analysis import Trace
from repro.observability.dashboard import (
    main,
    render_activity,
    render_alerts,
    render_dashboard,
    render_slos,
    render_verdict,
)
from repro.observability.export import write_jsonl
from repro.observability.tracer import SpanRecord, TraceEvent


def span(span_id, name, start, end, parent=None):
    record = SpanRecord(trace_id=0, span_id=span_id, parent_id=parent,
                        name=name, start_s=start, attrs={})
    record.end_s = end
    return record


def sample(t, slo, value, objective, breached, severity="page"):
    return TraceEvent(trace_id=0, parent_id=None, name="slo.sample", time_s=t,
                      attrs={"slo": slo, "value": value, "objective": objective,
                             "comparison": "<=", "severity": severity,
                             "breached": breached})


def transition(t, name, slo="net.drops_budget", value=1.0):
    return TraceEvent(trace_id=0, parent_id=None, name=name, time_s=t,
                      attrs={"slo": slo, "value": value, "objective": 0.0,
                             "comparison": "<=", "severity": "page"})


def fault(t, name, **attrs):
    return TraceEvent(trace_id=0, parent_id=None, name=name, time_s=t,
                      attrs=attrs)


def drill_trace():
    """A miniature drill: activity, samples, one fire/resolve pair."""
    records = [
        span(1, "queries.epoch", 0.0, 5.0),
        span(2, "net.send", 1.0, 2.0, parent=1),
        span(3, "queries.epoch", 50.0, 56.0),
        fault(20.0, "faults.inject", fault_type="UplinkOutage"),
        fault(60.0, "faults.recover", fault_type="UplinkOutage"),
        transition(30.0, "slo.fire"),
        transition(75.0, "slo.resolve"),
        sample(15.0, "net.drops_budget", 0.0, 0.0, False),
        sample(30.0, "net.drops_budget", 1.0, 0.0, True),
        sample(75.0, "net.drops_budget", 0.0, 0.0, False),
        sample(15.0, "queries.latency_p95", 0.4, 10.0, False, severity="warn"),
        sample(75.0, "queries.latency_p95", 0.5, 10.0, False, severity="warn"),
    ]
    return Trace(records)


class TestRenderers:
    def test_activity_lists_subsystems(self):
        text = render_activity(drill_trace())
        assert "queries" in text and "net" in text
        assert "activity" in text

    def test_activity_empty(self):
        assert "no records" in render_activity(Trace([]))

    def test_slos_table(self):
        text = render_slos(drill_trace())
        assert "net.drops_budget" in text
        assert "queries.latency_p95" in text
        assert "<= 10" in text

    def test_slos_without_samples(self):
        assert "no slo.sample" in render_slos(Trace([span(1, "a.b", 0.0, 1.0)]))

    def test_alert_timeline_interleaves_faults(self):
        lines = render_alerts(drill_trace()).splitlines()
        # "t=    20.00 s  fault inject ..." -> token 3 is the label's first word
        labels = [line.split()[3] for line in lines[1:]]
        # chronological: inject(20) fire(30) recover(60) resolve(75)
        assert labels == ["fault", "ALERT", "fault", "alert"]

    def test_alert_timeline_empty(self):
        assert "empty" in render_alerts(Trace([span(1, "a.b", 0.0, 1.0)]))

    def test_verdict_recovered_run_is_degraded(self):
        # the alert resolved, but a breach happened: degraded, not healthy
        assert "DEGRADED" in render_verdict(drill_trace())

    def test_verdict_currently_firing_page_is_critical(self):
        records = [sample(10.0, "net.drops_budget", 1.0, 0.0, True)]
        text = render_verdict(Trace(records))
        assert "CRITICAL" in text
        assert "net.drops_budget" in text

    def test_verdict_clean_run_is_healthy(self):
        records = [sample(10.0, "net.drops_budget", 0.0, 0.0, False)]
        assert "HEALTHY" in render_verdict(Trace(records))

    def test_verdict_unknown_without_samples(self):
        assert "unknown" in render_verdict(Trace([]))

    def test_full_dashboard_has_all_sections(self):
        text = render_dashboard(drill_trace())
        for needle in ("trace:", "activity", "SLOs", "alert timeline",
                       "verdict:"):
            assert needle in text


class TestCli:
    def export(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = drill_trace()
        write_jsonl([*trace.spans, *trace.events], path)
        return str(path)

    def test_renders_exported_trace(self, tmp_path, capsys):
        assert main([self.export(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "verdict: DEGRADED" in out
        assert "alert timeline" in out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_trace_exits_two(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 2
        assert "empty trace" in capsys.readouterr().err

    def test_malformed_line_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "event"\n')
        assert main([str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_width_exits_two(self, tmp_path, capsys):
        assert main([self.export(tmp_path), "--width", "0"]) == 2
        assert "--width" in capsys.readouterr().err
