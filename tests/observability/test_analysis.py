"""Trace analysis: critical paths that attribute 100% of latency,
rollups, JSONL round-trips, and the report CLI."""

import pytest

from repro.observability.analysis import (
    Trace,
    critical_path,
    event_counts,
    self_times,
    subsystem_rollup,
)
from repro.observability.export import read_jsonl, record_from_dict, write_jsonl
from repro.observability.report import main, pick_root, render_report
from repro.observability.tracer import SpanRecord, Tracer


class Clock:
    """A stand-in simulator: just a settable ``now``."""

    def __init__(self) -> None:
        self.now = 0.0


def make_tracer():
    clock = Clock()
    return clock, Tracer(clock)


def build_sample_trace():
    """A root with overlapping children and a grandchild:

    query.run   [0, 10]
      net.send  [1, 4]
      grid.offload [3, 8]
        grid.job   [5, 7]
    """
    clock, tracer = make_tracer()
    root = tracer.span("query.run")
    with tracer.use(root):
        clock.now = 1.0
        a = tracer.span("net.send")
        clock.now = 3.0
        b = tracer.span("grid.offload")
        with tracer.use(b):
            clock.now = 5.0
            g = tracer.span("grid.job")
            tracer.event("grid.dispatch", site="site-0")
            clock.now = 7.0
            g.end()
        a.end_at(4.0)
        clock.now = 8.0
        b.end()
        tracer.event("query.decision", model="grid")
    clock.now = 10.0
    root.end()
    return tracer, root.record


class TestTraceIndex:
    def test_roots_children_and_subtree(self):
        tracer, root = build_sample_trace()
        trace = Trace(tracer)
        assert [r.name for r in trace.roots()] == ["query.run"]
        kids = trace.children(root)
        assert [k.name for k in kids] == ["net.send", "grid.offload"]
        assert [s.name for s in trace.subtree(root)] == [
            "query.run", "net.send", "grid.offload", "grid.job"]

    def test_connectivity_and_subsystems(self):
        tracer, root = build_sample_trace()
        trace = Trace(tracer)
        assert trace.is_connected(root)
        assert trace.subsystems(root) == {"query", "net", "grid"}

    def test_disconnected_trace_detected(self):
        # same trace id, but the second span is not in the root's subtree
        root = SpanRecord(0, 0, None, "query.run", 0.0, {})
        root.end_s = 1.0
        stray = SpanRecord(0, 1, 99, "net.send", 0.2, {})
        stray.end_s = 0.5
        trace = Trace([root, stray])
        assert not trace.is_connected(root)

    def test_events_under_and_find(self):
        tracer, root = build_sample_trace()
        trace = Trace(tracer)
        events = trace.events_under(root)
        assert [e.name for e in events] == ["grid.dispatch", "query.decision"]
        assert [s.name for s in trace.find("grid.")] == ["grid.offload", "grid.job"]


class TestCriticalPath:
    def test_segments_account_for_all_latency(self):
        tracer, root = build_sample_trace()
        trace = Trace(tracer)
        segments = critical_path(trace, root)
        # backward walk: the child whose end gated each instant claims it
        assert [(s.span.name, s.start_s, s.end_s) for s in segments] == [
            ("query.run", 0.0, 1.0),
            ("net.send", 1.0, 3.0),
            ("grid.offload", 3.0, 5.0),
            ("grid.job", 5.0, 7.0),
            ("grid.offload", 7.0, 8.0),
            ("query.run", 8.0, 10.0),
        ]
        assert sum(s.duration_s for s in segments) == root.end_s - root.start_s
        assert [s.depth for s in segments] == [0, 1, 1, 2, 1, 0]

    def test_attribution_is_exact_on_irregular_floats(self):
        clock, tracer = make_tracer()
        root = tracer.span("query.run")
        with tracer.use(root):
            clock.now = 0.1 + 0.2  # 0.30000000000000004
            child = tracer.span("net.send")
            clock.now = 1.0 / 3.0 + 1.0
            child.end()
        clock.now = 2.718281828
        root.end()
        trace = Trace(tracer)
        segments = critical_path(trace, root.record)
        assert sum(s.duration_s for s in segments) == pytest.approx(
            root.record.duration_s, rel=0, abs=1e-12)

    def test_open_root_is_rejected(self):
        _, tracer = make_tracer()
        root = tracer.span("query.run")
        with pytest.raises(ValueError):
            critical_path(Trace(tracer), root.record)

    def test_open_children_are_skipped(self):
        clock, tracer = make_tracer()
        root = tracer.span("query.run")
        with tracer.use(root):
            tracer.span("net.send")  # never ended
        clock.now = 4.0
        root.end()
        segments = critical_path(Trace(tracer), root.record)
        assert [(s.span.name, s.duration_s) for s in segments] == [("query.run", 4.0)]

    def test_child_overhanging_root_is_clipped(self):
        clock, tracer = make_tracer()
        root = tracer.span("query.run")
        with tracer.use(root):
            clock.now = 2.0
            child = tracer.span("net.send")
        clock.now = 3.0
        root.end()
        clock.now = 9.0
        child.end()  # ends after its parent
        segments = critical_path(Trace(tracer), root.record)
        assert sum(s.duration_s for s in segments) == 3.0
        assert [(s.span.name, s.start_s, s.end_s) for s in segments] == [
            ("query.run", 0.0, 2.0), ("net.send", 2.0, 3.0)]


class TestRollups:
    def test_self_times_sum_to_root_duration(self):
        tracer, root = build_sample_trace()
        times = self_times(Trace(tracer), root)
        assert times == {"query.run": 3.0, "net.send": 2.0,
                         "grid.offload": 3.0, "grid.job": 2.0}
        assert sum(times.values()) == root.duration_s

    def test_subsystem_rollup_shares_sum_to_one(self):
        tracer, root = build_sample_trace()
        rows = subsystem_rollup(Trace(tracer), root)
        assert [r["subsystem"] for r in rows] == ["grid", "query", "net"]
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)
        by_sub = {r["subsystem"]: r for r in rows}
        assert by_sub["grid"]["self_s"] == 5.0
        assert by_sub["grid"]["spans"] == 2

    def test_event_counts(self):
        tracer, root = build_sample_trace()
        trace = Trace(tracer)
        assert event_counts(trace) == {"grid.dispatch": 1, "query.decision": 1}
        assert list(event_counts(trace)) == sorted(event_counts(trace))


class TestExport:
    def test_jsonl_round_trip_preserves_analysis(self, tmp_path):
        tracer, root = build_sample_trace()
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(tracer.records, path)
        assert count == len(tracer.records)
        records = read_jsonl(path)
        assert [r.to_dict() for r in records] == [r.to_dict() for r in tracer.records]
        reloaded = Trace(records)
        reroot = reloaded.roots()[0]
        assert self_times(reloaded, reroot) == self_times(Trace(tracer), root)

    def test_open_span_round_trips_as_open(self, tmp_path):
        _, tracer = make_tracer()
        tracer.span("net.send", relay=2)
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer.records, path)
        (record,) = read_jsonl(path)
        assert record.end_s is None
        assert record.attrs == {"relay": 2}

    def test_unjsonable_attrs_are_coerced(self, tmp_path):
        import numpy as np

        _, tracer = make_tracer()
        span = tracer.span("net.send", bits=np.float64(42.5), obj=object())
        span.end()
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer.records, path)
        (record,) = read_jsonl(path)
        assert record.attrs["bits"] == 42.5
        assert isinstance(record.attrs["obj"], str)

    def test_bad_lines_are_rejected_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span"\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            read_jsonl(path)
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record kind"):
            read_jsonl(path)

    def test_record_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            record_from_dict({"kind": "nope"})


class TestReport:
    def test_pick_root_prefers_longest_closed(self):
        tracer, root = build_sample_trace()
        clock = tracer.sim
        short = tracer.span("session.short")
        clock.now = 10.5
        short.end()
        tracer.span("session.open")  # open: never eligible
        trace = Trace(tracer)
        assert pick_root(trace).name == "query.run"
        assert pick_root(trace, "session.").name == "session.short"
        assert pick_root(trace, "nope.") is None

    def test_render_report_shows_path_rollup_events(self):
        tracer, root = build_sample_trace()
        text = render_report(Trace(tracer))
        assert "critical path of 'query.run'" in text
        assert "latency by subsystem" in text
        assert "grid.dispatch" in text
        assert "% of total" in text

    def test_cli_on_exported_trace(self, tmp_path, capsys):
        tracer, _ = build_sample_trace()
        path = tmp_path / "trace.jsonl"
        tracer.export(path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical path of 'query.run'" in out
        assert "4 spans, 2 events, 1 trace ids, 1 roots" in out

    def test_cli_root_prefix_and_missing_file(self, tmp_path, capsys):
        tracer, _ = build_sample_trace()
        path = tmp_path / "trace.jsonl"
        tracer.export(path)
        assert main([str(path), "--root", "nope."]) == 0
        assert "no closed root span" in capsys.readouterr().out
        assert main([str(tmp_path / "missing.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err
