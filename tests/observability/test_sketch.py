"""QuantileSketch / MultiResolutionSeries: error bounds, exact merges,
bounded memory."""

import math
import random

import numpy as np
import pytest

from repro.observability.sketch import (
    BUCKET_CELLS,
    MultiResolutionSeries,
    QuantileSketch,
    TelemetryConfig,
)


def relative_error(est, true):
    return abs(est - true) / abs(true) if true else abs(est)


class TestQuantileSketch:
    def test_quantiles_within_alpha_of_exact(self):
        rng = random.Random(7)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
        sk = QuantileSketch(alpha=0.01)
        for v in values:
            sk.observe(v)
        for q in (1, 25, 50, 75, 95, 99, 99.9):
            # the guarantee is vs the order statistic at the rank
            # (np.percentile's default interpolates between two of them)
            exact = float(np.percentile(values, q, method="lower"))
            assert relative_error(sk.percentile(q), exact) <= 0.01

    def test_exact_scalars_ride_along(self):
        sk = QuantileSketch()
        for v in (3.0, -1.5, 0.0, 8.25):
            sk.observe(v)
        assert sk.count == 4
        assert sk.sum == pytest.approx(9.75)
        assert sk.min == -1.5 and sk.max == 8.25 and sk.last == 8.25
        assert sk.mean() == pytest.approx(9.75 / 4)

    def test_zero_and_negative_values(self):
        sk = QuantileSketch(alpha=0.01)
        for v in (-100.0, -10.0, 0.0, 0.0, 10.0, 100.0):
            sk.observe(v)
        assert sk.quantile(0.0) == -100.0  # clamped to exact min
        assert sk.quantile(1.0) == 100.0  # clamped to exact max
        assert sk.quantile(0.5) == 0.0  # median falls in the zero bucket

    def test_empty_sketch_is_nan(self):
        sk = QuantileSketch()
        assert math.isnan(sk.quantile(0.5))
        assert math.isnan(sk.mean())
        assert len(sk) == 0

    def test_merge_equals_sketch_of_union(self):
        """The property the parallel reduction relies on: merging the
        parts is bit-identical to sketching the whole stream."""
        rng = random.Random(3)
        parts = [[rng.expovariate(0.2) for _ in range(400)] for _ in range(4)]
        merged = QuantileSketch()
        for part in parts:
            piece = QuantileSketch()
            for v in part:
                piece.observe(v)
            merged.merge(piece)
        whole = QuantileSketch()
        for part in parts:
            for v in part:
                whole.observe(v)
        ms, ws = merged.state(), whole.state()
        # buckets, counts and extremes are exact integer/compare ops;
        # only the running float sum depends on addition order
        assert ms[:2] == ws[:2]
        assert ms[2] == pytest.approx(ws[2], rel=1e-12)
        assert ms[3:] == ws[3:]

    def test_merge_order_is_deterministic(self):
        """What the parallel runner actually needs: the same pieces
        merged in the same (seed) order give bit-identical state."""
        rng = random.Random(9)
        parts = [[rng.expovariate(1.0) for _ in range(100)] for _ in range(3)]
        pieces = []
        for part in parts:
            piece = QuantileSketch()
            for v in part:
                piece.observe(v)
            pieces.append(piece)
        a, b = QuantileSketch(), QuantileSketch()
        for piece in pieces:
            a.merge(piece)
        for piece in pieces:
            b.merge(piece)
        assert a.state() == b.state()

    def test_merge_rejects_mismatched_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.05))

    def test_diff_recovers_the_delta(self):
        sk = QuantileSketch()
        for v in (1.0, 2.0, 3.0):
            sk.observe(v)
        snap = sk.copy()
        for v in (50.0, 60.0):
            sk.observe(v)
        delta = sk.diff(snap)
        assert delta.count == 2
        assert delta.sum == pytest.approx(110.0)
        # delta extremes are bucket-midpoint approximations
        assert relative_error(delta.min, 50.0) <= delta.alpha
        assert relative_error(delta.max, 60.0) <= delta.alpha
        assert sk.diff(None).state() == sk.state()

    def test_diff_rejects_foreign_snapshot(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.observe(1.0)
        b.observe(1000.0)
        b.observe(2000.0)
        with pytest.raises(ValueError, match="older snapshot"):
            a.diff(b)

    def test_memory_is_bounded_by_distinct_buckets(self):
        sk = QuantileSketch(alpha=0.01)
        rng = random.Random(11)
        for _ in range(100_000):
            sk.observe(rng.uniform(1e-3, 1e6))
        # nine decades at alpha=0.01 is ~1040 buckets, not 100k values
        assert sk.cells < 1100

    def test_round_trips_through_dict(self):
        sk = QuantileSketch(alpha=0.02)
        for v in (-4.0, 0.0, 7.5, 7.5):
            sk.observe(v)
        assert QuantileSketch.from_dict(sk.to_dict()).state() == sk.state()


class TestMultiResolutionSeries:
    def test_buckets_aggregate_per_tier(self):
        mrs = MultiResolutionSeries(resolutions=(1.0, 10.0), capacity=240)
        for t, v in ((0.2, 1.0), (0.8, 3.0), (1.5, 5.0), (12.0, 7.0)):
            mrs.record(t, v)
        fine = mrs.samples(1.0)
        assert fine[0] == (0.0, 2, 4.0, 1.0, 3.0, 3.0)
        assert fine[1] == (0.0 + 1.0, 1, 5.0, 5.0, 5.0, 5.0)
        coarse = mrs.samples(10.0)
        assert coarse[0] == (0.0, 3, 9.0, 1.0, 5.0, 5.0)
        assert coarse[1] == (10.0, 1, 7.0, 7.0, 7.0, 7.0)

    def test_eviction_keeps_memory_flat(self):
        mrs = MultiResolutionSeries(resolutions=(1.0,), capacity=4)
        for t in range(100):
            mrs.record(float(t), 1.0)
        assert len(mrs) == 4
        assert mrs.evictions == 96
        assert mrs.cells == 4 * BUCKET_CELLS
        # only the most recent capacity*resolution seconds survive
        assert [row[0] for row in mrs.samples()] == [96.0, 97.0, 98.0, 99.0]

    def test_late_samples_drop_once_bucket_evicted(self):
        mrs = MultiResolutionSeries(resolutions=(1.0,), capacity=4)
        for t in range(10):
            mrs.record(float(t), 1.0)
        mrs.record(0.5, 9.0)  # bucket 0 is long gone
        assert mrs.late_drops == 1
        mrs.record(7.5, 9.0)  # bucket 7 is still retained
        assert mrs.late_drops == 1
        assert [row[0] for row in mrs.samples()] == [6.0, 7.0, 8.0, 9.0]

    def test_merge_folds_tier_buckets(self):
        a = MultiResolutionSeries(resolutions=(1.0,), capacity=240)
        b = MultiResolutionSeries(resolutions=(1.0,), capacity=240)
        a.record(0.5, 1.0)
        a.record(2.5, 2.0)
        b.record(0.7, 3.0)
        b.record(1.5, 4.0)
        a.merge(b)
        assert a.samples() == [(0.0, 2, 4.0, 1.0, 3.0, 3.0),
                               (1.0, 1, 4.0, 4.0, 4.0, 4.0),
                               (2.0, 1, 2.0, 2.0, 2.0, 2.0)]

    def test_merge_rejects_mismatched_resolutions(self):
        a = MultiResolutionSeries(resolutions=(1.0,))
        b = MultiResolutionSeries(resolutions=(2.0,))
        with pytest.raises(ValueError, match="resolutions"):
            a.merge(b)

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            MultiResolutionSeries(resolutions=())
        with pytest.raises(ValueError):
            MultiResolutionSeries(resolutions=(10.0, 1.0))
        with pytest.raises(ValueError):
            MultiResolutionSeries(capacity=0)


class TestTelemetryConfig:
    def test_defaults_are_valid(self):
        cfg = TelemetryConfig()
        assert cfg.histogram_max_raw == 1024
        assert cfg.max_trace_records is None

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TelemetryConfig(histogram_max_raw=0)
        with pytest.raises(ValueError):
            TelemetryConfig(sketch_alpha=1.5)
        with pytest.raises(ValueError):
            TelemetryConfig(max_trace_records=0)
