"""Degenerate inputs: every renderer degrades to words, not tracebacks.

An operator pointing the tooling at a sparse run -- no queries, no SLO
engine attached, profiling left off -- must get a readable "nothing
here" message from every section, because a dashboard that crashes on
the empty case is useless exactly when things are broken.
"""

import json

from repro.observability.analysis import Trace
from repro.observability.dashboard import render_dashboard, render_slos, render_verdict
from repro.observability.ledger import render_ledger
from repro.observability.profile import render_hotspots
from repro.observability.profiling import HookProfiler
from repro.observability.report import main as report_main
from repro.observability.report import render_report, report_dict
from repro.observability.tracer import Tracer


class FakeSim:
    def __init__(self) -> None:
        self.now = 0.0


def sparse_tracer():
    """One non-query span; no SLO events, no queries, nothing else."""
    sim = FakeSim()
    tracer = Tracer(sim)
    span = tracer.span("net.send", src=0, dst=1)
    sim.now = 1.0
    span.end()
    return tracer


class TestDashboard:
    def test_empty_trace_renders_every_section(self):
        text = render_dashboard(Trace([]))
        assert "0 spans, 0 events" in text
        assert "no closed 'query.run' spans" in text  # ledger section
        assert isinstance(render_verdict(Trace([])), str)

    def test_trace_without_slo_data_renders(self):
        trace = Trace(sparse_tracer().records)
        text = render_dashboard(trace)
        assert "1 spans" in text
        slos = render_slos(trace)
        assert "slo" in slos.lower()

    def test_ledger_section_without_queries_is_a_sentence(self):
        text = render_ledger(Trace(sparse_tracer().records))
        assert "no closed 'query.run' spans" in text
        assert "\n" not in text  # one graceful line, not a broken table


class TestReport:
    def test_no_closed_root_with_self_times_requested(self):
        # self-times need a root; without one the report says so instead
        # of raising
        text = render_report(Trace([]), self_times_top=10)
        assert "no closed root span to analyze" in text

    def test_report_dict_self_times_none_without_root(self):
        doc = report_dict(Trace([]))
        assert doc["self_times"] is None
        assert doc["critical_path"] is None

    def test_cli_self_times_on_rootless_trace(self, tmp_path, capsys):
        path = tmp_path / "sparse.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            for record in sparse_tracer().records:
                fh.write(json.dumps(record.to_dict()) + "\n")
        assert report_main([str(path), "--root", "query.",
                            "--self-times", "5"]) == 0
        out = capsys.readouterr().out
        assert "no closed root span to analyze (prefix 'query.')" in out


class TestProfile:
    def test_empty_profile_renders_a_sentence(self):
        text = render_hotspots(HookProfiler().to_dict())
        assert "profiled 0 event dispatches" in text
        assert "no handlers recorded" in text
