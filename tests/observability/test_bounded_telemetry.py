"""Bounded monitor instruments: lazy sketch spill, rings, configure,
footprint, and the SLO engine over sketch-backed windows."""

import random

import numpy as np
import pytest

from repro.observability.sketch import TelemetryConfig
from repro.observability.slo import SLO, Signal, SLOEvaluator
from repro.simkernel import Monitor, Simulator
from repro.simkernel.monitor import Histogram, TimeSeries


class TestHistogramSpill:
    def test_exact_until_the_cap(self):
        h = Histogram("h", max_raw=10)
        for v in range(1, 10):
            h.observe(float(v))
        assert h.dropped == 0 and h.sketch is None
        assert h.percentile(50) == float(np.percentile(h.values, 50))

    def test_spills_to_ring_plus_sketch_past_the_cap(self):
        h = Histogram("h", max_raw=8, alpha=0.01)
        rng = random.Random(1)
        values = [rng.expovariate(0.5) for _ in range(500)]
        for v in values:
            h.observe(v)
        assert len(h) == 500  # logical count survives
        assert len(h.values) == 8  # raw ring holds the newest 8
        assert list(h.values) == pytest.approx(values[-8:])
        assert h.dropped == 500 - 8
        # exact scalars ride on the sketch
        assert h.sum == pytest.approx(sum(values))
        assert h.mean() == pytest.approx(np.mean(values))
        assert h.max() == max(values)
        assert h.last == values[-1]
        # percentiles within the sketch's relative error
        exact = float(np.percentile(values, 95, method="lower"))
        assert abs(h.percentile(95) - exact) <= 0.011 * exact

    def test_unlimited_cap_never_spills(self):
        h = Histogram("h", max_raw=None)
        for v in range(5000):
            h.observe(float(v))
        assert h.dropped == 0 and h.sketch is None
        assert len(h.values) == 5000

    def test_extend_all_state_combinations(self):
        rng = random.Random(2)
        a_vals = [rng.uniform(0, 10) for _ in range(30)]
        b_vals = [rng.uniform(0, 10) for _ in range(30)]
        for cap_a, cap_b in ((None, None), (8, None), (None, 8), (8, 8)):
            a = Histogram("a", max_raw=cap_a)
            b = Histogram("b", max_raw=cap_b)
            for v in a_vals:
                a.observe(v)
            for v in b_vals:
                b.observe(v)
            a.extend(b)
            assert len(a) == 60
            assert a.sum == pytest.approx(sum(a_vals) + sum(b_vals))
            assert a.max() == max(a_vals + b_vals)

    def test_reconfigure_shrink_spills_and_trims(self):
        h = Histogram("h", max_raw=None)
        for v in range(20):
            h.observe(float(v))
        h.reconfigure(max_raw=4)
        assert len(h.values) == 4 and h.dropped == 16
        assert len(h) == 20

    def test_alpha_change_after_spill_rejected(self):
        h = Histogram("h", max_raw=4)
        for v in range(10):
            h.observe(float(v))
        with pytest.raises(ValueError, match="alpha"):
            h.reconfigure(alpha=0.05)


class TestTimeSeriesSpill:
    def test_tiers_materialize_on_spill(self):
        s = TimeSeries("s", max_raw=8, resolutions=(1.0, 10.0), tier_capacity=240)
        for t in range(100):
            s.record(float(t), float(t % 7))
        assert s.tiers is not None
        assert s.dropped == 100 - 8
        assert len(s) == 100
        # the downsampled tiers cover the whole stream, the ring the tail
        assert sum(row[1] for row in s.tiers.samples(10.0)) == 100
        assert list(s.times) == [float(t) for t in range(92, 100)]
        assert s.last() == float(99 % 7)
        assert s.total() == pytest.approx(sum(float(t % 7) for t in range(100)))

    def test_extend_merges_sketch_and_tiers(self):
        a = TimeSeries("a", max_raw=4)
        b = TimeSeries("b", max_raw=4)
        for t in range(20):
            a.record(float(t), 1.0)
            b.record(float(t), 3.0)
        a.extend(b)
        assert len(a) == 40
        assert a.total() == pytest.approx(20 * 1.0 + 20 * 3.0)
        assert a.max() == 3.0


class TestMonitorConfigureAndFootprint:
    def test_configure_applies_telemetry_config(self):
        m = Monitor()
        m.histogram("h").observe(1.0)
        m.configure(TelemetryConfig(histogram_max_raw=4, series_max_raw=4))
        for v in range(10):
            m.histogram("h").observe(float(v))
        assert m.histogram("h").dropped > 0
        assert m.series("s")._max_raw == 4  # new instruments get the cap

    def test_configure_rejects_unknown_override(self):
        with pytest.raises(TypeError, match="unknown"):
            Monitor().configure(bogus_knob=1)

    def test_footprint_saturates_under_load(self):
        m = Monitor(histogram_max_raw=32, series_max_raw=32)
        def load(n):
            for v in range(n):
                m.histogram("lat").observe(float(v))
                m.series("depth").record(float(v), float(v))
        load(20_000)
        at_20k = m.footprint()["total"]
        load(20_000)  # double the volume
        at_40k = m.footprint()["total"]
        # rings and tiers are saturated; only the sketch's bucket count
        # still creeps (logarithmically in the value range)
        assert at_40k <= at_20k * 1.05

    def test_summary_emits_p95_and_p99(self):
        m = Monitor()
        for v in range(1, 101):
            m.histogram("q.lat").observe(float(v))
        summary = m.summary()
        assert summary["q.lat.p95"] == pytest.approx(
            float(np.percentile(np.arange(1.0, 101.0), 95)))
        assert "q.lat.p99" in summary
        assert summary["q.lat.p99"] >= summary["q.lat.p95"]

    def test_merge_identical_after_spill(self):
        def build():
            m = Monitor(histogram_max_raw=8, series_max_raw=8)
            for v in range(100):
                m.histogram("h").observe(float(v))
                m.series("s").record(float(v), float(v))
            return m
        merged_ab = Monitor(histogram_max_raw=8, series_max_raw=8)
        merged_ab.merge(build()).merge(build())
        merged_cd = Monitor(histogram_max_raw=8, series_max_raw=8)
        merged_cd.merge(build()).merge(build())
        assert merged_ab.summary() == merged_cd.summary()
        merged_ab.histogram("h").ensure_sketch()
        merged_cd.histogram("h").ensure_sketch()
        assert (merged_ab.histogram("h").sketch.state()
                == merged_cd.histogram("h").sketch.state())


class TestSLOOverSketches:
    def setup_method(self):
        self.sim = Simulator()
        self.monitor = Monitor(histogram_max_raw=16, series_max_raw=16)

    def advance(self, dt):
        self.sim.schedule(dt, lambda: None)
        self.sim.run()

    def test_percentile_signal_within_alpha_when_window_outran_the_ring(self):
        slo = SLO("q.p95", "p95 latency", Signal("percentile", "q.lat", q=95.0),
                  10.0, window_s=300.0)
        ev = SLOEvaluator(self.sim, self.monitor, [slo])
        rng = random.Random(3)
        values = []
        for _ in range(5):
            for _ in range(100):  # 500 total >> the 16-sample ring
                v = rng.expovariate(1.0)
                values.append(v)
                self.monitor.histogram("q.lat").observe(v)
            self.advance(10.0)
            ev.tick()
        got = ev.status["q.p95"].value
        exact = float(np.percentile(values, 95, method="lower"))
        assert abs(got - exact) <= 0.02 * exact

    def test_mean_signal_exact_from_aggregate_entries(self):
        slo = SLO("x.mean", "level", Signal("mean", "x.level"), 100.0,
                  window_s=300.0)
        ev = SLOEvaluator(self.sim, self.monitor, [slo])
        total, count = 0.0, 0
        for tick in range(4):
            for i in range(50):
                v = float(tick * 50 + i)
                total, count = total + v, count + 1
                self.monitor.series("x.level").record(self.sim.now, v)
            self.advance(10.0)
            ev.tick()
        assert ev.status["x.mean"].value == pytest.approx(total / count)
