"""Satellite: disabled tracing (and disabled profiling) must be free.

Claims, all load-bearing for leaving the instrumentation wired into
every subsystem by default:

* the disabled record path retains **zero allocations** -- recording into
  a no-op tracer leaves the process's allocated-block count unchanged;
* the disabled instrumentation adds **< 5% wall-clock** to an E3-style
  response-time run, bounded by (record sites exercised) x (cost of one
  no-op record call), both measured here rather than assumed;
* the same two proofs for the profiler: the dispatch loop with
  ``sim.profiler`` left at ``None`` (or disabled) retains nothing, and
  an *enabled* profiler's per-dispatch cost stays under 5% of an
  E3-style run.
"""

import gc
import sys
import time

import pytest

from repro.core.runtime import PervasiveGridRuntime
from repro.observability.profiling import NOOP_FRAME, NOOP_PROFILER, HookProfiler
from repro.observability.tracer import NOOP_SPAN, NOOP_TRACER, Tracer
from repro.queries.models import GridOffloadModel
from repro.simkernel import Simulator

E3_QUERIES = (
    "SELECT temperature FROM sensors WHERE temperature > 0",
    "SELECT AVG(temperature) FROM sensors",
    "SELECT DISTRIBUTION(temperature) FROM sensors",
)


def record_path(tracer, n: int) -> None:
    """The disabled record path exactly as instrumentation sites write it:
    guarded attribute-rich calls, unguarded bare begin/end."""
    for _ in range(n):
        span = tracer.span("net.send")
        if tracer.enabled:
            span.set(src=0, dst=1)
            tracer.event("net.hop", relay=2)
        with tracer.use(span):
            child = tracer.span("grid.uplink")
            child.end_at(1.0)
        span.end()


class TestZeroAllocation:
    def test_disabled_record_path_retains_nothing(self):
        tracer = Tracer(Simulator(), enabled=False)
        record_path(tracer, 1000)  # warm up caches, bytecode specialization
        gc.collect()
        record_path(tracer, 1000)  # repopulate freelists the collect drained
        deltas = []
        for _ in range(5):
            before = sys.getallocatedblocks()
            record_path(tracer, 1000)
            deltas.append(sys.getallocatedblocks() - before)
        # steady state: recording into the disabled tracer retains nothing
        assert deltas[-3:] == [0, 0, 0], deltas
        assert len(tracer) == 0

    def test_noop_singletons_are_shared(self):
        assert NOOP_TRACER.span("a.b") is NOOP_SPAN
        assert Tracer(None, enabled=False).span("a.b") is NOOP_SPAN

    def test_disabled_runtime_records_no_trace(self):
        rt = PervasiveGridRuntime(n_sensors=9, area_m=20.0, seed=5)
        rt.query("SELECT AVG(temperature) FROM sensors")
        assert rt.tracer is NOOP_TRACER
        assert len(rt.tracer) == 0
        with pytest.raises(RuntimeError):
            rt.export_trace("/dev/null")


def frame_path(profiler, n: int) -> None:
    """The disabled frame path exactly as instrumentation sites write it."""
    for _ in range(n):
        prof = profiler or NOOP_PROFILER
        with prof.frame("net.route", "network"):
            pass


def dispatch_cycle(sim, n: int) -> None:
    """Schedule-and-run n events through the (possibly hooked) loop."""
    for i in range(n):
        sim.schedule(float(i), noop_callback, label="tick:1")
    sim.run()


def noop_callback() -> None:
    pass


class TestProfilerZeroCost:
    def retained(self, fn) -> list:
        fn()  # warm up caches, bytecode specialization
        gc.collect()
        fn()  # repopulate freelists the collect drained
        deltas = []
        for _ in range(5):
            before = sys.getallocatedblocks()
            fn()
            deltas.append(sys.getallocatedblocks() - before)
        return deltas[-3:]

    def test_disabled_frame_path_retains_nothing(self):
        assert self.retained(lambda: frame_path(None, 1000)) == [0, 0, 0]
        disabled = HookProfiler(enabled=False)
        assert self.retained(lambda: frame_path(disabled, 1000)) == [0, 0, 0]
        assert len(disabled) == 0

    def test_unhooked_dispatch_loop_retains_nothing(self):
        sim = Simulator()
        assert sim.profiler is None
        assert self.retained(lambda: dispatch_cycle(sim, 500)) == [0, 0, 0]

    def test_disabled_profiler_on_the_loop_retains_nothing(self):
        sim = Simulator()
        sim.profiler = HookProfiler(enabled=False)
        assert self.retained(lambda: dispatch_cycle(sim, 500)) == [0, 0, 0]
        assert sim.profiler.events == 0

    def test_noop_frame_is_shared(self):
        assert NOOP_PROFILER.frame("a.b") is NOOP_FRAME


class TestWallClockOverhead:
    def test_disabled_instrumentation_under_five_percent_of_e3(self):
        def run_e3(trace: bool):
            rt = PervasiveGridRuntime(n_sensors=25, area_m=40.0, seed=3,
                                      trace=trace,
                                      models=[GridOffloadModel()])
            start = time.perf_counter()
            for text in E3_QUERIES:
                rt.query(text)
            return time.perf_counter() - start, rt

        # how many record calls an E3-style run actually makes: count the
        # records a *traced* twin produces, padded 5x for guard checks
        # that record nothing (feasibility branches, disabled events)
        _, traced = run_e3(trace=True)
        n_sites = 5 * max(len(traced.tracer), 1)

        # per-call cost of the disabled record path, amortized
        reps = 20_000
        tracer = Tracer(Simulator(), enabled=False)
        record_path(tracer, 200)  # warm-up
        t0 = time.perf_counter()
        record_path(tracer, reps)
        per_call = (time.perf_counter() - t0) / reps

        # the run itself, with tracing off (median of 3 to steady timing)
        baseline = sorted(run_e3(trace=False)[0] for _ in range(3))[1]

        overhead = n_sites * per_call
        assert overhead < 0.05 * baseline, (
            f"disabled tracing would cost {overhead * 1e3:.3f} ms on a "
            f"{baseline * 1e3:.1f} ms E3 run "
            f"({n_sites} sites x {per_call * 1e9:.0f} ns)")

    def test_profiling_overhead_under_five_percent_of_e3(self):
        """Analytic bound for the *enabled* profiler: the run's dispatch
        count times the measured per-dispatch hook cost stays under 5%."""
        def run_e3(profile: bool):
            rt = PervasiveGridRuntime(n_sensors=25, area_m=40.0, seed=3,
                                      profile=profile,
                                      models=[GridOffloadModel()])
            start = time.perf_counter()
            for text in E3_QUERIES:
                rt.query(text)
            return time.perf_counter() - start, rt

        _, profiled = run_e3(profile=True)
        n_events = profiled.profiler.events
        assert n_events > 0

        # amortized cost of one begin/end dispatch hook on a live profiler
        class Evt:
            label = "tick:1"

        profiler, evt, reps = HookProfiler(), Evt(), 20_000
        for _ in range(200):  # warm the memo caches
            profiler._begin_event(evt, run_e3)
            profiler._end_event()
        t0 = time.perf_counter()
        for _ in range(reps):
            profiler._begin_event(evt, run_e3)
            profiler._end_event()
        per_event = (time.perf_counter() - t0) / reps

        baseline = sorted(run_e3(profile=False)[0] for _ in range(3))[1]
        overhead = n_events * per_event
        assert overhead < 0.05 * baseline, (
            f"enabled profiling would cost {overhead * 1e3:.3f} ms on a "
            f"{baseline * 1e3:.1f} ms E3 run "
            f"({n_events} dispatches x {per_event * 1e9:.0f} ns)")

    def test_tracing_does_not_change_simulation_results(self):
        """Determinism guard: the traced run computes the same answers in
        the same virtual time as the untraced run."""
        def answers(trace: bool):
            rt = PervasiveGridRuntime(n_sensors=25, area_m=40.0, seed=3,
                                      trace=trace,
                                      models=[GridOffloadModel()])
            out = [(o.success, o.model, o.time_s, repr(o.value))
                   for text in E3_QUERIES for o in rt.query(text)]
            return out, rt.sim.now

        plain, traced = answers(False), answers(True)
        assert plain == traced
