"""Acceptance: traces actually connect across the live subsystems.

Two scenarios from the issue:

* a Fig-1 session whose one query's spans form a connected parent/child
  tree spanning >= 4 subsystems, with the critical-path extractor
  attributing 100% of the end-to-end simulated latency;
* an E13-style faulted run whose trace contains every injected fault and
  every resilience decision (retry, breaker transition, hedge fire) as
  attributed events.
"""

import numpy as np
import pytest

from repro.agents import AgentPlatform
from repro.composition import (
    Binder,
    CompositionManager,
    HTNPlanner,
    ReactiveComposer,
    ServiceProviderAgent,
    build_pervasive_domain,
)
from repro.core.runtime import PervasiveGridRuntime
from repro.discovery import (
    BrokerAgent,
    SemanticMatcher,
    ServiceDescription,
    ServiceRegistry,
    build_service_ontology,
)
from repro.faults import FaultDomain, FaultInjector, RegionBlackout
from repro.network import Topology
from repro.observability.analysis import Trace, critical_path, subsystem_rollup
from repro.observability.tracer import Tracer
from repro.queries.models import GridOffloadModel
from repro.resilience import BreakerBoard, Hedge, HedgedCall, RetryPolicy
from repro.simkernel import Monitor, RandomStreams, Simulator


def add_stream_mining_providers(platform, registry, sim, host_of=None):
    """The analyze-stream provider set (as in the composition testbed)."""
    providers = {}
    spec = [("dt1", "DecisionTreeService"), ("dt2", "DecisionTreeService"),
            ("fft1", "FourierSpectrumService"), ("fft2", "FourierSpectrumService"),
            ("comb", "EnsembleCombinerService")]
    for i, (name, category) in enumerate(spec):
        host = host_of(i) if host_of is not None else None
        desc = ServiceDescription(name=f"svc-{name}", category=category,
                                  ops=1e6, **({"host_node": host} if host is not None else {}))
        agent = ServiceProviderAgent(name, desc, sim)
        platform.register(agent)
        registry.advertise(desc)
        providers[name] = (desc, agent)
    return providers


class TestFig1SessionTrace:
    """One session span over the Fig-1 runtime: a grid-offloaded complex
    query plus a service composition, all in one connected trace."""

    @pytest.fixture(scope="class")
    def session_run(self):
        rt = PervasiveGridRuntime(n_sensors=25, area_m=40.0, seed=3,
                                  trace=True, models=[GridOffloadModel()])
        manager = CompositionManager("mgr", rt.sim, Binder(rt.registry),
                                     mode="centralized", timeout_s=10.0,
                                     max_retries=2, monitor=rt.monitor,
                                     tracer=rt.tracer)
        rt.platform.register(manager)
        composer = ReactiveComposer("composer", HTNPlanner(build_pervasive_domain()),
                                    manager, "broker", discovery_timeout_s=10.0)
        rt.platform.register(composer)
        add_stream_mining_providers(rt.platform, rt.registry, rt.sim)

        tracer = rt.tracer
        session = tracer.span("session.fig1")
        with tracer.use(session):
            outcomes = rt.query("SELECT DISTRIBUTION(temperature) FROM sensors")
            results = []
            composer.compose("analyze-stream", results.append, {"n_partitions": 2})
            while not results and rt.sim.step():
                pass
        session.end()
        return rt, session.record, outcomes, results

    def test_scenario_succeeded(self, session_run):
        _, _, outcomes, results = session_run
        assert outcomes[0].success and outcomes[0].model == "grid"
        assert results and results[0].success

    def test_trace_is_one_connected_tree(self, session_run):
        rt, root, _, _ = session_run
        trace = Trace(rt.tracer)
        assert trace.is_connected(root)
        # every span of the run belongs to the session's trace
        assert {s.trace_id for s in trace.spans} == {root.trace_id}

    def test_spans_cover_at_least_four_subsystems(self, session_run):
        rt, root, _, _ = session_run
        subsystems = Trace(rt.tracer).subsystems(root)
        assert {"query", "net", "grid", "composition"} <= subsystems

    def test_query_journey_is_under_the_query_span(self, session_run):
        rt, _, _, _ = session_run
        trace = Trace(rt.tracer)
        (query_run,) = trace.find("query.run")
        names = {s.name for s in trace.subtree(query_run)}
        assert {"query.run", "query.execute", "net.collect",
                "grid.offload", "grid.uplink", "grid.job"} <= names
        event_names = {e.name for e in trace.events_under(query_run)}
        assert {"sensors.sample", "query.decision", "grid.dispatch"} <= event_names

    def test_critical_path_attributes_all_latency(self, session_run):
        rt, root, _, _ = session_run
        trace = Trace(rt.tracer)
        segments = critical_path(trace, root)
        attributed = sum(seg.duration_s for seg in segments)
        total = root.end_s - root.start_s
        assert attributed == pytest.approx(total, rel=0, abs=1e-12)
        assert sum(r["share"] for r in subsystem_rollup(trace, root)) == pytest.approx(1.0)

    def test_export_round_trip_preserves_the_tree(self, session_run, tmp_path):
        rt, root, _, _ = session_run
        path = tmp_path / "fig1.jsonl"
        count = rt.export_trace(path)
        assert count == len(rt.tracer.records)
        from repro.observability.export import read_jsonl

        reloaded = Trace(read_jsonl(path))
        reroot = next(s for s in reloaded.roots() if s.name == "session.fig1")
        assert reloaded.is_connected(reroot)
        assert {"query", "net", "grid", "composition"} <= reloaded.subsystems(reroot)


class E13World:
    """The E13 fault-tolerance world (full resilience level) with tracing."""

    N_COMPOSITIONS = 10
    GAP_S = 40.0
    PROVIDER_SPEC = [
        ("DecisionTreeService", 3, (0.0, 0.0)),
        ("FourierSpectrumService", 3, (100.0, 0.0)),
        ("EnsembleCombinerService", 2, (200.0, 0.0)),
    ]

    def __init__(self, seed: int = 11):
        self.sim = Simulator()
        self.tracer = Tracer(self.sim)
        self.sim.tracer = self.tracer
        self.streams = RandomStreams(seed)
        self.platform = AgentPlatform(self.sim)
        self.registry = ServiceRegistry(SemanticMatcher(build_service_ontology()))
        self.monitor = Monitor()
        self.breakers = BreakerBoard(self.sim, self.monitor, tracer=self.tracer,
                                     failure_threshold=1, recovery_timeout_s=90.0)
        self.manager = CompositionManager(
            "mgr", self.sim, Binder(self.registry), mode="centralized",
            timeout_s=8.0, max_retries=3, breakers=self.breakers,
            monitor=self.monitor, tracer=self.tracer,
        )
        self.platform.register(self.manager)
        self.broker = BrokerAgent("broker", self.registry)
        self.platform.register(self.broker)
        self.composer = ReactiveComposer(
            "composer", HTNPlanner(build_pervasive_domain()), self.manager,
            "broker", discovery_timeout_s=10.0,
            retry=RetryPolicy(max_attempts=5, base_delay_s=5.0, max_delay_s=30.0),
            hedge=Hedge(delay_s=5.0, max_hedges=1),
            rng=self.streams.get("discovery-retry"),
        )
        self.platform.register(self.composer)

        self.providers = []
        positions = []
        jitter = self.streams.get("placement")
        host = 0
        for category, count, center in self.PROVIDER_SPEC:
            for i in range(count):
                name = f"{category.lower()}-{i}"
                desc = ServiceDescription(name=f"svc-{name}", category=category,
                                          provider=name, host_node=host, ops=5e8)
                agent = ServiceProviderAgent(name, desc, self.sim)
                self.platform.register(agent)
                self.registry.advertise(desc)
                self.providers.append((name, desc, agent))
                positions.append(np.asarray(center) + jitter.uniform(-5.0, 5.0, 2))
                host += 1
        self.topology = Topology(np.stack(positions), range_m=1.0)
        domain = FaultDomain(sim=self.sim, monitor=self.monitor,
                             topology=self.topology,
                             on_node_change=self._on_node_change)
        self.injector = FaultInjector(domain, tracer=self.tracer)
        horizon = self.N_COMPOSITIONS * self.GAP_S
        centers = [center for _, _, center in self.PROVIDER_SPEC]
        self.injector.schedule_all([
            RegionBlackout(center=centers[i % len(centers)], radius_m=20.0,
                           at_s=t, duration_s=45.0)
            for i, t in enumerate(np.arange(20.0, horizon, 110.0))
        ])

    def _on_node_change(self, node: int, up: bool) -> None:
        name, desc, agent = self.providers[node]
        if up:
            if not self.platform.is_registered(name):
                self.platform.register(agent)
            self.registry.advertise(desc)
        else:
            if self.platform.is_registered(name):
                self.platform.unregister(name)
            self.registry.withdraw_host(node)

    def run(self):
        results = []
        for i in range(self.N_COMPOSITIONS):
            if i == 4:
                # a broker outage overlapping this composition's discovery:
                # queries go unanswered, so the hedge duplicates them and
                # the discovery timeout forces a retry (broker is back by
                # the time the retry lands)
                self.platform.unregister("broker")
                self.sim.schedule(12.0, lambda: self.platform.register(self.broker))
            got = []
            self.composer.compose("analyze-stream", got.append, {"n_partitions": 2})
            while not got:
                if not self.sim.step():
                    break
            results.extend(got)
            self.sim.run(until=(i + 1) * self.GAP_S)
        return results


class TestE13Trace:
    @pytest.fixture(scope="class")
    def world(self):
        world = E13World()
        world.run()
        return world

    def test_every_injected_fault_is_a_traced_event(self, world):
        injects = [e for e in world.tracer.events() if e.name == "faults.inject"]
        recovers = [e for e in world.tracer.events() if e.name == "faults.recover"]
        timeline = world.injector.timeline
        assert len(injects) == sum(1 for f in timeline if f.phase == "inject")
        assert len(recovers) == sum(1 for f in timeline if f.phase == "recover")
        assert len(injects) > 0
        assert len(injects) == world.monitor.counter("faults.injected").value
        # the events carry the fault identity, matched 1:1 to the timeline
        assert ([(e.attrs["kind"], e.attrs["detail"]) for e in injects]
                == [(f.kind, f.detail) for f in timeline if f.phase == "inject"])

    def test_every_retry_decision_is_traced(self, world):
        retries = [e for e in world.tracer.events() if e.name == "resilience.retry"]
        assert len(retries) == world.monitor.counter("resilience.retries").increments
        assert len(retries) == world.composer.discovery_retries
        assert len(retries) > 0
        for event in retries:
            assert event.attrs["kind"] == "discovery"
            assert event.attrs["attempt"] >= 2

    def test_every_breaker_transition_is_traced(self, world):
        transitions = [e for e in world.tracer.events()
                       if e.name == "resilience.breaker_transition"]
        opens = [e for e in transitions if e.attrs["to_state"] == "open"]
        assert len(opens) == world.monitor.counter("resilience.breaker.trips").value
        assert len(opens) > 0
        total_trips = sum(b.trips for b in world.breakers._breakers.values())
        assert len(opens) == total_trips

    def test_every_hedge_fire_is_traced(self, world):
        hedges = [e for e in world.tracer.events()
                  if e.name == "resilience.hedge"]
        counter = world.monitor.counter("resilience.hedges")
        assert len(hedges) == counter.increments
        assert sum(e.attrs["duplicated"] for e in hedges) == counter.value
        assert sum(e.attrs["duplicated"] for e in hedges) == world.composer.hedged_queries

    def test_every_timeout_is_traced(self, world):
        timeouts = [e for e in world.tracer.events()
                    if e.name == "composition.timeout"]
        assert len(timeouts) == world.monitor.counter("composition.timeouts").increments

    def test_retry_decisions_attach_to_their_composition(self, world):
        """Resilience events are attributed -- parented inside the
        discovery/execution span they belong to, not free-floating."""
        trace = Trace(world.tracer)
        for event in trace.events:
            if event.name in ("resilience.retry", "resilience.hedge"):
                assert event.parent_id is not None
                parent = trace.span_by_id(event.parent_id)
                assert parent is not None
                assert parent.subsystem == "composition"


class TestHedgedCallTrace:
    def test_hedge_wave_emits_attributed_event(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.tracer = tracer
        calls = []

        def launch(wave, done):
            calls.append(wave)
            if wave == 1:  # only the backup ever answers
                sim.schedule(1.0, lambda: done("backup"))

        got = []
        span = tracer.span("composition.execute")

        def finish(result):
            got.append(result)
            span.end()

        call = HedgedCall(sim, Hedge(delay_s=2.0, max_hedges=1), launch,
                          finish, tracer=tracer)
        with tracer.use(span):
            call.start()
        sim.run()
        assert got == ["backup"] and call.won_by == 1
        (event,) = [e for e in tracer.events() if e.name == "resilience.hedge"]
        assert event.attrs == {"kind": "call", "wave": 1}
        assert event.time_s == 2.0
        # attributed under the span that launched the call
        assert event.trace_id == span.trace_id

    def test_primary_win_fires_no_hedge_event(self):
        sim = Simulator()
        tracer = Tracer(sim)
        sim.tracer = tracer
        got = []
        call = HedgedCall(sim, Hedge(delay_s=5.0, max_hedges=2),
                          lambda wave, done: sim.schedule(1.0, lambda: done(wave)),
                          got.append, tracer=tracer)
        call.start()
        sim.run()
        assert got == [0]
        assert [e for e in tracer.events() if e.name == "resilience.hedge"] == []


class TestBreakerTrace:
    def test_full_transition_cycle_is_traced(self):
        sim = Simulator()
        tracer = Tracer(sim)
        monitor = Monitor()
        board = BreakerBoard(sim, monitor, tracer=tracer,
                             failure_threshold=2, recovery_timeout_s=10.0)
        board.record_failure("svc")
        board.record_failure("svc")      # trips: closed -> open
        sim.schedule(12.0, lambda: None)
        sim.run()
        assert board.get("svc").state == "half-open"  # lazy open -> half-open
        board.record_failure("svc")      # failed probe: half-open -> open
        sim.schedule(12.0, lambda: None)
        sim.run()
        assert board.get("svc").allow()
        board.record_success("svc")      # probe succeeded: half-open -> closed

        transitions = [(e.attrs["from_state"], e.attrs["to_state"])
                       for e in tracer.events()
                       if e.name == "resilience.breaker_transition"]
        assert transitions == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
        assert monitor.counter("resilience.breaker.trips").value == 2


class TestDiscoveryResilienceTrace:
    def test_broker_outage_produces_hedge_and_retry_events(self):
        """Deterministic discovery stress: the broker vanishes, the hedge
        duplicates the unanswered queries, the timeout triggers a retry,
        and the broker's return lets the retry succeed -- every decision
        lands in the trace."""
        sim = Simulator()
        tracer = Tracer(sim)
        sim.tracer = tracer
        monitor = Monitor()
        platform = AgentPlatform(sim)
        registry = ServiceRegistry(SemanticMatcher(build_service_ontology()))
        manager = CompositionManager("mgr", sim, Binder(registry),
                                     mode="centralized", timeout_s=10.0,
                                     monitor=monitor, tracer=tracer)
        platform.register(manager)
        broker = BrokerAgent("broker", registry)
        composer = ReactiveComposer(
            "composer", HTNPlanner(build_pervasive_domain()), manager, "broker",
            discovery_timeout_s=4.0,
            retry=RetryPolicy(max_attempts=3, base_delay_s=2.0, max_delay_s=8.0),
            hedge=Hedge(delay_s=1.5, max_hedges=1),
        )
        platform.register(composer)
        add_stream_mining_providers(platform, registry, sim)

        results = []
        composer.compose("analyze-stream", results.append, {"n_partitions": 2})
        # broker absent: queries drop, the hedge fires at 1.5 s, the
        # attempt times out at 4 s and schedules a retry
        sim.run(until=5.0)
        platform.register(broker)  # back online before the retry lands
        while not results and sim.step():
            pass

        assert results and results[0].success
        names = [e.name for e in tracer.events()]
        assert "resilience.hedge" in names
        assert "resilience.retry" in names
        assert monitor.counter("resilience.retries").increments == names.count("resilience.retry")
        assert monitor.counter("resilience.hedges").increments == names.count("resilience.hedge")
