"""Trace sampling: deterministic head decisions, tail-based retention,
seeded exemplars, bounded rings -- and the parallel determinism contract."""

import pytest

from repro.core.runtime import PervasiveGridRuntime
from repro.observability.sampling import SamplingConfig, TraceSampler
from repro.observability.sketch import TelemetryConfig
from repro.observability.tracer import (
    STATUS_ERROR,
    SpanRecord,
    TraceEvent,
    Tracer,
)
from repro.parallel import TrialResult, TrialRunner, seed_specs
from repro.simkernel import Monitor


class FakeSim:
    """Just a clock: the tracer only reads ``sim.now``."""

    def __init__(self) -> None:
        self.now = 0.0


def sampled_tracer(**config):
    sim = FakeSim()
    tracer = Tracer(sim, sampler=TraceSampler(SamplingConfig(**config)),
                    monitor=Monitor())
    return sim, tracer


def run_traces(tracer, sim, n, duration_s=0.1, status=None):
    """``n`` root spans named query.run with stable sampling keys."""
    for i in range(n):
        span = tracer.span_under(None, "query.run", sampling_key=f"query:{i}")
        sim.now += duration_s
        span.end(status or "ok")
        sim.now += 0.01


def retained_roots(tracer):
    return [r for r in tracer.records
            if isinstance(r, SpanRecord) and r.parent_id is None]


class TestHeadSampling:
    def test_same_keys_same_decisions_every_run(self):
        keep_sets = []
        for _ in range(2):
            sim, tracer = sampled_tracer(head_rate=0.3, exemplar_capacity=0)
            run_traces(tracer, sim, 50)
            keep_sets.append({r.attrs["sampling_key"] for r in retained_roots(tracer)
                              if r.attrs.get("sampled") == "head"})
        assert keep_sets[0] == keep_sets[1]
        assert 0 < len(keep_sets[0]) < 50  # rate 0.3 keeps some, not all

    def test_rate_one_keeps_everything(self):
        sim, tracer = sampled_tracer(head_rate=1.0)
        run_traces(tracer, sim, 10)
        tracer.finalize()
        assert len(retained_roots(tracer)) == 10
        assert tracer.sampler.stats["head_kept"] == 10

    def test_seed_changes_the_kept_set(self):
        kept = []
        for seed in (0, 1):
            sim, tracer = sampled_tracer(head_rate=0.3, seed=seed,
                                         exemplar_capacity=0)
            run_traces(tracer, sim, 50)
            kept.append({r.attrs["sampling_key"] for r in retained_roots(tracer)})
        assert kept[0] != kept[1]


class TestTailRetention:
    def test_error_traces_always_kept(self):
        sim, tracer = sampled_tracer(head_rate=0.0, exemplar_capacity=0)
        run_traces(tracer, sim, 5)
        span = tracer.span_under(None, "query.run", sampling_key="query:err")
        sim.now += 0.1
        span.end(STATUS_ERROR)
        roots = retained_roots(tracer)
        assert [r.attrs["sampling_key"] for r in roots] == ["query:err"]
        assert roots[0].attrs["sampled"] == "tail:error"

    def test_error_anywhere_in_the_tree_keeps_the_trace(self):
        sim, tracer = sampled_tracer(head_rate=0.0, exemplar_capacity=0)
        root = tracer.span_under(None, "query.run", sampling_key="query:0")
        child = tracer.span_under(root, "query.execute")
        child.end(STATUS_ERROR)
        sim.now += 0.1
        root.end("ok")  # root itself is fine
        kept = retained_roots(tracer)
        assert len(kept) == 1 and kept[0].attrs["sampled"] == "tail:error"
        # the whole buffered subtree flushed, not just the root
        assert any(isinstance(r, SpanRecord) and r.name == "query.execute"
                   for r in tracer.records)

    def test_slow_outliers_kept_by_explicit_threshold(self):
        sim, tracer = sampled_tracer(head_rate=0.0, exemplar_capacity=0,
                                     slow_threshold_s=1.0)
        run_traces(tracer, sim, 5, duration_s=0.1)
        run_traces(tracer, sim, 1, duration_s=2.0)
        roots = retained_roots(tracer)
        assert len(roots) == 1
        assert roots[0].attrs["sampled"] == "tail:slow"

    def test_adaptive_slow_threshold_activates_after_min_samples(self):
        sim, tracer = sampled_tracer(head_rate=0.0, exemplar_capacity=0,
                                     slow_quantile=0.9)
        run_traces(tracer, sim, 30, duration_s=0.1)
        run_traces(tracer, sim, 1, duration_s=5.0)
        assert any(r.attrs.get("sampled") == "tail:slow"
                   for r in retained_roots(tracer))

    def test_traces_overlapping_an_alert_kept(self):
        sim, tracer = sampled_tracer(head_rate=0.0, exemplar_capacity=0,
                                     alert_window_s=10.0)
        run_traces(tracer, sim, 3)
        tracer.sampler.note_alert(sim.now)
        run_traces(tracer, sim, 1)
        roots = retained_roots(tracer)
        assert len(roots) == 1
        assert roots[0].attrs["sampled"] == "tail:alert"

    def test_still_open_traces_flush_at_finalize(self):
        sim, tracer = sampled_tracer(head_rate=0.0, exemplar_capacity=0)
        tracer.span_under(None, "query.run", sampling_key="query:0")  # never ends
        tracer.finalize()
        roots = retained_roots(tracer)
        assert len(roots) == 1
        assert roots[0].attrs["sampled"] == "tail:open"


class TestExemplars:
    def test_reservoir_keeps_a_bounded_deterministic_sample(self):
        kept = []
        for _ in range(2):
            sim, tracer = sampled_tracer(head_rate=0.0, exemplar_capacity=3,
                                         seed=42)
            run_traces(tracer, sim, 40)
            tracer.finalize()
            roots = retained_roots(tracer)
            assert len(roots) == 3
            assert all(r.attrs["sampled"] == "exemplar" for r in roots)
            kept.append([r.attrs["sampling_key"] for r in roots])
        assert kept[0] == kept[1]

    def test_capacity_zero_disables_exemplars(self):
        sim, tracer = sampled_tracer(head_rate=0.0, exemplar_capacity=0)
        run_traces(tracer, sim, 10)
        tracer.finalize()
        assert retained_roots(tracer) == []


class TestBudgetAndEvents:
    def test_span_budget_defers_head_keeps_not_tail_keeps(self):
        sim, tracer = sampled_tracer(head_rate=1.0, span_budget=1,
                                     exemplar_capacity=0)
        run_traces(tracer, sim, 3)  # only the first fits the budget as head
        span = tracer.span_under(None, "query.run", sampling_key="query:err")
        span.end(STATUS_ERROR)  # tail rules ignore the budget
        stats = tracer.sampler.stats
        assert stats["head_kept"] == 1
        # the two later happy roots AND the error root were all deferred
        assert stats["budget_deferred"] == 3
        assert stats["tail_kept"] == 1

    def test_free_floating_events_always_retained(self):
        sim, tracer = sampled_tracer(head_rate=0.0, exemplar_capacity=0)
        tracer.event("slo.fire", slo="latency")  # no current span: own trace id
        assert [r.name for r in tracer.records] == ["slo.fire"]

    def test_counters_are_consistent(self):
        sim, tracer = sampled_tracer(head_rate=0.3, exemplar_capacity=2)
        run_traces(tracer, sim, 30)
        tracer.finalize()
        stats = tracer.sampler.stats
        assert stats["traces_emitted"] == 30
        assert (stats["traces_retained"] + stats["traces_dropped"]
                == stats["traces_emitted"])
        assert (stats["spans_retained"] + stats["spans_dropped"]
                == stats["spans_emitted"])
        # mirrored onto the monitor under obs.sampling.*
        counters = tracer.monitor.counters()
        assert counters["obs.sampling.traces_emitted"] == 30

    def test_finalize_appends_one_summary_event_idempotently(self):
        sim, tracer = sampled_tracer(head_rate=1.0)
        run_traces(tracer, sim, 2)
        tracer.finalize()
        tracer.finalize()
        summaries = [r for r in tracer.records if isinstance(r, TraceEvent)
                     and r.name == "obs.sampling.summary"]
        assert len(summaries) == 1
        assert summaries[0].attrs["traces_emitted"] == 2


class TestBoundedRecords:
    def test_ring_evicts_oldest_and_counts_drops(self):
        sim = FakeSim()
        monitor = Monitor()
        tracer = Tracer(sim, max_records=3, monitor=monitor)
        for i in range(5):
            tracer.event("tick", i=i)
        assert len(tracer.records) == 3
        assert [r.attrs["i"] for r in tracer.records] == [2, 3, 4]
        assert tracer.dropped == 2
        assert monitor.counters()["obs.trace.dropped"] == 2

    def test_unbounded_default_is_a_plain_list(self):
        tracer = Tracer(FakeSim())
        assert isinstance(tracer.records, list)
        assert tracer.dropped == 0

    def test_clear_resets_ring_and_sampler(self):
        sim, tracer = sampled_tracer(head_rate=1.0)
        run_traces(tracer, sim, 2)
        tracer.finalize()
        tracer.clear()
        assert len(tracer.records) == 0
        assert tracer.sampler.stats["traces_emitted"] == 0
        run_traces(tracer, sim, 1)
        tracer.finalize()  # works again after clear
        assert tracer.sampler.stats["traces_emitted"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="max_records"):
            Tracer(FakeSim(), max_records=0)
        with pytest.raises(ValueError, match="enabled"):
            Tracer(None, enabled=False, sampler=TraceSampler())


class TestRuntimeWiring:
    def test_sampling_requires_trace(self):
        with pytest.raises(ValueError, match="requires trace=True"):
            PervasiveGridRuntime(n_sensors=9, area_m=20.0, seed=1,
                                 sampling=SamplingConfig())

    def test_sampled_run_emits_summary_and_counters(self):
        rt = PervasiveGridRuntime(n_sensors=9, area_m=20.0, seed=5, trace=True,
                                  sampling=SamplingConfig(head_rate=1.0))
        rt.query("SELECT AVG(temperature) FROM sensors")
        rt.tracer.finalize()
        assert any(isinstance(r, TraceEvent) and r.name == "obs.sampling.summary"
                   for r in rt.tracer.records)
        counters = rt.deployment.monitor.counters()
        assert counters["obs.sampling.traces_emitted"] >= 1
        roots = retained_roots(rt.tracer)
        assert any(r.name == "query.run" and "sampled" in r.attrs for r in roots)

    def test_telemetry_config_caps_monitor_and_trace(self):
        rt = PervasiveGridRuntime(
            n_sensors=9, area_m=20.0, seed=5, trace=True,
            telemetry=TelemetryConfig(histogram_max_raw=4, series_max_raw=4,
                                      max_trace_records=50))
        assert rt.tracer.max_records == 50
        hist = rt.deployment.monitor.histogram("queries.latency")
        for v in range(10):
            hist.observe(float(v))
        assert hist.dropped > 0
        assert len(hist.values) == 4


# ----------------------------------------------------------------------
# satellite 4: serial vs parallel determinism with sampling + sketches on
# (module-level trial fn: it must pickle into worker processes)
# ----------------------------------------------------------------------

def sampled_trial(spec):
    rt = PervasiveGridRuntime(
        n_sensors=9, area_m=20.0, seed=spec.seed, trace=True,
        sampling=SamplingConfig(head_rate=0.5, exemplar_capacity=2, seed=0),
        telemetry=TelemetryConfig(histogram_max_raw=4, series_max_raw=4))
    for _ in range(3):
        rt.query("SELECT AVG(temperature) FROM sensors")
    rt.tracer.finalize()  # sampler flush happens worker-side
    return TrialResult(monitor=rt.deployment.monitor,
                       metrics={"seed": spec.seed},
                       trace=rt.tracer, sim_time_s=rt.sim.now)


class TestParallelDeterminism:
    def test_retained_traces_and_sketches_identical_across_worker_counts(self):
        specs = seed_specs([3, 1, 2], trace=True)
        serial = TrialRunner(sampled_trial, workers=1).run(specs)
        parallel = TrialRunner(sampled_trial, workers=4).run(specs)
        # byte-identical retained trace set (already dict-normalized)
        assert serial.trace == parallel.trace
        assert serial.monitor.summary() == parallel.monitor.summary()
        for sweep in (serial, parallel):
            sweep.monitor.histogram("queries.latency").ensure_sketch()
        assert (serial.monitor.histogram("queries.latency").sketch.state()
                == parallel.monitor.histogram("queries.latency").sketch.state())
