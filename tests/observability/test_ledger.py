"""QueryCostLedger: folding a trace into per-query cost records.

The fold is tested against a hand-built trace whose every number is
known, then against a real runtime so the executor's stamping and the
ledger's reading agree on attribute names.
"""

import json
import math

import pytest

from repro.core.runtime import PervasiveGridRuntime
from repro.observability.analysis import Trace
from repro.observability.ledger import QueryCost, QueryCostLedger, render_ledger
from repro.observability.tracer import Tracer


class FakeSim:
    """Just a settable virtual clock (all the Tracer needs here)."""

    def __init__(self) -> None:
        self.now = 0.0


def build_tracer():
    """Two queries with known costs.

    Query 1 (t=10..16, ok): two epochs -- epoch 1 runs the tree model
    in-network (1 send over 3 hops, a 48-message collection, 0.5 J /
    800 bits); epoch 2 switches to the grid (uplink of 4000 bits for
    1 s, one job busy for 2 s, 0.25 J / 200 bits).
    Query 2 (t=20..21, FAIL): no stamped actuals.
    """
    sim = FakeSim()
    tracer = Tracer(sim)

    sim.now = 10.0
    root = tracer.span("query.run", text="SELECT AVG(value) FROM sensors")
    with tracer.use(root):
        e1 = tracer.span("query.epoch")
        with tracer.use(e1):
            send = tracer.span("net.send", hops=3)
            sim.now = 11.0
            send.end()
            coll = tracer.span("net.collect", messages=48)
            sim.now = 12.0
            coll.end()
        e1.set(model="tree", energy_j=0.5, data_bits=800.0)
        e1.end()
        e2 = tracer.span("query.epoch")
        with tracer.use(e2):
            off = tracer.span("grid.offload")
            with tracer.use(off):
                up = tracer.span("grid.uplink", bits=4000.0)
                sim.now = 13.0
                up.end()
                job = tracer.span("grid.job")
                sim.now = 15.0
                job.end()
            off.end()
        e2.set(model="grid", energy_j=0.25, data_bits=200.0)
        e2.end()
    sim.now = 16.0
    root.end()

    sim.now = 20.0
    failed = tracer.span("query.run", text="SELECT BROKEN FROM sensors")
    sim.now = 21.0
    failed.end(status="error")
    return tracer


class TestFold:
    def ledger(self):
        return QueryCostLedger.from_trace(build_tracer())

    def test_every_axis_of_the_first_query(self):
        cost = self.ledger().records[0]
        assert isinstance(cost, QueryCost)
        assert cost.text == "SELECT AVG(value) FROM sensors"
        assert cost.success and cost.start_s == 10.0 and cost.latency_s == 6.0
        assert cost.epochs == 2
        # the adaptivity record: consecutive distinct models join with '+'
        assert cost.model == "tree+grid"
        assert cost.energy_j == pytest.approx(0.75)
        assert cost.data_bits == pytest.approx(1000.0)
        assert cost.bytes_on_air == pytest.approx(125.0)
        assert cost.messages == pytest.approx(49.0)  # 1 send + 48 collected
        assert cost.hops == pytest.approx(3.0)
        assert cost.uplink_transfers == 1
        assert cost.uplink_bits == pytest.approx(4000.0)
        assert cost.uplink_s == pytest.approx(1.0)
        assert cost.grid_offloads == 1 and cost.grid_jobs == 1
        assert cost.grid_busy_s == pytest.approx(2.0)

    def test_failed_query_is_ledgered_honestly(self):
        cost = self.ledger().records[1]
        assert not cost.success
        assert cost.latency_s == 1.0 and cost.epochs == 0
        assert cost.energy_j == 0.0 and cost.messages == 0.0

    def test_unclosed_and_prefix_named_roots_are_excluded(self):
        sim = FakeSim()
        tracer = Tracer(sim)
        tracer.span("query.run")            # never ended
        other = tracer.span("query.runway")  # startswith, not equal
        other.end()
        assert len(QueryCostLedger.from_trace(tracer)) == 0

    def test_from_trace_accepts_trace_and_tracer(self):
        tracer = build_tracer()
        via_tracer = QueryCostLedger.from_trace(tracer)
        via_trace = QueryCostLedger.from_trace(Trace(tracer.records))
        assert via_tracer.to_dicts() == via_trace.to_dicts()

    def test_composition_root_name(self):
        sim = FakeSim()
        tracer = Tracer(sim)
        comp = tracer.span("composition.execute", comp_id="c1")
        sim.now = 4.0
        comp.end()
        ledger = QueryCostLedger.from_trace(tracer,
                                            root_name="composition.execute")
        assert len(ledger) == 1
        assert ledger.records[0].latency_s == 4.0


class TestSummaryAndExport:
    def test_summary_totals_and_percentiles(self):
        s = QueryCostLedger.from_trace(build_tracer()).summary()
        assert s["queries"] == 2 and s["succeeded"] == 1
        assert s["success_rate"] == pytest.approx(0.5)
        # percentiles are over successes only
        assert s["latency_p50_s"] == s["latency_p95_s"] == pytest.approx(6.0)
        assert s["energy_total_j"] == pytest.approx(0.75)
        assert s["bytes_on_air_total"] == pytest.approx(125.0)
        assert s["hops_total"] == pytest.approx(3.0)
        assert s["uplink_bits_total"] == pytest.approx(4000.0)
        assert s["grid_jobs_total"] == 1
        assert s["epochs_total"] == 2

    def test_empty_ledger_summary_is_nan_not_crash(self):
        s = QueryCostLedger().summary()
        assert s["queries"] == 0
        assert math.isnan(s["success_rate"]) and math.isnan(s["latency_p95_s"])
        assert s["energy_total_j"] == 0.0

    def test_export_jsonl_round_trip(self, tmp_path):
        ledger = QueryCostLedger.from_trace(build_tracer())
        path = tmp_path / "ledger.jsonl"
        assert ledger.export_jsonl(path) == 2
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == [json.loads(json.dumps(d, sort_keys=True))
                        for d in ledger.to_dicts()]
        assert all(r["schema"] == 1 for r in rows)
        assert rows[0]["model"] == "tree+grid"


class TestRender:
    def test_render_shows_rows_and_totals(self):
        text = render_ledger(Trace(build_tracer().records))
        assert "query cost ledger (2 queries)" in text
        assert "tree+grid" in text and "FAIL" in text
        assert "totals: 1/2 ok" in text

    def test_render_empty_trace_is_graceful(self):
        text = render_ledger(Trace([]))
        assert "no closed 'query.run' spans" in text

    def test_render_caps_rows_and_reports_the_drop(self):
        sim = FakeSim()
        tracer = Tracer(sim)
        for i in range(5):
            sim.now = float(i)
            span = tracer.span("query.run", text=f"q{i}")
            sim.now = float(i) + 0.5
            span.end()
        text = render_ledger(Trace(tracer.records), max_rows=3)
        assert "... 2 more queries" in text


class TestRealRuntimeAgreement:
    def test_executor_stamps_what_the_ledger_reads(self):
        rt = PervasiveGridRuntime(n_sensors=9, area_m=20.0, seed=5, trace=True)
        outcomes = rt.query("SELECT AVG(temperature) FROM sensors")
        ledger = QueryCostLedger.from_trace(rt.tracer)
        assert len(ledger) == 1
        cost = ledger.records[0]
        ok = [o for o in outcomes if o.success]
        assert cost.success == bool(ok)
        assert cost.energy_j == pytest.approx(sum(o.energy_j for o in ok))
        assert cost.model == "+".join(
            dict.fromkeys(o.model for o in ok))  # order-preserving
        assert cost.messages > 0

    def test_failed_continuous_query_books_as_failure(self):
        """A continuous query whose final epoch failed must not ledger as ok.

        Pre-fix, the continuous root span always ended with OK status
        (and recorded no failure count), so the QueryCostLedger booked a
        query whose every remaining epoch failed as a success.
        """

        class FailAfterFirst:
            """Delegates epoch 0, then finds no feasible model."""

            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def decide(self, query, ctx, targets):
                self.calls += 1
                return self.inner.decide(query, ctx, targets) if self.calls == 1 else None

            def feedback(self, *args):
                return self.inner.feedback(*args)

        rt = PervasiveGridRuntime(n_sensors=9, area_m=20.0, seed=5, trace=True)
        rt.executor.decision_maker = FailAfterFirst(rt.decision_maker)
        got = []
        rt.executor.submit("SELECT AVG(value) FROM sensors EPOCH DURATION 1 FOR 3",
                           got.append)
        rt.sim.run(until=60.0)
        (outcomes,) = got
        assert len(outcomes) == 3
        assert outcomes[0].success and not outcomes[-1].success

        ledger = QueryCostLedger.from_trace(rt.tracer)
        assert len(ledger) == 1
        assert not ledger.records[0].success

        root = next(r for r in rt.tracer.records if r.name == "query.run")
        assert root.attrs["failed_epochs"] == 2
        assert root.attrs["epochs"] == 3
