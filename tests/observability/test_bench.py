"""Bench trajectory: recorder, result files, the compare regression gate."""

import json
import math

import pytest

from repro.observability.bench import (
    BenchRecorder,
    BenchResult,
    compare,
    filter_results,
    load_results,
    main,
    params_hash,
    render_compare,
)


class TestRecorder:
    def test_record_and_save_roundtrip(self, tmp_path):
        recorder = BenchRecorder()
        recorder.record("E2", "tree_mj", 0.73, unit="mJ", direction="lower",
                        seed=11)
        recorder.record("E2", "tree_mj", 0.80, seed=12)  # different params: ok
        path = tmp_path / "results.json"
        assert recorder.save(path) == 2
        loaded = load_results(path)
        assert len(loaded) == 2
        key = ("E2", "tree_mj", params_hash({"seed": 11}))
        assert loaded[key].value == 0.73
        assert loaded[key].unit == "mJ"
        assert loaded[key].direction == "lower"

    def test_duplicate_key_rejected(self):
        recorder = BenchRecorder()
        recorder.record("E2", "tree_mj", 0.73, seed=11)
        with pytest.raises(ValueError, match="duplicate"):
            recorder.record("E2", "tree_mj", 0.74, seed=11)

    def test_nan_is_legal_infinity_is_not(self):
        recorder = BenchRecorder()
        recorder.record("E2", "p95", math.nan)
        with pytest.raises(ValueError, match="infinite"):
            recorder.record("E2", "p50", math.inf)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            BenchResult("", "m", 1.0)
        with pytest.raises(ValueError, match="direction"):
            BenchResult("E1", "m", 1.0, direction="sideways")

    def test_params_hash_is_order_insensitive(self):
        assert params_hash({"a": 1, "b": 2}) == params_hash({"b": 2, "a": 1})
        assert params_hash({"a": 1}) != params_hash({"a": 2})

    def test_save_is_sorted_and_stable(self, tmp_path):
        recorder = BenchRecorder()
        recorder.record("E9", "z", 1.0)
        recorder.record("E1", "a", 2.0)
        recorder.save(tmp_path / "a.json")
        payload = json.loads((tmp_path / "a.json").read_text())
        assert [r["experiment"] for r in payload["results"]] == ["E1", "E9"]
        assert payload["schema"] == 1


class TestLoadErrors:
    def test_not_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_results(path)

    def test_missing_results_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 1}')
        with pytest.raises(ValueError, match="results"):
            load_results(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99, "results": []}')
        with pytest.raises(ValueError, match="schema"):
            load_results(path)

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 1, "results": [{"metric": "m"}]}')
        with pytest.raises(ValueError, match="malformed"):
            load_results(path)


def result(value, direction="either", metric="m", experiment="E1"):
    return BenchResult(experiment, metric, value, direction=direction)


def as_map(*results):
    return {r.key: r for r in results}


class TestCompare:
    def test_identical_within_tolerance(self):
        old = as_map(result(1.0))
        report = compare(old, as_map(result(1.0)), tolerance=0.05)
        assert report.ok
        assert len(report.unchanged) == 1

    def test_direction_lower_regresses_upward(self):
        old = as_map(result(1.0, direction="lower"))
        worse = compare(old, as_map(result(1.2, direction="lower")), 0.05)
        assert not worse.ok
        better = compare(old, as_map(result(0.8, direction="lower")), 0.05)
        assert better.ok and len(better.improvements) == 1

    def test_direction_higher_regresses_downward(self):
        old = as_map(result(1.0, direction="higher"))
        assert not compare(old, as_map(result(0.8)), 0.05).ok
        assert compare(old, as_map(result(1.2)), 0.05).ok

    def test_direction_either_regresses_both_ways(self):
        old = as_map(result(1.0, direction="either"))
        assert not compare(old, as_map(result(1.2)), 0.05).ok
        assert not compare(old, as_map(result(0.8)), 0.05).ok

    def test_baseline_direction_is_the_contract(self):
        old = as_map(result(1.0, direction="lower"))
        new = as_map(result(0.8, direction="either"))
        assert compare(old, new, 0.05).ok  # old says lower-is-better

    def test_added_and_removed_never_fail_the_gate(self):
        old = as_map(result(1.0, metric="gone"))
        new = as_map(result(2.0, metric="new"))
        report = compare(old, new, 0.05)
        assert report.ok
        assert [r.metric for r in report.added] == ["new"]
        assert [r.metric for r in report.removed] == ["gone"]

    def test_nan_transitions_always_regress(self):
        old = as_map(result(1.0, direction="lower"))
        assert not compare(old, as_map(result(math.nan)), 0.05).ok
        old_nan = as_map(result(math.nan, direction="lower"))
        assert not compare(old_nan, as_map(result(0.5)), 0.05).ok
        # NaN on both sides is "unchanged"
        assert compare(old_nan, as_map(result(math.nan)), 0.05).ok

    def test_zero_baseline_does_not_divide_by_zero(self):
        old = as_map(result(0.0, direction="lower"))
        report = compare(old, as_map(result(0.0)), 0.05)
        assert report.ok

    def test_bad_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            compare({}, {}, tolerance=-0.1)

    def test_render_mentions_the_regression(self):
        old = as_map(result(1.0, direction="lower"))
        report = compare(old, as_map(result(2.0)), 0.05)
        text = render_compare(report)
        assert "REGRESSED" in text
        assert "1 regressed" in text


class TestCli:
    def save(self, tmp_path, name, rows):
        recorder = BenchRecorder()
        for experiment, metric, value, direction in rows:
            recorder.record(experiment, metric, value, direction=direction,
                            seed=11)
        path = tmp_path / name
        recorder.save(path)
        return str(path)

    ROWS = [("E13", "completion", 1.0, "higher"), ("E2", "tree_mj", 0.73, "lower")]

    def test_compare_identical_exits_zero(self, tmp_path, capsys):
        a = self.save(tmp_path, "a.json", self.ROWS)
        b = self.save(tmp_path, "b.json", self.ROWS)
        assert main(["compare", a, b]) == 0
        assert "0 regressed" in capsys.readouterr().out

    def test_compare_perturbed_exits_one(self, tmp_path, capsys):
        a = self.save(tmp_path, "a.json", self.ROWS)
        worse = [("E13", "completion", 0.5, "higher"),
                 ("E2", "tree_mj", 0.73, "lower")]
        b = self.save(tmp_path, "b.json", worse)
        assert main(["compare", a, b, "--tolerance", "0.05"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_tolerance_flag_loosens_the_gate(self, tmp_path):
        a = self.save(tmp_path, "a.json", self.ROWS)
        drift = [("E13", "completion", 0.97, "higher"),
                 ("E2", "tree_mj", 0.73, "lower")]
        b = self.save(tmp_path, "b.json", drift)
        assert main(["compare", a, b, "--tolerance", "0.01"]) == 1
        assert main(["compare", a, b, "--tolerance", "0.10"]) == 0

    def test_missing_file_exits_two(self, tmp_path, capsys):
        a = self.save(tmp_path, "a.json", self.ROWS)
        assert main(["compare", a, str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unreadable_file_exits_two(self, tmp_path, capsys):
        a = self.save(tmp_path, "a.json", self.ROWS)
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["compare", a, str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_show(self, tmp_path, capsys):
        a = self.save(tmp_path, "a.json", self.ROWS)
        assert main(["show", a]) == 0
        out = capsys.readouterr().out
        assert "E13" in out and "completion" in out

    def test_only_narrows_the_gate_to_matching_metrics(self, tmp_path, capsys):
        a = self.save(tmp_path, "a.json", self.ROWS)
        worse = [("E13", "completion", 0.5, "higher"),
                 ("E2", "tree_mj", 0.73, "lower")]
        b = self.save(tmp_path, "b.json", worse)
        # the E13 regression is invisible when the gate only watches E2
        assert main(["compare", a, b, "--only", "E2/tree_mj"]) == 0
        assert "E13" not in capsys.readouterr().out
        assert main(["compare", a, b, "--only", "E13/*"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_only_is_repeatable_and_zero_tolerance_composes(self, tmp_path):
        a = self.save(tmp_path, "a.json", self.ROWS)
        drift = [("E13", "completion", 1.0, "higher"),
                 ("E2", "tree_mj", 0.7301, "lower")]
        b = self.save(tmp_path, "b.json", drift)
        # tiny drift passes at the default tolerance, fails a pinned gate
        assert main(["compare", a, b]) == 0
        assert main(["compare", a, b, "--tolerance", "0",
                     "--only", "E2/tree_mj"]) == 1
        assert main(["compare", a, b, "--tolerance", "0",
                     "--only", "E13/completion", "--only", "E2/tree_mj"]) == 1

    def test_only_matching_nothing_is_an_error(self, tmp_path, capsys):
        a = self.save(tmp_path, "a.json", self.ROWS)
        b = self.save(tmp_path, "b.json", self.ROWS)
        assert main(["compare", a, b, "--only", "E99/nothing"]) == 2
        assert "matched no metric" in capsys.readouterr().err

    def test_each_only_pattern_must_match_and_is_named_when_it_does_not(
            self, tmp_path, capsys):
        """A fleet of --only patterns fails loudly naming the dead one,
        even when the other patterns match plenty."""
        a = self.save(tmp_path, "a.json", self.ROWS)
        b = self.save(tmp_path, "b.json", self.ROWS)
        assert main(["compare", a, b, "--only", "E2/*",
                     "--only", "E99/typo_metric"]) == 2
        err = capsys.readouterr().err
        assert "E99/typo_metric" in err and "matched no metric" in err

    def test_only_matching_one_side_only_is_an_error(self, tmp_path, capsys):
        """A pattern whose metrics exist on only one side gates nothing --
        that silence is exactly the failure mode the loud check exists for."""
        a = self.save(tmp_path, "a.json", self.ROWS)
        b = self.save(tmp_path, "b.json",
                      [("E7", "fresh_metric", 1.0, "higher")])
        assert main(["compare", a, b, "--only", "E7/fresh_metric"]) == 2
        assert "both files" in capsys.readouterr().err


class TestFilterResults:
    def make(self):
        recorder = BenchRecorder()
        recorder.record("E13-D", "lost_advertisements", 0.0, direction="lower")
        recorder.record("E13-D", "lookup_p99", 0.1, direction="lower")
        recorder.record("E2", "tree_mj", 0.73, direction="lower")
        return {r.key: r for r in recorder.results}

    def test_empty_patterns_keep_everything(self):
        results = self.make()
        assert filter_results(results, []) == results

    def test_exact_name_and_glob(self):
        results = self.make()
        exact = filter_results(results, ["E13-D/lost_advertisements"])
        assert [r.metric for r in exact.values()] == ["lost_advertisements"]
        globbed = filter_results(results, ["E13-D/*"])
        assert sorted(r.metric for r in globbed.values()) == [
            "lookup_p99", "lost_advertisements"]

    def test_no_substring_surprises(self):
        # an unanchored pattern must not match by substring
        assert filter_results(self.make(), ["lost"]) == {}
