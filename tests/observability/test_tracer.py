"""Tracer semantics: span trees, trace ids, context propagation."""

import pytest

from repro.observability.tracer import (
    NOOP_SPAN,
    NOOP_TRACER,
    STATUS_ERROR,
    STATUS_OK,
    Span,
    Tracer,
)
from repro.simkernel import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def tracer(sim):
    tracer = Tracer(sim)
    sim.tracer = tracer
    return tracer


class TestSpanTree:
    def test_nested_context_managers_form_parent_child(self, tracer):
        with tracer.span("query.run") as root:
            with tracer.span("net.send") as child:
                pass
        assert child.record.parent_id == root.span_id
        assert child.trace_id == root.trace_id
        assert root.record.parent_id is None

    def test_sibling_roots_get_distinct_trace_ids(self, tracer):
        with tracer.span("query.run") as a:
            pass
        with tracer.span("query.run") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_span_under_explicit_parent(self, tracer):
        root = tracer.span("query.run")
        child = tracer.span_under(root, "query.epoch", index=3)
        assert child.record.parent_id == root.span_id
        assert child.trace_id == root.trace_id
        assert child.record.attrs == {"index": 3}

    def test_span_under_none_starts_new_root(self, tracer):
        with tracer.span("query.run"):
            orphan = tracer.span_under(None, "session.side")
        assert orphan.record.parent_id is None

    def test_ended_parent_does_not_adopt(self, tracer):
        root = tracer.span("query.run")
        root.end()
        child = tracer.span_under(root, "net.send")
        assert child.record.parent_id is None
        assert child.trace_id != root.trace_id

    def test_exception_exit_marks_error(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("net.send") as span:
                raise RuntimeError("boom")
        assert span.record.status == STATUS_ERROR
        assert span.ended

    def test_subsystem_is_first_dotted_component(self, tracer):
        with tracer.span("grid.uplink") as span:
            pass
        assert span.record.subsystem == "grid"


class TestTiming:
    def test_span_brackets_virtual_time(self, sim, tracer):
        span = tracer.span("net.send")
        sim.schedule(2.5, span.end)
        sim.run(until=10.0)
        assert span.record.start_s == 0.0
        assert span.record.end_s == 2.5
        assert span.record.duration_s == 2.5

    def test_end_is_idempotent(self, sim, tracer):
        span = tracer.span("net.send")
        span.end()
        sim.schedule(1.0, lambda: span.end(STATUS_ERROR))
        sim.run(until=2.0)
        assert span.record.end_s == 0.0
        assert span.record.status == STATUS_OK

    def test_end_at_stamps_explicit_time(self, tracer):
        span = tracer.span("net.collect")
        span.end_at(7.25)
        assert span.record.end_s == 7.25
        span.end_at(99.0)  # idempotent
        assert span.record.end_s == 7.25

    def test_end_at_clamps_to_start(self, sim, tracer):
        sim.schedule(5.0, lambda: None)
        sim.run(until=6.0)
        span = tracer.span("net.collect")
        span.end_at(1.0)
        assert span.record.end_s == span.record.start_s == sim.now == 6.0


class TestContextPropagation:
    def test_scheduled_callback_inherits_span(self, sim, tracer):
        seen = []
        root = tracer.span("query.run")  # held open across the hop
        with tracer.use(root):
            sim.schedule(1.0, lambda: seen.append(tracer.current_span))
        sim.run(until=2.0)
        assert seen == [root]

    def test_child_opened_in_callback_parents_correctly(self, sim, tracer):
        kids = []
        root = tracer.span("query.run")
        with tracer.use(root):
            sim.schedule(1.0, lambda: kids.append(tracer.span("grid.job")))
        sim.run(until=2.0)
        assert kids[0].record.parent_id == root.span_id
        assert kids[0].trace_id == root.trace_id

    def test_no_ambient_leak_into_unrelated_callback(self, sim, tracer):
        """A callback scheduled outside any span must not inherit whatever
        span the driver loop holds while stepping the simulator."""
        seen = []
        session = tracer.span("session.root")
        sim.schedule(1.0, lambda: seen.append(tracer.current_span))
        with tracer.use(session):
            sim.run(until=2.0)  # driver holds the session span while stepping
        assert seen == [None]

    def test_capture_skips_ended_span(self, sim, tracer):
        seen = []
        span = tracer.span("query.run")
        with tracer.use(span):
            span.end()
            sim.schedule(1.0, lambda: seen.append(tracer.current_span))
        sim.run(until=2.0)
        assert seen == [None]

    def test_use_reenters_without_ending(self, tracer):
        span = tracer.span("query.run")
        with tracer.use(span):
            assert tracer.current_span is span
            with tracer.span("net.send") as child:
                pass
        assert tracer.current_span is None
        assert not span.ended
        assert child.record.parent_id == span.span_id

    def test_event_attaches_to_current_span(self, tracer):
        with tracer.span("query.run") as root:
            tracer.event("query.decision", model="grid")
        events = tracer.events()
        assert len(events) == 1
        assert events[0].parent_id == root.span_id
        assert events[0].trace_id == root.trace_id
        assert events[0].attrs == {"model": "grid"}

    def test_free_event_is_rootless(self, tracer):
        tracer.event("faults.inject", kind="crash")
        (event,) = tracer.events()
        assert event.parent_id is None

    def test_span_event_targets_that_span(self, tracer):
        root = tracer.span("query.run")
        with tracer.span("net.send"):
            root.event("composition.timeout", attempt=1)
        (event,) = tracer.events()
        assert event.parent_id == root.span_id


class TestDisabledTracer:
    def test_disabled_returns_shared_singletons(self, sim):
        tracer = Tracer(sim, enabled=False)
        assert tracer.span("net.send") is NOOP_SPAN
        assert tracer.span_under(None, "x.y") is NOOP_SPAN
        tracer.event("net.hop", relay=3)
        assert len(tracer) == 0

    def test_noop_span_full_api(self):
        span = NOOP_TRACER.span("net.send")
        assert span.set(a=1) is span
        span.event("x.y")
        span.end()
        span.end_at(5.0)
        with span as entered:
            assert entered is span
        with NOOP_TRACER.use(span):
            pass
        assert NOOP_TRACER.current_span is None
        assert len(NOOP_TRACER) == 0

    def test_enabled_tracer_requires_sim(self):
        with pytest.raises(ValueError):
            Tracer(sim=None)


class TestHousekeeping:
    def test_records_are_append_only_in_start_order(self, tracer):
        with tracer.span("a.one"):
            tracer.event("a.tick")
            with tracer.span("b.two"):
                pass
        names = [r.name for r in tracer.records]
        assert names == ["a.one", "a.tick", "b.two"]

    def test_spans_and_events_views(self, tracer):
        with tracer.span("a.one"):
            tracer.event("a.tick")
        assert [s.name for s in tracer.spans()] == ["a.one"]
        assert [e.name for e in tracer.events()] == ["a.tick"]

    def test_clear_resets_log_and_stack(self, tracer):
        span = tracer.span("a.one")
        with tracer.use(span):
            tracer.clear()
        assert len(tracer) == 0
        assert tracer.current_span is None

    def test_set_merges_attrs(self, tracer):
        span = tracer.span("a.one", x=1)
        span.set(y=2).set(x=3)
        assert span.record.attrs == {"x": 3, "y": 2}

    def test_isinstance_guard_in_use(self, tracer):
        # a noop span from another (disabled) tracer must not be pushed
        with tracer.use(NOOP_SPAN) as span:
            assert span is NOOP_SPAN
        assert tracer.current_span is None
