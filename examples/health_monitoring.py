#!/usr/bin/env python3
"""The health-monitoring scenario: toxin plume + composed stream mining.

Two halves of the paper in one example:

1. **Sensing** (§4): toxin sensors track a drifting plume; aggregate and
   complex queries watch it move.
2. **Composition** (§3): the analysis task -- "generating decision trees,
   computing their Fourier spectra, choosing the dominant components, and
   combining them to create a single tree" -- is HTN-planned, its steps
   discovered through the broker, and executed by distributed service
   providers with *real* data-mining computations behind each service.

Run:  python examples/health_monitoring.py
"""

import numpy as np

from repro.composition import (
    Binder,
    CompositionManager,
    HTNPlanner,
    ReactiveComposer,
    build_pervasive_domain,
    build_stream_mining_providers,
)
from repro.datamining import DecisionTree, LabeledStream, accuracy
from repro.workloads import health_scenario

D_FEATURES = 8  # symptom-vector width for the outbreak classifier


def main() -> None:
    runtime = health_scenario(n_sensors=36, seed=5, grid_resolution=20)

    print("=== plume tracking (sensor queries) ===")
    for t in (0, 60, 120):
        runtime.sim.run(until=float(t))
        out = runtime.query("SELECT {MAX(value), AVG(value)} FROM sensors")
        vals = out[0].value
        print(f"t={t:>4.0f}s  max={vals['MAX(value)']:.3f}  avg={vals['AVG(value)']:.3f}  "
              f"(model {out[0].model})")

    print("\n=== composed analysis: ensemble mining over hospital streams ===")
    build_stream_mining_providers(runtime.platform, runtime.registry, runtime.sim,
                                  d=D_FEATURES)

    manager = CompositionManager("manager", runtime.sim, Binder(runtime.registry),
                                 mode="distributed", timeout_s=60.0)
    runtime.platform.register(manager)
    planner = HTNPlanner(build_pervasive_domain())
    composer = ReactiveComposer("composer", planner, manager, "broker")
    runtime.platform.register(composer)

    # synthetic "hospital admission" streams: symptom vectors -> outbreak flag
    stream = LabeledStream(D_FEATURES, np.random.default_rng(3), noise=0.05)
    train_parts = [stream.batch(400) for _ in range(3)]
    X_test, y_test = stream.batch(600)

    graph = planner.plan("analyze-stream", {"n_partitions": 3})
    print(f"HTN plan: {len(graph)} tasks, levels = "
          f"{[len(level) for level in graph.levels()]}")

    results = []
    initial = {name: train_parts[i] for i, name in enumerate(graph.sources())}
    composer.compose("analyze-stream", results.append,
                     params={"n_partitions": 3}, initial_inputs=initial)
    runtime.sim.run(until=runtime.sim.now + 300.0)

    (res,) = results
    print(f"composition: success={res.success} mode={res.mode} "
          f"latency={res.latency_s:.3f}s attempts={res.attempts}")
    combined = next(iter(res.outputs.values()))
    acc = accuracy(combined.predict, X_test, y_test)
    single = DecisionTree(max_depth=4).fit(*train_parts[0])
    print(f"combined-model accuracy : {acc:.3f} "
          f"({combined.nonzero_coefficients()} Fourier coefficients on the wire)")
    print(f"single-partition tree   : {accuracy(single.predict, X_test, y_test):.3f}")
    print(f"spectrum wire size      : {combined.size_bits():.0f} bits vs "
          f"{3 * 400 * D_FEATURES * 8:.0f} bits of raw data shipped centrally")


if __name__ == "__main__":
    main()
