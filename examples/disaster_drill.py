#!/usr/bin/env python3
"""Disaster drill: the Figure-1 fire scenario with infrastructure faults.

The fire-fighter script from ``fire_response.py`` rarely gets the luxury
of healthy infrastructure: the same fire that produces the readings also
burns cables and power supplies.  This drill runs the paper's scenario
while a scripted fault timeline takes out first the backhaul to the
wired grid and then the base station itself, and shows the stack
degrading instead of crashing:

1. healthy: the complex distribution query offloads to the grid;
2. backhaul outage: the grid is unreachable, so the Decision Maker
   falls back to a local model at lower accuracy;
3. broker-host crash: the node hosting the *active* discovery broker
   burns; the broker group detects the loss, promotes the lowest-id
   live standby, and the standby replays the shared event log --
   discovery comes back with nothing lost;
4. base-station crash: in-network collection loses its sink and the
   query layer reports "no feasible model" -- an answer, not a
   traceback.

The run is watched by the SLO engine: the default grid objectives
(query latency/failure ratio, energy per epoch, uplink availability)
plus the discovery objectives are evaluated every 15 s of simulated
time.  The uplink alert fires during the backhaul outage and resolves
after recovery; ``disc.broker_availability`` fires during the broker
failover and resolves once the promoted standby's window is clean.
The drill closes with the grid health verdict and the alert timeline.

Run:  python examples/disaster_drill.py
      python examples/disaster_drill.py --trace
      python examples/disaster_drill.py --export drill-trace.jsonl
      python examples/disaster_drill.py --profile drill-profile.json \
          --ledger drill-ledger.jsonl
      python -m repro.observability.dashboard drill-trace.jsonl
      python -m repro.observability.profile drill-profile.json
"""

import argparse

from repro.discovery import ServiceDescription
from repro.faults import NodeCrash, UplinkOutage
from repro.observability.analysis import Trace
from repro.observability.ledger import QueryCostLedger, render_ledger
from repro.observability.report import pick_root, render_critical_path, render_rollup
from repro.observability.slo import render_health
from repro.workloads import fire_scenario

DISTRIBUTION_Q = "SELECT DISTRIBUTION(value) FROM sensors COST accuracy 0.05"


def show(label: str, outcomes) -> None:
    for o in outcomes:
        if o.success:
            print(f"  {label:<34} model={o.model:<12} time={o.time_s:7.2f} s "
                  f"energy={o.energy_j * 1e3:8.3f} mJ")
        else:
            print(f"  {label:<34} FAILED ({o.error})")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", action="store_true",
                        help="record a span trace and print the critical-path "
                             "rollup at the end of the drill")
    parser.add_argument("--export", metavar="PATH", default=None,
                        help="write the trace as JSONL to PATH (implies --trace); "
                             "analyze it with python -m repro.observability.report")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="wall-clock-profile the drill and write the export "
                             "to PATH; analyze it with "
                             "python -m repro.observability.profile")
    parser.add_argument("--ledger", metavar="PATH", default=None,
                        help="write the per-query cost ledger as JSONL to PATH "
                             "(implies --trace)")
    args = parser.parse_args(argv)
    tracing = args.trace or args.export is not None or args.ledger is not None

    runtime = fire_scenario(n_sensors=49, area_m=60.0, seed=7, n_seats=2,
                            trace=tracing, profile=args.profile is not None,
                            broker_hosts=(1, 2, 3),
                            broker_detection_delay_s=25.0)
    injector = runtime.fault_injector()
    base = runtime.deployment.base_station_id
    group = runtime.broker_group
    broker_host = group.active.host_node

    # the building's sensor services, advertised through discovery so the
    # broker group has real state to carry across the failover
    for i in range(6):
        runtime.registry.advertise(ServiceDescription(
            name=f"temp-sensor-{i}", category="TemperatureSensorService",
            provider=f"sensor-{i}", host_node=i, uuid=f"drill-temp-{i}"))

    # the drill's fault script, scheduled up front like a real exercise
    injector.schedule(UplinkOutage(at_s=120.0, duration_s=240.0))
    injector.schedule(NodeCrash(broker_host, at_s=450.0))
    injector.schedule(NodeCrash(base, at_s=600.0))

    # the SLO engine watches the whole drill in simulated time
    evaluator = runtime.attach_slos(until_s=900.0)

    print("=== t=0: healthy infrastructure ===")
    show("spot check (sensor 24)",
         runtime.query("SELECT value FROM sensors WHERE sensor_id = 24"))
    show("distribution (complex)", runtime.query(DISTRIBUTION_Q))

    runtime.sim.run(until=150.0)
    print(f"\n=== t={runtime.sim.now:.0f} s: backhaul outage "
          f"(uplink online={runtime.grid.uplink.online}) ===")
    show("room 2 average",
         runtime.query("SELECT AVG(value) FROM sensors WHERE room = 2"))
    show("distribution (complex)", runtime.query(DISTRIBUTION_Q))

    runtime.sim.run(until=420.0)
    print(f"\n=== t={runtime.sim.now:.0f} s: backhaul restored "
          f"(uplink online={runtime.grid.uplink.online}) ===")
    show("distribution (complex)", runtime.query(DISTRIBUTION_Q))

    runtime.sim.run(until=560.0)
    print(f"\n=== t={runtime.sim.now:.0f} s: broker host {broker_host} burned "
          f"at t=450 s -- single-active failover ===")
    for event in group.timeline:
        who = "-" if event.broker_id is None else f"broker {event.broker_id}"
        print(f"  t={event.time_s:7.1f} s  {event.phase:<9} {who:<9} {event.detail}")
    n_services = len(group.active.view.services())
    print(f"  active broker: {group.active_id} (host "
          f"{group.active.host_node}), failovers={group.failovers}, "
          f"staleness={group.staleness()} events")
    print(f"  {n_services} advertisements served (host {broker_host}'s own "
          f"was withdrawn with the node; none lost to the failover)")

    runtime.sim.run(until=630.0)
    alive = runtime.deployment.topology.is_alive(base)
    print(f"\n=== t={runtime.sim.now:.0f} s: base station down "
          f"(node {base} alive={alive}) ===")
    show("room 2 average",
         runtime.query("SELECT AVG(value) FROM sensors WHERE room = 2"))
    show("distribution (complex)", runtime.query(DISTRIBUTION_Q))

    print("\n=== fault timeline ===")
    for event in injector.timeline:
        print(f"  t={event.time:7.1f} s  {event.phase:<8} {event.kind:<14} {event.detail}")
    counters = runtime.deployment.monitor.counters()
    failed = {k: v for k, v in counters.items() if k.startswith("queries.failed.")}
    print(f"\nfaults injected: {counters.get('faults.injected', 0):.0f}, "
          f"recovered: {counters.get('faults.recovered', 0):.0f}, "
          f"uplink outages: {runtime.grid.uplink.outages}")
    if failed:
        print("failure reasons counted in the monitor:")
        for name, count in sorted(failed.items()):
            print(f"  {name}: {count:.0f}")

    # close the books: one final evaluation at the drill's end, then the verdict
    evaluator.tick()
    availability = evaluator.status["disc.broker_availability"]
    print(f"\ndiscovery availability alert: fired {availability.fired}x during "
          f"the broker failover, resolved {availability.resolved}x after "
          f"promotion, firing now: {availability.firing}")
    print("\n=== SLO health verdict ===")
    print(render_health(evaluator))

    if tracing:
        print("\n=== where did the time go (slowest query) ===")
        trace = Trace(runtime.tracer.records)
        root = pick_root(trace, "query.")
        if root is None:
            print("no closed query span recorded")
        else:
            print(render_critical_path(trace, root))
            print()
            print(render_rollup(trace, root))
        print()
        print(render_ledger(trace))
        if args.export:
            count = runtime.export_trace(args.export)
            print(f"\nexported {count} trace records to {args.export}")
            print(f"analyze with: python -m repro.observability.report {args.export}")
        if args.ledger:
            count = QueryCostLedger.from_trace(trace).export_jsonl(args.ledger)
            print(f"exported {count} per-query cost records to {args.ledger}")

    if args.profile:
        count = runtime.export_profile(args.profile)
        print(f"\nexported wall-clock profile ({count} handlers) to {args.profile}")
        print(f"analyze with: python -m repro.observability.profile {args.profile}")


if __name__ == "__main__":
    main()
