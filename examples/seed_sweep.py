#!/usr/bin/env python3
"""Seed sweep across worker processes with a deterministic merge.

Runs the same pervasive-grid aggregate query over N independent seeds --
one simulation world per seed -- sharded across worker processes by
:class:`repro.parallel.TrialRunner`.  The merged monitor (delivery
counters, energy, route-cache hit rates) is bit-identical no matter how
many workers ran, so the sweep's summary is a pure function of the seed
list; only the wall-clock numbers change with ``--workers``.

Run:  python examples/seed_sweep.py --seeds 8 --workers 4
      python examples/seed_sweep.py --json          # machine-readable
"""

import argparse
import json

from repro.core import PervasiveGridRuntime, StaticPolicy
from repro.network import record_route_cache_metrics
from repro.observability.metrics import rollup_by_subsystem
from repro.parallel import TrialResult, run_trials, seed_specs

QUERY = "SELECT AVG(value) FROM sensors EPOCH DURATION 5 FOR 25"


def run_world(spec):
    """One seed's world: build the runtime, run the query, ship results."""
    runtime = PervasiveGridRuntime(
        n_sensors=spec.params["n_sensors"], area_m=60.0, seed=spec.seed,
        policy=StaticPolicy("tree"), grid_resolution=20, placement="random",
    )
    outcomes = runtime.query(QUERY)
    record_route_cache_metrics(runtime.deployment.topology, runtime.monitor)
    good = [o for o in outcomes if o.success]
    steady = (sum(o.energy_j for o in good[1:]) / len(good[1:])
              if len(good) > 1 else float("nan"))
    return TrialResult(
        monitor=runtime.monitor,
        metrics={"seed": spec.seed, "epochs": len(good),
                 "steady_mj": steady * 1e3},
        sim_time_s=runtime.sim.now,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=6,
                        help="number of seeds (worlds) to sweep")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (1 = serial)")
    parser.add_argument("--sensors", type=int, default=49)
    parser.add_argument("--json", action="store_true",
                        help="emit the merged summary as JSON")
    args = parser.parse_args()

    specs = seed_specs(range(args.seeds), n_sensors=args.sensors)
    sweep = run_trials(run_world, specs, workers=args.workers)

    if args.json:
        print(json.dumps({
            "per_seed": sweep.metrics_by_index(),
            "merged": sweep.monitor.summary(),
            "workers": sweep.workers,
            "wall_s": round(sweep.wall_s, 3),
            "speedup": round(sweep.speedup, 2),
        }, indent=2))
        return

    print(f"seed sweep: {args.seeds} worlds x {args.sensors} sensors, "
          f"{sweep.workers} workers\n")
    print(f"{'seed':>6}{'epochs':>8}{'steady (mJ)':>14}")
    for m in sweep.metrics_by_index():
        print(f"{m['seed']:>6}{m['epochs']:>8}{m['steady_mj']:>14.4g}")

    print("\nmerged monitor (identical at any --workers):")
    for subsystem, values in rollup_by_subsystem(sweep.monitor).items():
        if subsystem in ("net", "energy", "parallel"):
            for name, value in values.items():
                print(f"  {name:<36} {value:.6g}")

    print(f"\nwall: {sweep.wall_s:.2f}s elapsed for "
          f"{sweep.trial_wall_s:.2f}s of trial work "
          f"(speedup {sweep.speedup:.2f}x on {sweep.workers} workers)")


if __name__ == "__main__":
    main()
