#!/usr/bin/env python3
"""Negotiation with performance commitments (§2).

The paper's agents "negotiate with other agents about appropriate
mediating interfaces or performance commitments".  This example shows
why that matters: advertised attributes can lie, but commitments are
*checked*.

A cheap PDE-solver service promises 1-second solves and delivers
5-second ones.  Registry-rank binding (trusting advertisements) keeps
choosing it.  Negotiated binding pays the liar's price twice, downgrades
its reputation, and moves to the honest (pricier) competitors.

Run:  python examples/negotiated_services.py
"""

from repro.agents import AgentPlatform
from repro.agents.contractnet import ContractNetInitiator
from repro.composition import (
    Binder,
    CompositionManager,
    NegotiatedBinder,
    ServiceProviderAgent,
    TaskGraph,
    TaskSpec,
)
from repro.discovery import (
    Preference,
    SemanticMatcher,
    ServiceDescription,
    ServiceRegistry,
    build_service_ontology,
)
from repro.simkernel import Simulator

RATE = 1e8


def build_world():
    sim = Simulator()
    platform = AgentPlatform(sim)
    registry = ServiceRegistry(SemanticMatcher(build_service_ontology()))
    manager = CompositionManager("mgr", sim, Binder(registry), timeout_s=60.0)
    platform.register(manager)

    def add(name, price, actual_s, committed_s):
        desc = ServiceDescription(
            name=f"svc-{name}", category="PDESolverService",
            attributes={"price": price, "commit_factor": committed_s / actual_s,
                        "queue_length": int(price * 10)},
            ops=actual_s * RATE, cost=price,
        )
        platform.register(ServiceProviderAgent(name, desc, sim, compute_rate=RATE))
        registry.advertise(desc)

    add("bargain-basement", price=1.0, actual_s=5.0, committed_s=1.0)  # over-promises
    add("solid-solvers", price=2.0, actual_s=2.0, committed_s=2.0)
    add("premium-pde", price=3.0, actual_s=1.5, committed_s=1.5)
    return sim, platform, registry, manager


def solve_task():
    g = TaskGraph()
    g.add_task(TaskSpec("solve", "PDESolverService",
                        preferences=(Preference("queue_length", "minimize"),)))
    return g


def main() -> None:
    print("three PDE solver services: $1 (promises 1s, delivers 5s), "
          "$2 (honest 2s), $3 (honest 1.5s)\n")

    # ---------------- registry-rank binding ----------------
    sim, platform, registry, manager = build_world()
    print(f"{'round':>6} {'rank binding':>20} {'latency':>9}    "
          f"{'negotiated':>20} {'latency':>9}  reputation($1)")
    rank_rows = []
    for _ in range(8):
        got = []
        manager.execute(solve_task(), got.append)
        while not got:
            sim.step()
        rank_rows.append((list(got[0].outputs) and "bargain-basement", got[0].latency_s))
        sim.run(until=sim.now + 2.0)

    # ---------------- negotiated binding ----------------
    sim, platform, registry, manager = build_world()
    initiator = ContractNetInitiator("negotiator", sim)
    platform.register(initiator)
    binder = NegotiatedBinder(initiator, registry, collect_window_s=0.2)
    neg_rows = []
    for _ in range(8):
        got = []

        def bound(bindings):
            committed = {n: b.match.service.ops / RATE
                         * float(b.match.service.attributes.get("commit_factor", 1.0))
                         for n, b in bindings.items()}
            start = sim.now

            def done(result):
                for n, b in bindings.items():
                    binder.report_outcome(b.provider, committed[n], sim.now - start)
                got.append((b.provider, result.latency_s))

            manager.execute(solve_task(), done, bindings=bindings)

        binder.bind_graph(solve_task(), bound)
        while not got:
            sim.step()
        neg_rows.append(got[0] + (binder.reputation_of("bargain-basement"),))
        sim.run(until=sim.now + 2.0)

    for i, (rank, neg) in enumerate(zip(rank_rows, neg_rows)):
        print(f"{i:>6} {'(rank picks cheapest)':>20} {rank[1]:>8.2f}s    "
              f"{neg[0]:>20} {neg[1]:>8.2f}s        {neg[2]:.2f}")

    print("\nrank binding never learns; negotiation's reputation loop kicks the")
    print("over-promiser out after a few broken commitments.")


if __name__ == "__main__":
    main()
