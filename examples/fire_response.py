#!/usr/bin/env python3
"""The Figure-1 scenario: fire fighters querying a burning building.

A fire ignites inside an instrumented building.  Fire fighters arrive
with a handheld, and work through the paper's script:

1. spot checks ("temperature at sensor N"),
2. room averages as the fire spreads,
3. the full temperature distribution -- the 3-D PDE query that must be
   partitioned out to the wired grid,
4. a continuous watch on the hottest reading while they work.

Run:  python examples/fire_response.py
"""

import numpy as np

from repro.observability.analysis import Trace
from repro.observability.report import pick_root, render_critical_path, render_rollup
from repro.observability.slo import render_health
from repro.reporting import ascii_heatmap
from repro.workloads import fire_scenario


def main() -> None:
    runtime = fire_scenario(n_sensors=49, area_m=60.0, seed=7, n_seats=2,
                            trace=True)
    evaluator = runtime.attach_slos(until_s=600.0)

    print("=== t=0: fire just ignited ===")
    out = runtime.query("SELECT MAX(value) FROM sensors")
    print(f"max temperature now: {out[0].value:.1f} C  (model: {out[0].model})")

    # let the fire develop for 3 simulated minutes
    runtime.sim.run(until=runtime.sim.now + 180.0)

    print("\n=== t=180 s: fire fighters arrive ===")
    out = runtime.query("SELECT MAX(value) FROM sensors")
    print(f"max temperature now: {out[0].value:.1f} C  (model: {out[0].model})")

    out = runtime.query("SELECT value FROM sensors WHERE sensor_id = 24")
    print(f"spot check, sensor 24 (building centre): {out[0].value:.1f} C")

    for room in (1, 5, 9):
        out = runtime.query(f"SELECT AVG(value) FROM sensors WHERE room = {room}")
        print(f"room {room} average: {out[0].value:.1f} C "
              f"(model {out[0].model}, {out[0].time_s:.2f} s, {out[0].energy_j*1e3:.3f} mJ)")

    print("\n=== the complex query: temperature distribution (PDE) ===")
    # the COST accuracy clause rules out lossy region-averaged plans, so
    # the Decision Maker must pick an exact plan -- the grid offload
    out = runtime.query("SELECT DISTRIBUTION(value) FROM sensors COST accuracy 0.05")
    field = out[0].value
    hot_i, hot_j = np.unravel_index(np.argmax(field), field.shape)
    cell = runtime.deployment.area_m / (field.shape[0] - 1)
    print(f"model chosen: {out[0].model} | turnaround {out[0].time_s:.2f} s "
          f"| field {field.shape[0]}x{field.shape[1]} | rel. error {out[0].rel_error:.3f}")
    print(f"hottest point: ({hot_i * cell:.0f} m, {hot_j * cell:.0f} m) at {field.max():.0f} C")
    print(f"coolest escape route along y=0: x = "
          f"{np.argmin(field[:, 0]) * cell:.0f} m ({field[:, 0].min():.0f} C)")
    print("\ntemperature map (entrance at bottom centre; hotter = denser):")
    print(ascii_heatmap(field, width=48, height=16))

    print("\n=== continuous watch: hottest reading every 15 s for 1 minute ===")
    epochs = []
    runtime.submit("SELECT MAX(value) FROM sensors EPOCH DURATION 15 FOR 60",
                   lambda outs: None, on_epoch=epochs.append)
    runtime.sim.run(until=runtime.sim.now + 90.0)
    for e in epochs:
        print(f"epoch {e.epoch_index}: max = {e.value:.1f} C "
              f"(model {e.model}, {e.energy_j*1e3:.3f} mJ)")

    print(f"\nsensors still alive: {len(runtime.deployment.alive_sensor_ids())}"
          f"/{runtime.deployment.n_sensors}")
    print(f"total sensor energy spent: {runtime.energy_consumed_j()*1e3:.2f} mJ")

    print("\n=== where did the time go (slowest query) ===")
    trace = Trace(runtime.tracer.records)
    root = pick_root(trace, "query.")
    if root is None:
        print("no closed query span recorded")
    else:
        print(render_critical_path(trace, root))
        print()
        print(render_rollup(trace, root))

    evaluator.tick()
    print("\n=== SLO health verdict ===")
    print(render_health(evaluator))


if __name__ == "__main__":
    main()
