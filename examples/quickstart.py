#!/usr/bin/env python3
"""Quickstart: a pervasive grid in ~40 lines.

Builds the Figure-1 world (sensor lattice + base station + handheld +
wired grid), then runs one query of each of the paper's four classes and
shows which execution model the Decision Maker picked and what it cost.
The run closes with the canonical metric rollup -- every number the
grid recorded, keyed by the conventions in
:mod:`repro.observability.metrics`.

Run:  python examples/quickstart.py
"""

from repro.core import PervasiveGridRuntime
from repro.observability.metrics import rollup_by_subsystem

def main() -> None:
    # 49 temperature sensors on a lattice in a 60 m building, ambient field
    runtime = PervasiveGridRuntime(n_sensors=49, area_m=60.0, seed=42)

    queries = [
        # Simple: "Return temperature at Sensor # 10"
        "SELECT value FROM sensors WHERE sensor_id = 10",
        # Aggregate: "Return Average Temperature in room # 2"
        "SELECT AVG(value) FROM sensors WHERE room = 2",
        # Complex: "Find Temperature Distribution"
        "SELECT DISTRIBUTION(value) FROM sensors",
        # Continuous: "Return temperature at Sensor #10 every 10 seconds"
        "SELECT value FROM sensors WHERE sensor_id = 10 EPOCH DURATION 10 FOR 30",
    ]

    print(f"{'query':<68} {'class':<11} {'model':<12} {'time (s)':>9} {'energy (mJ)':>12}")
    print("-" * 116)
    for text in queries:
        outcomes = runtime.query(text)
        for o in outcomes:
            value = o.value
            shown = f"{value:.2f}" if isinstance(value, float) else f"<{type(value).__name__}>"
            label = text if o.epoch_index == 0 else f"  (epoch {o.epoch_index})"
            print(f"{label:<68} {o.query_class.value:<11} {o.model:<12} "
                  f"{o.time_s:>9.3f} {o.energy_j * 1e3:>12.4f}   -> {shown}")

    print(f"\ntotal sensor energy consumed: {runtime.energy_consumed_j() * 1e3:.3f} mJ")
    print(f"virtual time elapsed:         {runtime.sim.now:.1f} s")

    print("\ncanonical metric rollup (repro.observability.metrics):")
    for subsystem, values in rollup_by_subsystem(runtime.monitor).items():
        print(f"  [{subsystem}]")
        for name, value in values.items():
            shown = f"{value:.6g}" if isinstance(value, float) else value
            print(f"    {name:<34} {shown}")


if __name__ == "__main__":
    main()
