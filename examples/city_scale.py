#!/usr/bin/env python3
"""City block on the workload manager: queries + compute under fair share.

A small slice of the paper's city-scale regime: one block with a sensor
lattice and three grid sites of very different speeds.  A nightly bulk
re-index floods the queue first, then standard compute arrives, then
four handheld users pose interactive queries -- and the fair-share drain
(weights 6/3/1) keeps the handhelds responsive while the flood is still
backlogged.  A probe taken mid-contention prints the weight-normalized
shares so you can see the 6/3/1 policy in the drain itself; the full
10^5-query version of this world is experiment E15.

Run:  python examples/city_scale.py
"""

from repro.core import PervasiveGridRuntime


def main() -> None:
    # one city block: 25 sensors plus three grid sites (2, 5, 10 Mops/s)
    runtime = PervasiveGridRuntime(
        n_sensors=25, area_m=40.0, seed=7, site_rates=(2e6, 5e6, 1e7),
    )
    wm = runtime.workload_manager().start()

    # nightly bulk: 100 archive re-index jobs, ~2 Mops apiece
    for i in range(100):
        wm.submit_compute(2e6, priority_class="bulk", owner="archive",
                          name=f"reindex{i}")

    # standard batch analytics from the city operations center
    for i in range(20):
        wm.submit_compute(2e6, priority_class="standard", owner="ops-center",
                          name=f"analytics{i}")

    # four handheld users ask interactive questions of the block
    answers = []

    def ask(user, text):
        def got(outcomes):
            answers.append((user, text, outcomes[-1]))
        wm.submit_query(text, owner=user, on_complete=got)

    for u in range(4):
        ask(f"handheld{u}", f"SELECT AVG(value) FROM sensors WHERE room = {u + 1}")
        ask(f"handheld{u}", "SELECT value FROM sensors WHERE sensor_id = 3")

    # snapshot fair-share behaviour while both compute classes are
    # backlogged (interactive queries are cheap and drain first -- that
    # responsiveness is the point)
    probe = {}

    def take_probe():
        stats = wm.queue.class_stats()
        if all(stats[n]["waiting"] > 0 for n in ("standard", "bulk")):
            probe.update({n: stats[n]["ops_completed"] / stats[n]["weight"]
                          for n in ("standard", "bulk")})

    runtime.sim.schedule(2.0, take_probe, label="example.probe")
    runtime.sim.run()

    print("interactive answers (each arrived while the bulk flood drained):")
    for user, text, outcome in answers:
        value = outcome.value
        shown = f"{value:.2f}" if isinstance(value, float) else value
        print(f"  {user:<10} {text:<50} -> {shown}")

    if probe:
        print("\nweight-normalized shares at t=2s "
              "(fair = equal, within one task quantum):")
        for name, share in probe.items():
            print(f"  {name:<12} {share:>12.0f} ops/weight")

    print("\nper-class roll-up:")
    stats = wm.stats()
    print(f"  {'class':<12} {'weight':>6} {'done':>5} {'failed':>6}")
    for name, s in stats["classes"].items():
        print(f"  {name:<12} {s['weight']:>6.1f} {s['completed']:>5.0f} "
              f"{s['failed']:>6.0f}")

    latency = runtime.monitor.histogram("wms.queue_latency")
    print(f"\nqueue latency: p50 {latency.percentile(50):.2f}s, "
          f"p95 {latency.percentile(95):.2f}s over {len(latency)} tasks")
    print(f"virtual time elapsed: {runtime.sim.now:.1f} s "
          f"(queue depth now {stats['depth']})")


if __name__ == "__main__":
    main()
