#!/usr/bin/env python3
"""The defense scenario: adaptive partitioning under churn.

Ground sensors scattered at random over terrain; detection hotspots flare
up; sensor nodes are destroyed mid-mission (churn).  The Decision Maker
runs the paper's *learned, adaptive* policy: it starts from analytic
estimates, measures actual energy/latency each query, and re-weights its
choices -- while a static policy keeps paying for its fixed plan.

Run:  python examples/defense_awareness.py
"""

import numpy as np

from repro.core import LearnedPolicy, StaticPolicy
from repro.network.churn import ChurnProcess
from repro.workloads import QueryWorkload, defense_scenario


def run_mission(policy, seed=9, n_queries=40, with_churn=True):
    runtime = defense_scenario(n_sensors=49, area_m=300.0, seed=seed,
                               policy=policy, grid_resolution=20)
    if with_churn:
        churn = ChurnProcess(
            runtime.sim,
            runtime.deployment.topology,
            nodes=runtime.deployment.sensor_ids[::7],  # some nodes get hit
            rng=runtime.streams.get("battle-damage"),
            mean_up_s=300.0,
            mean_down_s=120.0,
        )
        churn.start()

    workload = QueryWorkload(
        runtime.streams.get("mission-queries"),
        n_sensors=49,
        mix=(0.3, 0.5, 0.2, 0.0),
    )
    energies, times, models = [], [], []
    failures = 0
    for _ in range(n_queries):
        try:
            out = runtime.query(workload.next_text())
        except TimeoutError:
            failures += 1
            continue
        o = out[0]
        if o.success:
            energies.append(o.energy_j)
            times.append(o.time_s)
            models.append(o.model)
        else:
            failures += 1
        # mission time passes between queries
        runtime.sim.run(until=runtime.sim.now + 30.0)
    return {
        "energy_mJ": sum(energies) * 1e3,
        "mean_time_s": float(np.mean(times)) if times else float("nan"),
        "failures": failures,
        "models": models,
        "alive": len(runtime.deployment.alive_sensor_ids()),
    }


def main() -> None:
    print("mission: 40 mixed queries over 49 scattered sensors, with battle damage\n")

    policies = [
        ("static: always centralized", StaticPolicy("centralized")),
        ("static: always in-network tree", StaticPolicy("tree")),
        ("learned (adaptive, kNN)", LearnedPolicy(rng=np.random.default_rng(1))),
    ]
    print(f"{'policy':<32} {'energy (mJ)':>12} {'mean time (s)':>14} {'failures':>9} {'alive':>6}")
    print("-" * 80)
    for label, policy in policies:
        stats = run_mission(policy)
        print(f"{label:<32} {stats['energy_mJ']:>12.2f} {stats['mean_time_s']:>14.3f} "
              f"{stats['failures']:>9} {stats['alive']:>6}")

    stats = run_mission(LearnedPolicy(rng=np.random.default_rng(1)))
    from collections import Counter

    print("\nlearned policy's model choices over the mission:")
    for model, count in Counter(stats["models"]).most_common():
        print(f"  {model:<12} x{count}")


if __name__ == "__main__":
    main()
