#!/usr/bin/env python3
"""The paper's printer scenario: semantic discovery vs the baselines.

"[Jini/SDP] are not sufficient for clients to find a printer service
that has the shortest print queue, that is geographically the closest,
or that will print in color but only within a prespecified cost
constraint."

This example advertises one mixed service population to four discovery
systems and poses exactly that request to each.

Run:  python examples/service_marketplace.py
"""

import numpy as np

from repro.discovery import (
    Constraint,
    Preference,
    SemanticMatcher,
    ServiceRegistry,
    ServiceRequest,
    build_service_ontology,
)
from repro.discovery.protocols import BluetoothSDP, JiniLookup, SLPDirectory
from repro.workloads import ServicePopulation


def main() -> None:
    rng = np.random.default_rng(11)
    population = [g.description for g in ServicePopulation(rng).generate(60)]

    # advertise the SAME population everywhere
    registry = ServiceRegistry(SemanticMatcher(build_service_ontology()))
    jini, sdp, slp = JiniLookup(), BluetoothSDP(), SLPDirectory()
    for desc in population:
        registry.advertise(desc)
        jini.register(desc)
        sdp.register(desc)
        slp.register(desc)

    printers = [d for d in population if "Printer" in d.category]
    print(f"population: {len(population)} services, {len(printers)} printers\n")

    # ------------------------------------------------------------------
    print("REQUEST: a color printer, <= $0.25/page, shortest queue, nearest to (10, 10)\n")
    request = ServiceRequest(
        category="ColorPrinterService",
        constraints=(
            Constraint("color", "==", True),
            Constraint("cost_per_page", "<=", 0.25),
        ),
        preferences=(
            Preference("queue_length", "minimize", weight=1.0),
            Preference("x", "minimize", weight=0.25),  # crude proximity proxy
        ),
    )

    print("--- semantic matcher (this paper) ---")
    for r in registry.search(request, top_k=5):
        a = r.service.attributes
        print(f"  [{r.degree.name:<8} {r.score:.3f}] {r.service.name:<26} "
              f"queue={a['queue_length']} ${a['cost_per_page']:.2f}/page color={a['color']}")

    print("\n--- Jini interface lookup ---")
    hits = jini.lookup("ColorPrinterService")
    print(f"  lookup('ColorPrinterService'): {len(hits)} unranked hits "
          f"(cannot express cost bound or queue preference)")
    for s in hits[:3]:
        a = s.attributes
        print(f"    {s.name:<26} queue={a['queue_length']} ${a['cost_per_page']:.2f}/page")
    print(f"  lookup('PrinterService'): {len(jini.lookup('PrinterService'))} hits "
          "(misses every color printer: exact interface strings only)")

    print("\n--- Bluetooth SDP ---")
    uuid = ServicePopulation.class_uuid("ColorPrinterService")
    hits = sdp.lookup(uuid)
    print(f"  lookup({uuid!r}): {len(hits)} hits -- and only if the client "
          "already knows the 128-bit UUID")

    print("\n--- SLP directory ---")
    hits = slp.lookup("ColorPrinterService", {"color": True})
    print(f"  (type='ColorPrinterService', color=true): {len(hits)} hits; "
          "equality only -- 'cost_per_page <= 0.25' is inexpressible")

    # ------------------------------------------------------------------
    print("\nwhy ranking matters: the semantic top hit satisfies everything;")
    best = registry.search(request, top_k=1)[0].service
    worst = max(
        (s for s in printers if s.attributes.get("color")),
        key=lambda s: s.attributes["queue_length"],
    )
    print(f"  best : {best.name} queue={best.attributes['queue_length']}")
    print(f"  an unranked system may return: {worst.name} queue={worst.attributes['queue_length']}")


if __name__ == "__main__":
    main()
